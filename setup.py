"""Setuptools shim for legacy editable installs (offline environments).

All real metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works where the ``wheel`` package is unavailable and
pip falls back to ``setup.py develop``.
"""

from setuptools import setup

setup()
