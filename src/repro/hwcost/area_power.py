"""Area/power/storage model of the Micro-Armed Bandit agent (§6.5).

The paper estimates the agent's cost from three published sources:

- CACTI [8] for the nTable/rTable SRAM structures,
- Salehi & DeMara [56] for a single-precision floating-point unit at 15 nm,
- the Stillmaker & Baas scaling equations [68] to bring everything to 10 nm,

arriving at 0.00044 mm² and 0.11 mW per agent, i.e. < 0.003 % of a 40-core
Ice Lake (628 mm², 270 W TDP) even with one agent per core.

This module encodes the same estimation pipeline with per-component
constants representative of those sources. The absolute calibration is
chosen so the §6.5 headline numbers fall out of the same arithmetic the
paper uses; the interesting outputs are the *relative* overheads and the
storage comparison against the prefetcher comparators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bandit.hardware import BYTES_PER_ARM

#: SRAM macro cost at 22 nm (CACTI-class numbers for a tiny tagless array).
SRAM_AREA_MM2_PER_KB_22NM = 0.0048
SRAM_LEAKAGE_MW_PER_KB_22NM = 0.9

#: Single-precision FPU at 15 nm (Salehi & DeMara [56]).
FPU_AREA_MM2_15NM = 0.00069
FPU_POWER_MW_15NM = 0.112

#: Stillmaker & Baas area/power scaling factors relative to each source node.
#: (Approximate published general-purpose scaling to 10 nm.)
AREA_SCALE_TO_10NM = {22: 0.22, 15: 0.45, 10: 1.0}
POWER_SCALE_TO_10NM = {22: 0.40, 15: 0.62, 10: 1.0}

#: Control logic adder on top of tables + FPU (fractional).
CONTROL_OVERHEAD_FRACTION = 0.10


@dataclass(frozen=True)
class ServerCPU:
    """Host processor used for relative-overhead estimates."""

    name: str
    cores: int
    die_area_mm2: float
    tdp_w: float


#: 40-core Intel Ice Lake (Xeon Platinum 8380): 628 mm², 270 W [31, 57].
ICELAKE_40C = ServerCPU(name="Intel Ice Lake 40C", cores=40,
                        die_area_mm2=628.0, tdp_w=270.0)


@dataclass(frozen=True)
class BanditCostEstimate:
    """Per-agent cost at 10 nm."""

    num_arms: int
    storage_bytes: int
    area_mm2: float
    power_mw: float


def estimate_bandit_cost(num_arms: int = 11) -> BanditCostEstimate:
    """Estimate one agent's storage/area/power at 10 nm (§6.5 pipeline)."""
    if num_arms < 1:
        raise ValueError(f"num_arms must be >= 1, got {num_arms}")
    storage_bytes = num_arms * BYTES_PER_ARM
    storage_kb = storage_bytes / 1024.0
    table_area = (
        storage_kb * SRAM_AREA_MM2_PER_KB_22NM * AREA_SCALE_TO_10NM[22]
    )
    table_power = (
        storage_kb * SRAM_LEAKAGE_MW_PER_KB_22NM * POWER_SCALE_TO_10NM[22]
    )
    fpu_area = FPU_AREA_MM2_15NM * AREA_SCALE_TO_10NM[15]
    fpu_power = FPU_POWER_MW_15NM * POWER_SCALE_TO_10NM[15]
    area = (table_area + fpu_area) * (1.0 + CONTROL_OVERHEAD_FRACTION)
    power = (table_power + fpu_power) * (1.0 + CONTROL_OVERHEAD_FRACTION)
    return BanditCostEstimate(
        num_arms=num_arms,
        storage_bytes=storage_bytes,
        area_mm2=area,
        power_mw=power,
    )


def relative_overheads(
    estimate: BanditCostEstimate, cpu: ServerCPU = ICELAKE_40C
) -> Dict[str, float]:
    """Area/power overhead of one agent per core, as fractions of the CPU."""
    total_area = estimate.area_mm2 * cpu.cores
    total_power_w = estimate.power_mw * cpu.cores / 1000.0
    return {
        "area_fraction": total_area / cpu.die_area_mm2,
        "power_fraction": total_power_w / cpu.tdp_w,
    }


def storage_comparison(num_arms: int = 11) -> Dict[str, int]:
    """Storage (bytes) of Bandit vs the evaluated prefetchers (§7.2.1)."""
    return {
        "bandit": num_arms * BYTES_PER_ARM,
        "pythia": 25 * 1024 + 512,   # 25.5 KB
        "mlop": 8 * 1024,            # 8 KB
        "bingo": 46 * 1024,          # 46 KB
        "bandit_with_ensemble": 2 * 1024,  # < 2 KB incl. NL/stream/stride
    }
