"""Hardware cost estimation for the Bandit agent (§6.5)."""

from repro.hwcost.area_power import (
    BanditCostEstimate,
    ICELAKE_40C,
    ServerCPU,
    estimate_bandit_cost,
    relative_overheads,
    storage_comparison,
)

__all__ = [
    "BanditCostEstimate",
    "ICELAKE_40C",
    "ServerCPU",
    "estimate_bandit_cost",
    "relative_overheads",
    "storage_comparison",
]
