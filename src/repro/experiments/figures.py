"""One entry point per table/figure of the paper's evaluation.

Every function returns plain data structures (dicts/lists) that the
benchmark harness prints and EXPERIMENTS.md records. All functions take
scale parameters (trace lengths, mix counts, epoch budgets) whose defaults
are sized for minutes-scale Python runs; the paper-scale values are noted in
EXPERIMENTS.md.

Index (see DESIGN.md §4): fig02, fig05, table08, table09, fig07, fig08,
fig09, fig10, fig11, fig12, fig13, fig14, fig15, sec65.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bandit.base import BanditConfig, MABAlgorithm
from repro.bandit.ducb import DUCB
from repro.bandit.heuristics import Single
from repro.bandit.ucb import UCB
from repro.constants import (
    PREFETCH_EXPLORATION_C,
    SMT_EXPLORATION_C,
    SMT_GAMMA,
)
from repro.experiments.configs import (
    ALT_HIERARCHY_CONFIG,
    BASELINE_HIERARCHY_CONFIG,
    PREFETCH_BANDIT_CONFIG,
    PREFETCHER_LINEUP,
    SCALED_GAMMA,
    TABLE8_ALGORITHM_NAMES,
    scaled_prefetch_params,
    table8_algorithm_lineup,
)
from repro.experiments.matrix import (
    MatrixSpec,
    prefetch_matrix_tasks,
    smt_matrix_tasks,
)
from repro.experiments.prefetch import (
    best_static_arm,
    run_bandit_prefetch,
    run_fixed_prefetcher,
)
from repro.experiments.runner import (
    Task,
    bandit_prefetch_task,
    fixed_prefetcher_task,
    lane_batch_task,
    multicore_bandit_task,
    multicore_fixed_task,
    run_parallel,
    smt_bandit_task,
    smt_static_task,
)
from repro.experiments.smt import (
    DEFAULT_SMT_SCALE,
    SMTScale,
    run_smt_bandit,
    smt_best_static_arm,
)
from repro.hwcost.area_power import (
    estimate_bandit_cost,
    relative_overheads,
    storage_comparison,
)
from repro.prefetch.ensemble import TABLE7_ARMS
from repro.prefetch.pythia import PythiaPrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.smt.pg_policy import (
    ALL_PG_POLICIES,
    BANDIT_PG_ARMS,
    CHOI_POLICY,
    ICOUNT_POLICY,
    PGPolicy,
)
from repro.uncore.hierarchy import HierarchyConfig
from repro.util.stats import Summary, geometric_mean, summarize_ratios
from repro.workloads.smt import smt_eval_mixes, smt_tune_mixes
from repro.workloads.suites import (
    ALL_SUITES,
    WorkloadSpec,
    spec_by_name,
    tune_specs,
)

#: Default trace length (memory accesses) for prefetching experiments.
DEFAULT_TRACE_LENGTH = 30_000

# PREFETCHER_LINEUP / TARGET_BANDIT_STEPS / SCALED_GAMMA moved to
# repro.experiments.configs (the matrix engine needs them without importing
# this module); re-imported above for back-compat.

#: Back-compat alias — tests and older callers import the underscore name.
_scaled_params = scaled_prefetch_params


def _num_arms() -> int:
    return len(TABLE7_ARMS)


def _bandit_algorithms(seed: int, gamma: float = SCALED_GAMMA) -> Dict[str, MABAlgorithm]:
    """The algorithm lineup of Tables 8/9 (prefetching hyperparameters)."""
    return table8_algorithm_lineup(seed=seed, gamma=gamma, num_arms=_num_arms())


# =============================================================== Figure 2


def fig02_pythia_homogeneity(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    workloads: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> Dict[str, Tuple[float, float]]:
    """Frequency of Pythia's top-2 actions per SPEC-like workload.

    Returns ``{workload: (top1_fraction, top2_fraction)}`` plus an
    ``"average"`` entry — the paper reports ~60 % / ~15 %.
    """
    if workloads is None:
        workloads = [spec.name for spec in tune_specs()]
    result: Dict[str, Tuple[float, float]] = {}
    top1_sum = 0.0
    top2_sum = 0.0
    for name in workloads:
        trace = spec_by_name(name).trace(trace_length, seed=seed)
        pythia = PythiaPrefetcher()
        for record in trace:
            # Feed the L1-miss stream approximation: Pythia trains on all
            # block-granular demand activity here, as a profiling proxy.
            pythia.observe(record.pc, record.address >> 6, 0.0, False)
        top1, top2 = pythia.top_action_fractions(2)
        result[name] = (top1, top2)
        top1_sum += top1
        top2_sum += top2
    result["average"] = (top1_sum / len(workloads), top2_sum / len(workloads))
    return result


# =============================================================== Figure 5


def fig05_pg_policy_range(
    num_mixes: int = 6,
    scale: SMTScale = DEFAULT_SMT_SCALE,
    policies: Sequence[PGPolicy] = ALL_PG_POLICIES,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Best/worst PG policy vs Choi per mix (§3.3's motivation figure).

    Returns one record per mix with the best/worst relative IPC and the
    best policy's mnemonic.
    """
    mixes = smt_tune_mixes()[:num_mixes]
    tasks: List[Task] = []
    for mix in mixes:
        names = (mix[0].name, mix[1].name)
        tasks.append(Task(
            smt_static_task,
            dict(thread_names=names, policy_mnemonic=CHOI_POLICY.mnemonic,
                 scale=scale, seed=seed),
            label=f"fig05:{names[0]}-{names[1]}:choi",
        ))
        tasks.extend(
            Task(
                smt_static_task,
                dict(thread_names=names, policy_mnemonic=policy.mnemonic,
                     scale=scale, seed=seed),
                label=f"fig05:{names[0]}-{names[1]}:{policy.mnemonic}",
            )
            for policy in policies
        )
    task_results = iter(run_parallel(tasks))
    results: List[Dict[str, object]] = []
    for mix in mixes:
        choi_ipc = next(task_results).ipc
        best_name = CHOI_POLICY.mnemonic
        best_ipc = -1.0
        worst_ipc = float("inf")
        for policy in policies:
            ipc = next(task_results).ipc
            if ipc > best_ipc:
                best_ipc = ipc
                best_name = policy.mnemonic
            worst_ipc = min(worst_ipc, ipc)
        results.append(
            {
                "mix": f"{mix[0].name}-{mix[1].name}",
                "best_policy": best_name,
                "best_vs_choi": best_ipc / choi_ipc,
                "worst_vs_choi": worst_ipc / choi_ipc,
            }
        )
    return results


# =============================================================== Table 8


def table08_prefetch_tuneset(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    seed: int = 0,
) -> Dict[str, Summary]:
    """min/max/gmean IPC as % of the best static arm (prefetching tune set)."""
    if workloads is None:
        workloads = tune_specs()
    algorithm_names = TABLE8_ALGORITHM_NAMES
    workload_names = tuple(spec.name for spec in workloads)
    arm_scenarios = tuple(f"arm{arm}" for arm in range(_num_arms()))
    spec_matrix = MatrixSpec.build(axes={
        "workload": workload_names,
        "scenario": arm_scenarios + ("pythia",) + algorithm_names,
    })
    bases = run_parallel(prefetch_matrix_tasks(
        MatrixSpec.build(axes={"workload": workload_names,
                               "scenario": ("none",)}),
        trace_length=trace_length,
        seed=seed,
        label_prefix="table08",
    ))
    params_by_workload = {
        name: _scaled_params(base.stats.l2_demand_accesses)
        for name, base in zip(workload_names, bases)
    }

    def _label(point) -> str:
        workload, scenario = point["workload"], point["scenario"]
        if str(scenario).startswith("arm"):
            # best_static_arm_tasks' historical label scheme (unprefixed).
            return f"{workload}:{scenario}"
        return f"table08:{workload}:{scenario}"

    tasks = prefetch_matrix_tasks(
        spec_matrix,
        trace_length=trace_length,
        seed=seed,
        params_for=lambda point: params_by_workload[str(point["workload"])],
        label_for=_label,
        # Arm replays historically pin the Table 4 hierarchy explicitly;
        # the other scenarios rely on the worker default.
        hierarchy_for=lambda point: (
            BASELINE_HIERARCHY_CONFIG
            if str(point["scenario"]).startswith("arm") else None
        ),
        algorithm_gamma=SCALED_GAMMA,
    )
    results = iter(run_parallel(tasks))
    ratios: Dict[str, List[float]] = {
        name: [] for name in ("Pythia",) + algorithm_names
    }
    for spec in workloads:
        per_arm = [next(results).ipc for _ in range(_num_arms())]
        oracle = max(per_arm)
        ratios["Pythia"].append(next(results).ipc / oracle)
        for name in algorithm_names:
            ratios[name].append(next(results).ipc / oracle)
    return {
        name: summarize_ratios(values).as_percent()
        for name, values in ratios.items()
    }


# =============================================================== Table 9


def table09_smt_tuneset(
    num_mixes: int = 10,
    scale: SMTScale = DEFAULT_SMT_SCALE,
    seed: int = 0,
) -> Dict[str, Summary]:
    """min/max/gmean IPC as % of the best static arm (SMT tune set)."""
    mixes = smt_tune_mixes()[:num_mixes]
    algorithm_names = TABLE8_ALGORITHM_NAMES
    mix_labels = tuple(f"{mix[0].name}-{mix[1].name}" for mix in mixes)
    arm_scenarios = tuple(f"arm{i}" for i in range(len(BANDIT_PG_ARMS)))
    tasks = smt_matrix_tasks(
        MatrixSpec.build(axes={
            "workload": mix_labels,
            "scenario": arm_scenarios + ("choi",) + algorithm_names,
        }),
        scale=scale,
        seed=seed,
        label_prefix="table09",
    )
    results = iter(run_parallel(tasks))
    ratios: Dict[str, List[float]] = {
        name: [] for name in ("Choi",) + algorithm_names
    }
    for mix in mixes:
        oracle = max(next(results).ipc for _ in BANDIT_PG_ARMS)
        ratios["Choi"].append(next(results).ipc / oracle)
        for name in algorithm_names:
            ratios[name].append(next(results).ipc / oracle)
    return {
        name: summarize_ratios(values).as_percent()
        for name, values in ratios.items()
    }


# =============================================================== Figure 7


def fig07_exploration_traces(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    prefetch_workloads: Sequence[str] = ("cactus06", "mcf06"),
    smt_mixes: Sequence[Tuple[str, str]] = (("gcc", "lbm"), ("cactuBSSN", "lbm")),
    scale: SMTScale = DEFAULT_SMT_SCALE,
    seed: int = 0,
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Arm-exploration traces for Best Static / Single / UCB / DUCB.

    Returns ``{scenario: {algorithm: {"ipc": float, "arms": [...]}}}`` where
    ``arms`` is the arm index over time (per bandit step).
    """
    from repro.workloads.smt import thread_profile

    out: Dict[str, Dict[str, Dict[str, object]]] = {}
    arms = _num_arms()
    for name in prefetch_workloads:
        trace = spec_by_name(name).trace(trace_length, seed=seed)
        base = run_fixed_prefetcher(trace, "none")
        params = _scaled_params(base.stats.l2_demand_accesses)
        best_arm, per_arm = best_static_arm(trace)
        scenario: Dict[str, Dict[str, object]] = {
            "BestStatic": {"ipc": per_arm[best_arm], "arms": [best_arm]},
        }
        for alg_name, algorithm in (
            ("Single", Single(BanditConfig(num_arms=arms, seed=seed))),
            ("UCB", UCB(BanditConfig(num_arms=arms,
                                     exploration_c=PREFETCH_EXPLORATION_C,
                                     seed=seed))),
            ("DUCB", DUCB(BanditConfig(num_arms=arms, gamma=SCALED_GAMMA,
                                       exploration_c=PREFETCH_EXPLORATION_C,
                                       seed=seed))),
        ):
            result = run_bandit_prefetch(
                trace, algorithm=algorithm, params=params, seed=seed
            )
            scenario[alg_name] = {"ipc": result.ipc, "arms": result.arm_history}
        out[f"prefetch:{name}"] = scenario

    smt_arms = len(BANDIT_PG_ARMS)
    for first, second in smt_mixes:
        mix = (thread_profile(first), thread_profile(second))
        best_index, per_arm = smt_best_static_arm(mix, scale=scale, seed=seed)
        scenario = {
            "BestStatic": {"ipc": per_arm[best_index], "arms": [best_index]},
        }
        for alg_name, algorithm in (
            ("Single", Single(BanditConfig(num_arms=smt_arms, seed=seed))),
            ("UCB", UCB(BanditConfig(num_arms=smt_arms,
                                     exploration_c=SMT_EXPLORATION_C,
                                     seed=seed))),
            ("DUCB", DUCB(BanditConfig(num_arms=smt_arms, gamma=SMT_GAMMA,
                                       exploration_c=SMT_EXPLORATION_C,
                                       seed=seed))),
        ):
            result = run_smt_bandit(mix, scale, algorithm=algorithm, seed=seed)
            scenario[alg_name] = {"ipc": result.ipc, "arms": result.arm_history}
        out[f"smt:{first}-{second}"] = scenario
    return out


# =============================================================== Figures 8/11


def fig08_singlecore(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    suites: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Per-suite gmean IPC (normalized to no-prefetching) per prefetcher.

    Returns ``{suite: {prefetcher: normalized_ipc}}`` with an ``"all"``
    entry for the cross-suite geometric mean. Figure 11 is the same
    experiment with :data:`ALT_HIERARCHY_CONFIG`.
    """
    if suites is None:
        suites = list(ALL_SUITES)
    lineup = list(PREFETCHER_LINEUP) + ["bandit"]
    members = [(suite, spec) for suite in suites for spec in ALL_SUITES[suite]]
    member_names = tuple(spec.name for _, spec in members)
    spec_matrix = MatrixSpec.build(
        axes={"workload": member_names, "scenario": tuple(lineup)},
    )
    base_tasks = prefetch_matrix_tasks(
        MatrixSpec.build(axes={"workload": member_names,
                               "scenario": ("none",)}),
        trace_length=trace_length,
        seed=seed,
        hierarchy_for=lambda point: hierarchy_config,
        label_prefix="fig08",
    )
    bases = run_parallel(base_tasks)
    params_by_workload = {
        name: _scaled_params(base.stats.l2_demand_accesses)
        for name, base in zip(member_names, bases)
    }
    tasks = prefetch_matrix_tasks(
        spec_matrix,
        trace_length=trace_length,
        seed=seed,
        params_for=lambda point: params_by_workload[str(point["workload"])],
        hierarchy_for=lambda point: hierarchy_config,
        label_prefix="fig08",
    )
    results = iter(run_parallel(tasks))
    per_suite: Dict[str, Dict[str, List[float]]] = {
        suite: {name: [] for name in lineup} for suite in suites
    }
    for (suite, _), base in zip(members, bases):
        for name in lineup:
            per_suite[suite][name].append(next(results).ipc / base.ipc)
    result: Dict[str, Dict[str, float]] = {}
    all_values: Dict[str, List[float]] = {name: [] for name in lineup}
    for suite in suites:
        result[suite] = {}
        for name in lineup:
            values = per_suite[suite][name]
            result[suite][name] = geometric_mean(values)
            all_values[name].extend(values)
    result["all"] = {
        name: geometric_mean(values) for name, values in all_values.items()
    }
    return result


def fig11_alt_hierarchy(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    suites: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Figure 8 repeated with L2 = 1 MB and LLC = 1.5 MB/core (§7.2.2)."""
    return fig08_singlecore(trace_length, ALT_HIERARCHY_CONFIG, suites, seed)


# =============================================================== Figure 9


def fig09_breakdown(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """LLC misses + timely/late/wrong prefetches, normalized to NoPrefetch.

    Returns ``{prefetcher: {llc_misses, timely, late, wrong}}`` (all
    normalized to the no-prefetch LLC miss count), including BanditIdeal
    (zero selection latency).
    """
    if workloads is None:
        workloads = tune_specs()
    lineup = list(PREFETCHER_LINEUP) + ["bandit", "bandit_ideal"]
    sums: Dict[str, Dict[str, float]] = {
        name: {"llc_misses": 0.0, "timely": 0.0, "late": 0.0, "wrong": 0.0}
        for name in lineup
    }
    bases = run_parallel([
        Task(
            fixed_prefetcher_task,
            dict(spec_name=spec.name, trace_length=trace_length, seed=seed),
            label=f"fig09:{spec.name}:none",
        )
        for spec in workloads
    ])
    baseline_misses = 0.0
    tasks: List[Task] = []
    for spec, base in zip(workloads, bases):
        params = _scaled_params(base.stats.l2_demand_accesses)
        baseline_misses += base.stats.llc_demand_misses
        for name in lineup:
            if name == "bandit":
                task = Task(
                    bandit_prefetch_task,
                    dict(spec_name=spec.name, trace_length=trace_length,
                         params=params, seed=seed),
                    label=f"fig09:{spec.name}:bandit",
                )
            elif name == "bandit_ideal":
                task = Task(
                    bandit_prefetch_task,
                    dict(spec_name=spec.name, trace_length=trace_length,
                         params=params, seed=seed, ideal_latency=True),
                    label=f"fig09:{spec.name}:bandit_ideal",
                )
            else:
                task = Task(
                    fixed_prefetcher_task,
                    dict(spec_name=spec.name, trace_length=trace_length,
                         seed=seed, prefetcher_name=name),
                    label=f"fig09:{spec.name}:{name}",
                )
            tasks.append(task)
    results = iter(run_parallel(tasks))
    for spec in workloads:
        for name in lineup:
            stats = next(results).stats
            sums[name]["llc_misses"] += stats.llc_demand_misses
            sums[name]["timely"] += stats.prefetch.timely
            sums[name]["late"] += stats.prefetch.late
            sums[name]["wrong"] += stats.prefetch.wrong
    if baseline_misses == 0:
        raise RuntimeError("no-prefetch baseline produced zero LLC misses")
    return {
        name: {key: value / baseline_misses for key, value in metrics.items()}
        for name, metrics in sums.items()
    }


# =============================================================== Figure 10


def fig10_bandwidth_sweep(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    mtps_values: Sequence[float] = (150.0, 600.0, 2400.0, 9600.0),
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    seed: int = 0,
) -> Dict[float, Dict[str, float]]:
    """Pythia vs Bandit across DRAM bandwidth points (§7.2.1, Figure 10).

    Returns ``{mtps: {"pythia": gmean_norm_ipc, "bandit": gmean_norm_ipc}}``
    normalized to no-prefetching at the same bandwidth.
    """
    from dataclasses import replace as dc_replace

    if workloads is None:
        workloads = tune_specs()
    workload_names = tuple(spec.name for spec in workloads)
    points = [
        (dc_replace(BASELINE_HIERARCHY_CONFIG, dram_mtps=mtps), spec)
        for mtps in mtps_values
        for spec in workloads
    ]

    def _hierarchy(point) -> HierarchyConfig:
        return dc_replace(
            BASELINE_HIERARCHY_CONFIG, dram_mtps=float(point["dram_mtps"])
        )

    bases = run_parallel(prefetch_matrix_tasks(
        MatrixSpec.build(axes={
            "dram_mtps": tuple(mtps_values),
            "workload": workload_names,
            "scenario": ("none",),
        }),
        trace_length=trace_length,
        seed=seed,
        hierarchy_for=_hierarchy,
        label_prefix="fig10",
    ))
    params_by_point = {
        (config.dram_mtps, spec.name):
            _scaled_params(base.stats.l2_demand_accesses)
        for (config, spec), base in zip(points, bases)
    }
    tasks = prefetch_matrix_tasks(
        MatrixSpec.build(axes={
            "dram_mtps": tuple(mtps_values),
            "workload": workload_names,
            "scenario": ("pythia", "bandit"),
        }),
        trace_length=trace_length,
        seed=seed,
        params_for=lambda point: params_by_point[
            (float(point["dram_mtps"]), str(point["workload"]))
        ],
        hierarchy_for=_hierarchy,
        label_prefix="fig10",
    )
    results = iter(run_parallel(tasks))
    ratios: Dict[float, Dict[str, List[float]]] = {
        mtps: {"pythia": [], "bandit": []} for mtps in mtps_values
    }
    for (config, _), base in zip(points, bases):
        point = ratios[config.dram_mtps]
        point["pythia"].append(next(results).ipc / base.ipc)
        point["bandit"].append(next(results).ipc / base.ipc)
    return {
        mtps: {name: geometric_mean(values) for name, values in point.items()}
        for mtps, point in ratios.items()
    }


# ==================================================== replication sweeps


def _replication_lanes(replicates: int, seed: int):
    """Lane list for one replication sweep member: 11 arms + R bandit seeds."""
    from repro.core_model.lane_kernel import LaneSpec

    return tuple(
        [LaneSpec("arm", arm=arm) for arm in range(_num_arms())]
        + [LaneSpec("bandit", seed=seed + r) for r in range(replicates)]
    )


def _replication_member(
    base: object, payload: Dict[str, object]
) -> Dict[str, object]:
    """Per-workload summary of one lane-batch replication payload."""
    lane_results = payload["results"]
    num_arms = _num_arms()
    base_ipc = base.ipc
    arm_norms = {
        arm: lane_results[arm].ipc / base_ipc for arm in range(num_arms)
    }
    best_arm = max(arm_norms, key=arm_norms.__getitem__)
    bandit_norms = [
        result.ipc / base_ipc for result in lane_results[num_arms:]
    ]
    return {
        "best_static_arm": best_arm,
        "best_static_norm": arm_norms[best_arm],
        "bandit_norms": bandit_norms,
        "bandit_mean": sum(bandit_norms) / len(bandit_norms),
        "bandit_min": min(bandit_norms),
        "bandit_max": max(bandit_norms),
    }


def fig08_replication_sweep(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    replicates: int = 5,
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, object]]:
    """Seed-replication study behind Figure 8's bandit bars.

    For every workload, the full 11-arm static fan-out plus ``replicates``
    independently seeded bandit episodes replay as *one* batched lane task
    (:func:`repro.experiments.runner.lane_batch_task`): a single kernel
    invocation instead of ``11 + replicates`` pool tasks. Wide replication
    sweeps (``11 + replicates >= 128`` lanes) route to the array-resident
    kernel, narrow ones to the dict kernel — bit-identical either way, with
    the chosen kernel recorded per task in the run manifest. Returns, per
    workload, the best static arm and the bandit's normalized-IPC spread
    across seeds, plus an ``"all"`` entry with cross-workload gmeans.
    """
    if workloads is None:
        workloads = tune_specs()
    bases = run_parallel([
        Task(
            fixed_prefetcher_task,
            dict(spec_name=spec.name, trace_length=trace_length, seed=seed,
                 hierarchy_config=hierarchy_config),
            label=f"fig08rep:{spec.name}:none",
        )
        for spec in workloads
    ])
    tasks: List[Task] = []
    for spec, base in zip(workloads, bases):
        params = _scaled_params(base.stats.l2_demand_accesses)
        tasks.append(Task(
            lane_batch_task,
            dict(spec_name=spec.name, trace_length=trace_length,
                 lanes=_replication_lanes(replicates, seed), params=params,
                 seed=seed, hierarchy_config=hierarchy_config),
            label=f"fig08rep:{spec.name}:lanes",
        ))
    payloads = run_parallel(tasks)
    result: Dict[str, Dict[str, object]] = {}
    best_norms: List[float] = []
    bandit_means: List[float] = []
    for spec, base, payload in zip(workloads, bases, payloads):
        member = _replication_member(base, payload)
        result[spec.name] = member
        best_norms.append(member["best_static_norm"])
        bandit_means.append(member["bandit_mean"])
    result["all"] = {
        "best_static_gmean": geometric_mean(best_norms),
        "bandit_gmean": geometric_mean(bandit_means),
    }
    return result


def fig10_replication_sweep(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    mtps_values: Sequence[float] = (150.0, 600.0, 2400.0, 9600.0),
    replicates: int = 5,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    seed: int = 0,
) -> Dict[float, Dict[str, object]]:
    """Seed-replication study behind Figure 10's bandwidth sweep.

    At each DRAM bandwidth point, every workload's 11 static arms and
    ``replicates`` bandit seeds replay as one batched lane task. Returns
    ``{mtps: {best_static_gmean, bandit_gmean, bandit_min, bandit_max}}``
    (all IPC normalized to no-prefetching at the same bandwidth).
    """
    from dataclasses import replace as dc_replace

    if workloads is None:
        workloads = tune_specs()
    points = [
        (dc_replace(BASELINE_HIERARCHY_CONFIG, dram_mtps=mtps), spec)
        for mtps in mtps_values
        for spec in workloads
    ]
    bases = run_parallel([
        Task(
            fixed_prefetcher_task,
            dict(spec_name=spec.name, trace_length=trace_length, seed=seed,
                 hierarchy_config=config),
            label=f"fig10rep:{config.dram_mtps:g}:{spec.name}:none",
        )
        for config, spec in points
    ])
    tasks: List[Task] = []
    for (config, spec), base in zip(points, bases):
        params = _scaled_params(base.stats.l2_demand_accesses)
        tasks.append(Task(
            lane_batch_task,
            dict(spec_name=spec.name, trace_length=trace_length,
                 lanes=_replication_lanes(replicates, seed), params=params,
                 seed=seed, hierarchy_config=config),
            label=f"fig10rep:{config.dram_mtps:g}:{spec.name}:lanes",
        ))
    payloads = run_parallel(tasks)
    sweeps: Dict[float, Dict[str, List[float]]] = {
        mtps: {"best": [], "means": [], "mins": [], "maxes": []}
        for mtps in mtps_values
    }
    for (config, _), base, payload in zip(points, bases, payloads):
        member = _replication_member(base, payload)
        point = sweeps[config.dram_mtps]
        point["best"].append(member["best_static_norm"])
        point["means"].append(member["bandit_mean"])
        point["mins"].append(member["bandit_min"])
        point["maxes"].append(member["bandit_max"])
    return {
        mtps: {
            "best_static_gmean": geometric_mean(point["best"]),
            "bandit_gmean": geometric_mean(point["means"]),
            "bandit_min": min(point["mins"]),
            "bandit_max": max(point["maxes"]),
        }
        for mtps, point in sweeps.items()
    }


# =============================================================== Figure 12


def fig12_multilevel(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    seed: int = 0,
) -> Dict[str, float]:
    """Multi-level combinations vs no-prefetching (§7.2.2, Figure 12).

    Returns gmean normalized IPC for Stride_Stride, IPCP, Stride_Pythia,
    and Stride_Bandit (L1 prefetcher _ L2 prefetcher).
    """
    if workloads is None:
        workloads = tune_specs()
    combos = (
        ("stride_stride", "stride", "stride2"),
        ("ipcp", "ipcp", "ipcp2"),
        ("stride_pythia", "pythia", "stride2"),
        ("stride_bandit", None, "stride2"),
    )
    bases = run_parallel([
        Task(
            fixed_prefetcher_task,
            dict(spec_name=spec.name, trace_length=trace_length, seed=seed),
            label=f"fig12:{spec.name}:none",
        )
        for spec in workloads
    ])
    tasks: List[Task] = []
    for spec, base in zip(workloads, bases):
        params = _scaled_params(base.stats.l2_demand_accesses)
        for combo, l2_name, l1_kind in combos:
            if l2_name is None:
                task = Task(
                    bandit_prefetch_task,
                    dict(spec_name=spec.name, trace_length=trace_length,
                         params=params, seed=seed, l1_kind=l1_kind),
                    label=f"fig12:{spec.name}:{combo}",
                )
            else:
                task = Task(
                    fixed_prefetcher_task,
                    dict(spec_name=spec.name, trace_length=trace_length,
                         seed=seed, prefetcher_name=l2_name, l1_kind=l1_kind),
                    label=f"fig12:{spec.name}:{combo}",
                )
            tasks.append(task)
    results = iter(run_parallel(tasks))
    ratios: Dict[str, List[float]] = {combo: [] for combo, _, _ in combos}
    for spec, base in zip(workloads, bases):
        for combo, _, _ in combos:
            ratios[combo].append(next(results).ipc / base.ipc)
    return {name: geometric_mean(values) for name, values in ratios.items()}


def run_bandit_prefetch_with_l1(trace, params=None, seed: int = 0) -> float:
    """Stride at L1 + Bandit-controlled ensemble at L2; returns IPC.

    Thin wrapper over :func:`run_bandit_prefetch`'s ``l1_prefetcher``
    support, kept for API compatibility.
    """
    if params is None:
        params = PREFETCH_BANDIT_CONFIG
    return run_bandit_prefetch(
        trace,
        params=params,
        seed=seed,
        l1_prefetcher=StridePrefetcher(degree=2),
    ).ipc


# =============================================================== Figure 13


def fig13_smt_bandit_vs_choi(
    num_mixes: int = 24,
    scale: SMTScale = DEFAULT_SMT_SCALE,
    seed: int = 0,
) -> Dict[str, object]:
    """Bandit/Choi IPC ratios over the eval mixes, sorted ascending.

    Returns the sorted ratio list, the geometric means vs Choi and vs
    plain ICount, and counts of mixes beyond ±4 %.
    """
    mixes = smt_eval_mixes()[:num_mixes]
    tasks: List[Task] = []
    for mix in mixes:
        names = (mix[0].name, mix[1].name)
        mix_label = f"{names[0]}-{names[1]}"
        tasks.append(Task(
            smt_static_task,
            dict(thread_names=names, policy_mnemonic=CHOI_POLICY.mnemonic,
                 scale=scale, seed=seed),
            label=f"fig13:{mix_label}:choi",
        ))
        tasks.append(Task(
            smt_static_task,
            dict(thread_names=names, policy_mnemonic=ICOUNT_POLICY.mnemonic,
                 scale=scale, seed=seed),
            label=f"fig13:{mix_label}:icount",
        ))
        tasks.append(Task(
            smt_bandit_task,
            dict(thread_names=names, scale=scale, seed=seed),
            label=f"fig13:{mix_label}:bandit",
        ))
    results = iter(run_parallel(tasks))
    ratios_choi: List[float] = []
    ratios_icount: List[float] = []
    for mix in mixes:
        choi = next(results).ipc
        icount = next(results).ipc
        bandit = next(results).ipc
        ratios_choi.append(bandit / choi)
        ratios_icount.append(bandit / icount)
    ratios_sorted = sorted(ratios_choi)
    return {
        "ratios_sorted": ratios_sorted,
        "gmean_vs_choi": geometric_mean(ratios_choi),
        "gmean_vs_icount": geometric_mean(ratios_icount),
        "wins_over_4pct": sum(1 for ratio in ratios_choi if ratio > 1.04),
        "losses_over_4pct": sum(1 for ratio in ratios_choi if ratio < 0.96),
    }


# =============================================================== Figure 14


def fig14_fourcore(
    trace_length: int = 12_000,
    max_mixes: int = 8,
    seed: int = 0,
    gap_scale: float = 3.0,
) -> Dict[str, float]:
    """4-core homogeneous mixes: gmean total IPC normalized to no-prefetch.

    ``gap_scale`` lowers per-core memory intensity to SPEC-rate levels so
    the single 2400-MTPS channel is contended but not hopelessly saturated
    (see WorkloadSpec.trace).
    """
    specs = tune_specs()[:max_mixes]
    lineup = list(PREFETCHER_LINEUP) + ["bandit"]
    seeds = [seed + core for core in range(4)]
    bases = run_parallel([
        Task(
            multicore_fixed_task,
            dict(spec_names=[spec.name] * 4, trace_length=trace_length,
                 seeds=seeds, gap_scale=gap_scale),
            label=f"fig14:{spec.name}:none",
        )
        for spec in specs
    ])
    tasks: List[Task] = []
    for spec, base in zip(specs, bases):
        mean_l2 = sum(base["l2_demand_accesses"]) // 4
        params = _scaled_params(mean_l2)
        tasks.extend(
            Task(
                multicore_fixed_task,
                dict(spec_names=[spec.name] * 4, trace_length=trace_length,
                     seeds=seeds, prefetcher_name=name, gap_scale=gap_scale),
                label=f"fig14:{spec.name}:{name}",
            )
            for name in PREFETCHER_LINEUP
        )
        tasks.append(Task(
            multicore_bandit_task,
            dict(spec_names=[spec.name] * 4, trace_length=trace_length,
                 seeds=seeds, params=params, seed=seed, gap_scale=gap_scale),
            label=f"fig14:{spec.name}:bandit",
        ))
    results = iter(run_parallel(tasks))
    ratios: Dict[str, List[float]] = {name: [] for name in lineup}
    for spec, base in zip(specs, bases):
        for name in lineup:
            ratios[name].append(next(results)["total_ipc"] / base["total_ipc"])
    return {name: geometric_mean(values) for name, values in ratios.items()}


# =============================================================== Figure 15


def fig15_rename_activity(
    num_mixes: int = 12,
    scale: SMTScale = DEFAULT_SMT_SCALE,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Average rename-stage cycle breakdown: Bandit vs Choi (Figure 15)."""
    mixes = smt_eval_mixes()[:num_mixes]
    keys = ("rob_full", "iq_full", "lq_full", "sq_full", "rf_full",
            "stalled_any", "idle", "running")
    sums = {"Choi": dict.fromkeys(keys, 0.0), "Bandit": dict.fromkeys(keys, 0.0)}
    tasks: List[Task] = []
    for mix in mixes:
        names = (mix[0].name, mix[1].name)
        mix_label = f"{names[0]}-{names[1]}"
        tasks.append(Task(
            smt_static_task,
            dict(thread_names=names, policy_mnemonic=CHOI_POLICY.mnemonic,
                 scale=scale, seed=seed),
            label=f"fig15:{mix_label}:choi",
        ))
        tasks.append(Task(
            smt_bandit_task,
            dict(thread_names=names, scale=scale, seed=seed),
            label=f"fig15:{mix_label}:bandit",
        ))
    results = iter(run_parallel(tasks))
    for mix in mixes:
        choi = next(results)
        bandit = next(results)
        for key, value in choi.rename.fractions().items():
            sums["Choi"][key] += value
        for key, value in bandit.rename.fractions().items():
            sums["Bandit"][key] += value
    count = len(mixes)
    return {
        name: {key: value / count for key, value in metrics.items()}
        for name, metrics in sums.items()
    }


# =============================================================== §6.5


def sec65_area_power() -> Dict[str, object]:
    """Bandit storage/area/power and relative overheads (§6.5)."""
    estimate = estimate_bandit_cost(num_arms=_num_arms())
    overheads = relative_overheads(estimate)
    return {
        "storage_bytes": estimate.storage_bytes,
        "area_mm2": estimate.area_mm2,
        "power_mw": estimate.power_mw,
        "area_fraction_of_icelake": overheads["area_fraction"],
        "power_fraction_of_icelake": overheads["power_fraction"],
        "storage_comparison": storage_comparison(num_arms=_num_arms()),
    }
