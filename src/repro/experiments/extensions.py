"""§9 future-work extensions, implemented.

The paper sketches several ways to spend a slightly larger storage budget;
this module implements the two that extend the *action space*:

- **Joint L1+L2 control** — one Bandit selects a (L1 stride degree,
  L2 ensemble arm) pair; the action space is the product of the two
  (§9: "use a single Bandit to control multiple ensembles").
- **Joint prefetch + replacement control** — one Bandit selects a
  (L2 ensemble arm, L2 replacement policy) pair, using the replacement
  policies of :mod:`repro.uncore.replacement`.

Both reuse the unmodified DUCB agent: only the arm decoding changes, which
is the reusability argument of the paper in action.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bandit.base import BanditConfig, MABAlgorithm
from repro.bandit.ducb import DUCB
from repro.bandit.hardware import MicroArmedBandit
from repro.constants import PREFETCH_EXPLORATION_C
from repro.core_model.trace_core import TraceCore
from repro.experiments.configs import (
    BASELINE_HIERARCHY_CONFIG,
    CORE_CONFIG_TABLE4,
    PREFETCH_BANDIT_CONFIG,
    PrefetchBanditParams,
)
from repro.prefetch.ensemble import EnsemblePrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.uncore.hierarchy import CacheHierarchy, HierarchyConfig
from repro.uncore.replacement import (
    LRUReplacement,
    PolicyCache,
    ReplacementPolicy,
    SRRIP,
)
from repro.workloads.trace import TraceRecord

#: L1 stride degrees exposed to the joint agent (0 = L1 prefetching off).
JOINT_L1_DEGREES: Tuple[int, ...] = (0, 1, 2)

#: L2 arm subset for joint control (keeps the product space small, as the
#: paper's example "10 L1 × 10 L2" suggests pruning).
JOINT_L2_ARMS: Tuple[int, ...] = (0, 1, 2, 5, 7, 10)


@dataclass(frozen=True)
class JointArm:
    """One action of the joint L1+L2 agent."""

    l1_degree: int
    l2_arm: int

    def label(self) -> str:
        return f"L1stride={self.l1_degree}/L2arm={self.l2_arm}"


def joint_arm_space(
    l1_degrees: Sequence[int] = JOINT_L1_DEGREES,
    l2_arms: Sequence[int] = JOINT_L2_ARMS,
) -> List[JointArm]:
    """The product action space of §9 (|L1| × |L2| arms)."""
    return [JointArm(d, a) for d in l1_degrees for a in l2_arms]


def run_joint_l1_l2_bandit(
    trace: Sequence[TraceRecord],
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    params: PrefetchBanditParams = PREFETCH_BANDIT_CONFIG,
    algorithm: Optional[MABAlgorithm] = None,
    seed: int = 0,
) -> Tuple[float, List[int]]:
    """One Bandit jointly reprogramming the L1 stride and the L2 ensemble.

    Returns (IPC, arm history).
    """
    arms = joint_arm_space()
    if algorithm is None:
        algorithm = DUCB(BanditConfig(
            num_arms=len(arms), gamma=0.98,
            exploration_c=PREFETCH_EXPLORATION_C, seed=seed
        ))
    if algorithm.num_arms != len(arms):
        raise ValueError("algorithm arm count must match the joint space")
    l1 = StridePrefetcher(degree=0)
    ensemble = EnsemblePrefetcher()
    hierarchy = CacheHierarchy(
        hierarchy_config, l2_prefetcher=ensemble, l1_prefetcher=l1
    )
    core = TraceCore(hierarchy, CORE_CONFIG_TABLE4)
    bandit = MicroArmedBandit(
        algorithm, selection_latency_cycles=params.selection_latency_cycles
    )

    def apply(arm_index: int) -> None:
        arm = arms[arm_index]
        l1.set_degree(arm.l1_degree)
        ensemble.set_arm(arm.l2_arm)

    bandit.reset_counters(core.counters())
    apply(bandit.begin_step(0.0))
    next_boundary = params.step_l2_accesses
    stats = hierarchy.stats
    for record in trace:
        core.execute(record)
        if stats.l2_demand_accesses >= next_boundary:
            next_boundary = stats.l2_demand_accesses + params.step_l2_accesses
            bandit.end_step(core.counters())
            apply(bandit.begin_step(core.retire_time))
    bandit.flush_step(core.counters())
    hierarchy.finalize()
    return core.ipc, list(algorithm.selection_history)


# ----------------------------------------------------------- replacement


@dataclass(frozen=True)
class PrefetchReplacementArm:
    """One action of the joint prefetch + replacement agent."""

    l2_arm: int
    replacement: str  # "lru" or "srrip"

    def label(self) -> str:
        return f"L2arm={self.l2_arm}/repl={self.replacement}"


def prefetch_replacement_arm_space(
    l2_arms: Sequence[int] = (0, 1, 5, 10),
    policies: Sequence[str] = ("lru", "srrip"),
) -> List[PrefetchReplacementArm]:
    return [
        PrefetchReplacementArm(arm, policy)
        for arm in l2_arms
        for policy in policies
    ]


class SwitchablePolicyCache(PolicyCache):
    """A PolicyCache whose replacement policy can be reprogrammed."""

    def set_replacement(self, policy: ReplacementPolicy) -> None:
        self.policy = policy


def run_joint_prefetch_replacement_bandit(
    trace: Sequence[TraceRecord],
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    params: PrefetchBanditParams = PREFETCH_BANDIT_CONFIG,
    seed: int = 0,
) -> Tuple[float, List[int]]:
    """One Bandit selecting (L2 ensemble arm, L2 replacement policy)."""
    arms = prefetch_replacement_arm_space()
    algorithm = DUCB(BanditConfig(
        num_arms=len(arms), gamma=0.98,
        exploration_c=PREFETCH_EXPLORATION_C, seed=seed
    ))
    ensemble = EnsemblePrefetcher()
    hierarchy = CacheHierarchy(hierarchy_config, l2_prefetcher=ensemble)
    # Swap the L2 for a policy-switchable cache before any access happens.
    l2 = SwitchablePolicyCache(
        "L2", hierarchy_config.l2_size_bytes, hierarchy_config.l2_ways,
        policy=LRUReplacement(), block_bytes=hierarchy_config.block_bytes,
    )
    hierarchy.l2 = l2
    policies: Dict[str, ReplacementPolicy] = {
        "lru": LRUReplacement(),
        "srrip": SRRIP(),
    }
    core = TraceCore(hierarchy, CORE_CONFIG_TABLE4)
    bandit = MicroArmedBandit(
        algorithm, selection_latency_cycles=params.selection_latency_cycles
    )

    def apply(arm_index: int) -> None:
        arm = arms[arm_index]
        ensemble.set_arm(arm.l2_arm)
        l2.set_replacement(policies[arm.replacement])

    bandit.reset_counters(core.counters())
    apply(bandit.begin_step(0.0))
    next_boundary = params.step_l2_accesses
    stats = hierarchy.stats
    for record in trace:
        core.execute(record)
        if stats.l2_demand_accesses >= next_boundary:
            next_boundary = stats.l2_demand_accesses + params.step_l2_accesses
            bandit.end_step(core.counters())
            apply(bandit.begin_step(core.retire_time))
    bandit.flush_step(core.counters())
    hierarchy.finalize()
    return core.ipc, list(algorithm.selection_history)
