"""Prefetching experiment runners (single-core and 4-core).

The runners replay a workload trace through the trace-driven core and
hierarchy with a chosen prefetcher configuration:

- :func:`run_fixed_prefetcher` — any named comparator (none, stride, bop,
  mlop, bingo, pythia, ipcp) or a fixed ensemble arm.
- :func:`run_bandit_prefetch` — the Micro-Armed Bandit driving the ensemble:
  one bandit step per 1,000 L2 demand accesses (Table 6), IPC reward from
  the core's counters, and the conservative 500-cycle selection latency
  (the previously selected arm stays in effect until it elapses, §6.1).
- :func:`best_static_arm` — the per-application oracle of §6.4.
- :func:`run_multicore_fixed` / :func:`run_multicore_bandit` — the 4-core
  experiments of §7.2.3 with per-core bandits and the §4.3 round-robin
  restart.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.bandit.base import MABAlgorithm
from repro.bandit.hardware import MicroArmedBandit
from repro.core_model.multicore import MulticoreSystem
from repro.core_model.sanitizer import (
    StepRecord,
    compare_step_logs,
    sanitize_enabled,
)
from repro.core_model.trace_core import CoreConfig, TraceCore
from repro.experiments.configs import (
    BASELINE_HIERARCHY_CONFIG,
    CORE_CONFIG_TABLE4,
    PREFETCH_BANDIT_CONFIG,
    PrefetchBanditParams,
    prefetch_bandit_algorithm,
)
from repro.prefetch.base import Prefetcher
from repro.prefetch.bingo import BingoPrefetcher
from repro.prefetch.bop import BOPrefetcher
from repro.prefetch.ensemble import EnsemblePrefetcher
from repro.prefetch.ip_stride import IPStridePrefetcher
from repro.prefetch.ipcp import IPCPPrefetcher
from repro.prefetch.mlop import MLOPPrefetcher
from repro.prefetch.pythia import PythiaPrefetcher
from repro.uncore.hierarchy import CacheHierarchy, HierarchyConfig, HierarchyStats
from repro.workloads.compiled import CompiledTrace
from repro.workloads.trace import TraceRecord

#: Runners accept either representation; compiled traces replay through the
#: allocation-free kernel, object traces through the compatibility path.
TraceInput = Union[Sequence[TraceRecord], CompiledTrace]


@dataclass
class PrefetchRunResult:
    """Outcome of one trace replay."""

    ipc: float
    instructions: int
    cycles: float
    stats: HierarchyStats
    arm_history: List[int] = field(default_factory=list)
    #: (cycle, arm) samples for exploration plots (Figure 7).
    arm_trace: List[Tuple[float, int]] = field(default_factory=list)
    #: Trace records replayed (throughput denominator for telemetry).
    records: int = 0


def _replay(
    core: TraceCore,
    trace: TraceInput,
    shadow_factory: Optional[Callable[[], TraceCore]] = None,
) -> None:
    """Replay ``trace`` on ``core`` via the fastest applicable kernel.

    Under ``REPRO_SANITIZE=1``, compiled replays also run the object path
    on a shadow stack and assert equivalence. ``shadow_factory`` builds
    that stack; runners whose prefetchers close over external state (the
    Pythia bandwidth probe) must provide it, because a deep copy of the
    core would leave the copied prefetcher probing the *original*
    hierarchy.
    """
    if isinstance(trace, CompiledTrace):
        if shadow_factory is not None and sanitize_enabled():
            core.run_compiled(trace, sanitize=True, shadow=shadow_factory())
        else:
            core.run_compiled(trace)
    else:
        core.run(trace)


def make_prefetcher(
    name: str, hierarchy_holder: Optional[list] = None
) -> Optional[Prefetcher]:
    """Build a comparator prefetcher by name.

    ``hierarchy_holder`` is a one-element list the runner fills with the
    hierarchy after construction; Pythia uses it for its bandwidth probe.
    """
    if name == "none":
        return None
    if name == "stride":
        return IPStridePrefetcher()
    if name == "bop":
        return BOPrefetcher()
    if name == "mlop":
        return MLOPPrefetcher()
    if name == "bingo":
        return BingoPrefetcher()
    if name == "ipcp":
        return IPCPPrefetcher()
    if name == "pythia":
        probe = _make_bandwidth_probe(hierarchy_holder)
        return PythiaPrefetcher(bandwidth_probe=probe)
    raise ValueError(f"unknown prefetcher {name!r}")


def _make_bandwidth_probe(hierarchy_holder: Optional[list]) -> Callable[[], float]:
    def probe() -> float:
        if not hierarchy_holder:
            return 0.0
        hierarchy: CacheHierarchy = hierarchy_holder[0]
        dram = hierarchy.dram
        # Treat an average queue delay of more than 4 line-times as high usage.
        return 1.0 if dram.average_queue_delay() > 4 * dram.cycles_per_line else 0.0

    return probe


def run_fixed_prefetcher(
    trace: TraceInput,
    prefetcher_name: str = "none",
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    core_config: CoreConfig = CORE_CONFIG_TABLE4,
    l1_prefetcher: Optional[Prefetcher] = None,
) -> PrefetchRunResult:
    """Replay ``trace`` with a fixed comparator prefetcher at the L2."""

    def build_core(l1: Optional[Prefetcher]) -> TraceCore:
        holder: list = []
        prefetcher = make_prefetcher(prefetcher_name, holder)
        built = CacheHierarchy(
            hierarchy_config, l2_prefetcher=prefetcher, l1_prefetcher=l1
        )
        holder.append(built)
        return TraceCore(built, core_config)

    core = build_core(l1_prefetcher)
    hierarchy = core.hierarchy
    _replay(
        core, trace,
        shadow_factory=lambda: build_core(copy.deepcopy(l1_prefetcher)),
    )
    hierarchy.finalize()
    return PrefetchRunResult(
        ipc=core.ipc,
        instructions=core.instructions,
        cycles=core.cycles,
        stats=hierarchy.stats,
        records=len(trace),
    )


def run_fixed_arm(
    trace: TraceInput,
    arm: int,
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    core_config: CoreConfig = CORE_CONFIG_TABLE4,
) -> PrefetchRunResult:
    """Replay ``trace`` with one ensemble arm held for the whole run."""

    def build_core() -> TraceCore:
        ensemble = EnsemblePrefetcher()
        ensemble.set_arm(arm)
        return TraceCore(
            CacheHierarchy(hierarchy_config, l2_prefetcher=ensemble),
            core_config,
        )

    core = build_core()
    hierarchy = core.hierarchy
    _replay(core, trace, shadow_factory=build_core)
    hierarchy.finalize()
    return PrefetchRunResult(
        ipc=core.ipc,
        instructions=core.instructions,
        cycles=core.cycles,
        stats=hierarchy.stats,
        arm_history=[arm],
        records=len(trace),
    )


def best_static_arm(
    trace: TraceInput,
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    core_config: CoreConfig = CORE_CONFIG_TABLE4,
    num_arms: Optional[int] = None,
) -> Tuple[int, Dict[int, float]]:
    """Exhaustively evaluate every arm; returns (best arm, per-arm IPC)."""
    total_arms = num_arms if num_arms is not None else EnsemblePrefetcher().num_arms
    per_arm: Dict[int, float] = {}
    for arm in range(total_arms):
        per_arm[arm] = run_fixed_arm(trace, arm, hierarchy_config, core_config).ipc
    best = max(per_arm, key=per_arm.get)
    return best, per_arm


def run_bandit_prefetch(
    trace: TraceInput,
    algorithm: Optional[MABAlgorithm] = None,
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    core_config: CoreConfig = CORE_CONFIG_TABLE4,
    params: PrefetchBanditParams = PREFETCH_BANDIT_CONFIG,
    seed: int = 0,
    ideal_latency: bool = False,
    l1_prefetcher: Optional[Prefetcher] = None,
    sanitize: Optional[bool] = None,
    _step_log: Optional[List[StepRecord]] = None,
) -> PrefetchRunResult:
    """Replay ``trace`` with the Micro-Armed Bandit driving the ensemble.

    ``ideal_latency`` removes the 500-cycle selection latency (the
    *BanditIdeal* configuration of Figure 9). ``l1_prefetcher`` optionally
    adds a fixed L1 prefetcher underneath (Figure 12's Stride_Bandit).

    ``sanitize`` (default: ``$REPRO_SANITIZE``, for compiled traces) runs
    the trace through *both* replay paths — the fused kernel with the
    record hook, and the object loop on an independent shadow stack — and
    asserts that every bandit step is identical across them: arm choices,
    step-boundary counters, and the DUCB reward estimates and selection
    counts. ``_step_log`` is the internal per-step capture those two runs
    compare; callers should not pass it.
    """
    if sanitize is None:
        sanitize = (
            sanitize_enabled()
            and isinstance(trace, CompiledTrace)
            and _step_log is None
        )
    if sanitize:
        return _run_bandit_sanitized(
            trace, algorithm, hierarchy_config, core_config, params,
            seed, ideal_latency, l1_prefetcher,
        )
    if algorithm is None:
        algorithm = prefetch_bandit_algorithm(seed=seed, params=params)
    ensemble = EnsemblePrefetcher(
        num_stride_trackers=params.num_stride_trackers,
        num_stream_trackers=params.num_stream_trackers,
    )
    hierarchy = CacheHierarchy(
        hierarchy_config, l2_prefetcher=ensemble, l1_prefetcher=l1_prefetcher
    )
    core = TraceCore(hierarchy, core_config)
    latency = 0 if ideal_latency else params.selection_latency_cycles
    bandit = MicroArmedBandit(algorithm, selection_latency_cycles=latency)

    bandit.reset_counters(core.counters())
    pending_arm = bandit.begin_step(core.retire_time)
    applied_arm = pending_arm
    ensemble.set_arm(pending_arm)
    arm_trace: List[Tuple[float, int]] = [(0.0, pending_arm)]
    next_boundary = params.step_l2_accesses
    stats = hierarchy.stats

    step_log = _step_log

    def log_step(state_core: TraceCore) -> None:
        # Sanitizer capture: the per-step state both replay paths must
        # reproduce bit-identically. Appended at the initial selection,
        # every step boundary, and after the trailing flush.
        if step_log is None:
            return
        step_log.append(StepRecord(
            step=len(step_log),
            instructions=state_core.instructions,
            cycles=state_core.retire_time,
            ipc=state_core.ipc,
            l2_demand_accesses=stats.l2_demand_accesses,
            arm=pending_arm,
            reward_estimates=tuple(algorithm.reward_estimates()),
            selection_counts=tuple(algorithm.selection_counts()),
        ))

    log_step(core)

    if isinstance(trace, CompiledTrace):
        # Compiled replay: the same per-record bandit logic as the object
        # loop below, fired from the kernel's record hook. The hook returns
        # the next (L2-access, retire-cycle) thresholds at which it can act
        # — the step boundary and the pending arm's selection-ready cycle —
        # so the kernel skips the state flush + call for every record in
        # between (both quantities are monotone, and only the hook itself
        # moves the thresholds).
        step_accesses = params.step_l2_accesses
        infinity = float("inf")

        # repro: mirror[bandit-step]
        def bandit_hook(hook_core: TraceCore) -> Tuple[int, float]:
            # repro: mirror[lane-bandit-step] begin
            nonlocal pending_arm, applied_arm, next_boundary
            retire_time = hook_core.retire_time
            if pending_arm != applied_arm and retire_time >= bandit.selection_ready_cycle:
                ensemble.set_arm(pending_arm)
                applied_arm = pending_arm
            if stats.l2_demand_accesses >= next_boundary:
                next_boundary = stats.l2_demand_accesses + step_accesses
                bandit.end_step(hook_core.counters())
                pending_arm = bandit.begin_step(retire_time)
                arm_trace.append((retire_time, pending_arm))
                log_step(hook_core)
                if ideal_latency:
                    ensemble.set_arm(pending_arm)
                    applied_arm = pending_arm
            return (
                next_boundary,
                bandit.selection_ready_cycle
                if pending_arm != applied_arm
                else infinity,
            )
            # repro: mirror[lane-bandit-step] end

        core.run_compiled(trace, record_hook=bandit_hook, sanitize=False)
    else:
        # repro: mirror[bandit-step] begin
        for record in trace:
            core.execute(record)
            if pending_arm != applied_arm and core.retire_time >= bandit.selection_ready_cycle:
                ensemble.set_arm(pending_arm)
                applied_arm = pending_arm
            if stats.l2_demand_accesses >= next_boundary:
                next_boundary = stats.l2_demand_accesses + params.step_l2_accesses
                bandit.end_step(core.counters())
                pending_arm = bandit.begin_step(core.retire_time)
                arm_trace.append((core.retire_time, pending_arm))
                log_step(core)
                if ideal_latency:
                    ensemble.set_arm(pending_arm)
                    applied_arm = pending_arm
        # repro: mirror[bandit-step] end
    # The last begin_step() is still awaiting its reward: train on the
    # trailing partial step (or retract it if it covered zero cycles).
    bandit.flush_step(core.counters())
    log_step(core)
    hierarchy.finalize()
    return PrefetchRunResult(
        ipc=core.ipc,
        instructions=core.instructions,
        cycles=core.cycles,
        stats=stats,
        arm_history=list(algorithm.selection_history),
        arm_trace=arm_trace,
        records=len(trace),
    )


def _run_bandit_sanitized(
    trace: TraceInput,
    algorithm: Optional[MABAlgorithm],
    hierarchy_config: HierarchyConfig,
    core_config: CoreConfig,
    params: PrefetchBanditParams,
    seed: int,
    ideal_latency: bool,
    l1_prefetcher: Optional[Prefetcher],
) -> PrefetchRunResult:
    """Run both bandit replay paths and assert per-step equivalence.

    The kernel-path run goes first with the caller's objects; the object-
    path run uses independent copies (a deep copy of ``algorithm`` taken
    *before* the first run trains it, and a fresh hierarchy stack), so the
    caller's result is exactly what the unsanitized call would return.
    """
    if not isinstance(trace, CompiledTrace):
        raise ValueError("sanitized bandit replay requires a CompiledTrace")
    shadow_algorithm = copy.deepcopy(algorithm)
    shadow_l1 = copy.deepcopy(l1_prefetcher)

    kernel_log: List[StepRecord] = []
    result = run_bandit_prefetch(
        trace, algorithm, hierarchy_config, core_config, params,
        seed=seed, ideal_latency=ideal_latency, l1_prefetcher=l1_prefetcher,
        sanitize=False, _step_log=kernel_log,
    )
    object_log: List[StepRecord] = []
    run_bandit_prefetch(
        trace.to_records(), shadow_algorithm, hierarchy_config, core_config,
        params, seed=seed, ideal_latency=ideal_latency,
        l1_prefetcher=shadow_l1, sanitize=False, _step_log=object_log,
    )
    compare_step_logs(kernel_log, object_log, context="run_bandit_prefetch")
    return result


# --------------------------------------------------------------------- 4-core


def run_multicore_fixed(
    traces: Sequence[Sequence[TraceRecord]],
    prefetcher_name: str = "none",
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    core_config: CoreConfig = CORE_CONFIG_TABLE4,
) -> Tuple[float, MulticoreSystem]:
    """4-core run with one independent comparator prefetcher per core."""
    holders: List[list] = [[] for _ in traces]
    prefetchers = [
        make_prefetcher(prefetcher_name, holders[index])
        for index in range(len(traces))
    ]
    system = MulticoreSystem(
        len(traces), hierarchy_config, core_config, prefetchers
    )
    for index, holder in enumerate(holders):
        holder.append(system.hierarchies[index])
    system.run(traces)
    return system.total_ipc(), system


def run_multicore_bandit(
    traces: Sequence[Sequence[TraceRecord]],
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    core_config: CoreConfig = CORE_CONFIG_TABLE4,
    params: PrefetchBanditParams = PREFETCH_BANDIT_CONFIG,
    seed: int = 0,
    rr_restart: bool = True,
) -> Tuple[float, MulticoreSystem]:
    """4-core run with one Micro-Armed Bandit per core (§7.2.3).

    Each core's DUCB uses ``rr_restart_prob`` from Table 6 so that a core
    trapped by inter-core interference eventually re-evaluates all arms.
    """
    num_cores = len(traces)
    ensembles = [EnsemblePrefetcher() for _ in range(num_cores)]
    system = MulticoreSystem(num_cores, hierarchy_config, core_config, ensembles)
    bandits: List[MicroArmedBandit] = []
    boundaries: List[int] = []
    pending: List[int] = []
    for index in range(num_cores):
        algorithm = prefetch_bandit_algorithm(
            seed=seed * num_cores + index,
            multicore=rr_restart,
            params=params,
        )
        bandit = MicroArmedBandit(
            algorithm, selection_latency_cycles=params.selection_latency_cycles
        )
        core = system.cores[index]
        bandit.reset_counters(core.counters())
        arm = bandit.begin_step(core.retire_time)
        ensembles[index].set_arm(arm)
        bandits.append(bandit)
        boundaries.append(params.step_l2_accesses)
        pending.append(arm)

    step = params.step_l2_accesses

    def hook(core_index: int, core: TraceCore) -> None:
        stats = system.hierarchies[core_index].stats
        bandit = bandits[core_index]
        if pending[core_index] != ensembles[core_index].arm_id and (
            core.retire_time >= bandit.selection_ready_cycle
        ):
            ensembles[core_index].set_arm(pending[core_index])
        if stats.l2_demand_accesses >= boundaries[core_index]:
            boundaries[core_index] = stats.l2_demand_accesses + step
            bandit.end_step(core.counters())
            pending[core_index] = bandit.begin_step(core.retire_time)

    system.run(traces, per_record_hook=hook)
    for index, bandit in enumerate(bandits):
        bandit.flush_step(system.cores[index].counters())
    return system.total_ipc(), system
