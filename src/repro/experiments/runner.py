"""Parallel experiment execution engine with result caching and telemetry.

Every paper figure decomposes into independent *tasks* — one trace replay
(or one SMT mix run) each. This module executes such task lists:

- :func:`run_parallel` — a deterministic parallel map over :class:`Task`
  lists. Results come back in submission order regardless of completion
  order, and every task carries its own seed in its kwargs, so ``--jobs 4``
  produces bit-identical figures to a serial run.
- :class:`ResultCache` — a content-keyed on-disk cache. The key is a stable
  SHA-256 over the task function's qualified name and a canonical encoding
  of its kwargs (workload spec name, trace length, seeds, and the config
  dataclasses), so a replay is re-executed only when an input changed.
  Payloads are pickled :class:`~repro.experiments.prefetch.PrefetchRunResult`
  / :class:`~repro.experiments.smt.SMTRunResult` values (or plain dicts);
  bumping :data:`CACHE_SCHEMA_VERSION` invalidates every stored entry.
- :class:`RunTelemetry` — per-task wall time and cache hit/miss accounting,
  plus a JSON run manifest emitted alongside the tables.

Experiment code does not pass the engine around: an
:class:`ExecutionContext` (jobs, cache, telemetry) is installed globally —
by the CLI from ``--jobs``/``--cache-dir``/``--no-cache``, or by the
benchmark harness — and :func:`run_parallel` picks it up. The default
context is serial and uncached, which keeps library use dependency-free.

Task *functions* must be module-level (the process pool pickles them by
reference) and must rebuild their inputs from picklable descriptions; the
ones defined here regenerate workload traces from spec names, which is
deterministic because trace generation is seeded.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import pickle
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field, fields, is_dataclass
from functools import lru_cache
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core_model.lane_kernel import LaneSpec

from repro.constants import PREFETCH_GAMMA
from repro.core_model.trace_core import CoreConfig
from repro.experiments.configs import (
    BASELINE_HIERARCHY_CONFIG,
    CORE_CONFIG_TABLE4,
    PREFETCH_BANDIT_CONFIG,
    SMT_CONFIG_TABLE5,
    PrefetchBanditParams,
    smt_algorithm_lineup,
    table8_algorithm_lineup,
)
from repro.experiments.prefetch import (
    PrefetchRunResult,
    run_bandit_prefetch,
    run_fixed_arm,
    run_fixed_prefetcher,
    run_multicore_bandit,
    run_multicore_fixed,
)
from repro.experiments.smt import (
    DEFAULT_SMT_SCALE,
    SMTRunResult,
    SMTScale,
    run_smt_bandit,
    run_smt_static,
)
from repro.smt.pipeline import SMTConfig
from repro.prefetch.base import Prefetcher
from repro.uncore.hierarchy import HierarchyConfig
from repro.workloads.compiled import compiled_trace_for
from repro.workloads.suites import spec_by_name

#: Bump to invalidate every cached result (simulator-visible semantics
#: changed: result dataclass layout, replay fidelity fixes, ...).
#: v5: defaulted parameters are folded into the fingerprint (see
#: :func:`task_key`), so keys of tasks that omitted kwargs changed.
#: v6: lane-batch payloads grew ``lane_kernel`` / ``lane_fallback``
#: telemetry fields, so cached lane payloads from v5 lack them.
CACHE_SCHEMA_VERSION = 6


# ============================================================== cache keys


def _canonical(value: Any) -> Any:
    """JSON-serializable canonical form of a task input.

    Stable across processes and interpreter runs: dataclasses flatten to
    ``[type name, sorted field/value pairs]``, dict items are sorted, floats
    go through ``repr`` (shortest round-trip form), and sets/ids/objects are
    rejected so unstable inputs fail loudly instead of hashing differently.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return [
            "@dc",
            type(value).__name__,
            [[f.name, _canonical(getattr(value, f.name))] for f in fields(value)],
        ]
    if isinstance(value, dict):
        items = [
            [json.dumps(_canonical(k), sort_keys=True), _canonical(v)]
            for k, v in value.items()
        ]
        return ["@dict", sorted(items, key=lambda kv: kv[0])]
    if isinstance(value, (list, tuple)):
        return ["@seq", [_canonical(item) for item in value]]
    if isinstance(value, float):
        return ["@f", repr(value)]
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise TypeError(
        f"cannot build a stable cache key from {type(value).__name__!r}; "
        "pass plain data or dataclasses"
    )


@lru_cache(maxsize=None)
def _fn_defaults(fn: Callable[..., Any]) -> Tuple[Tuple[str, Any], ...]:
    """The defaulted ``(name, value)`` pairs of ``fn``'s signature.

    Cached per function object: signatures are immutable for the lifetime
    of the process and ``task_key`` is called once per task per run.
    """
    parameters = inspect.signature(fn).parameters
    return tuple(
        (name, parameter.default)
        for name, parameter in parameters.items()
        if parameter.default is not inspect.Parameter.empty
    )


def task_key(fn: Callable[..., Any], kwargs: Dict[str, Any]) -> str:
    """Stable content hash identifying one task execution.

    Defaulted parameters the caller omitted are folded into the
    fingerprint at their default values: a task submitted without
    ``core_config`` and one submitted with the (identical) default share
    a key, and — the case that matters — editing a default changes every
    key it participated in, instead of silently serving results computed
    under the old default.
    """
    bound = {name: value for name, value in _fn_defaults(fn)}
    bound.update(kwargs)
    payload = json.dumps(
        [
            "repro-task",
            CACHE_SCHEMA_VERSION,
            f"{fn.__module__}.{fn.__qualname__}",
            _canonical(bound),
        ],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ==================================================================== tasks


@dataclass(frozen=True)
class Task:
    """One unit of experiment work: a module-level function plus kwargs."""

    fn: Callable[..., Any]
    kwargs: Dict[str, Any]
    label: str = ""
    #: Set False for tasks whose inputs cannot be content-hashed.
    cacheable: bool = True

    def key(self) -> str:
        return task_key(self.fn, self.kwargs)


class TaskExecutionError(RuntimeError):
    """A pool worker crashed; carries the identity of the failing task.

    The bare ``future.result()`` exception says nothing about *which* of a
    figure's dozens of replays died; this wrapper names the task (label,
    function, cache key) and chains the original exception as its cause.
    """

    def __init__(self, task: Task, key: Optional[str], error: BaseException):
        label = task.label or f"{task.fn.__module__}.{task.fn.__qualname__}"
        detail = f"task {label!r}"
        if key:
            detail += f" (key {key[:12]}…)"
        super().__init__(
            f"{detail} failed in pool worker: "
            f"{type(error).__name__}: {error}"
        )
        self.task = task
        self.task_key = key


# ==================================================================== cache


class ResultCache:
    """Content-keyed pickle store under ``directory/v<schema>/``.

    Writes are atomic (temp file + ``os.replace``), so concurrent workers
    and concurrent CLI invocations may share one cache directory. Unreadable
    or truncated entries are treated as misses and overwritten.
    """

    def __init__(self, directory: str | Path) -> None:
        self.root = Path(directory)
        self.directory = self.root / f"v{CACHE_SCHEMA_VERSION}"

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """Returns ``(hit, value)``; corrupt entries count as misses."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                return True, pickle.load(handle)
        except (
            OSError,
            pickle.UnpicklingError,
            EOFError,
            AttributeError,
            ImportError,  # covers ModuleNotFoundError: renamed/removed modules
            IndexError,
        ):
            # Stale pickles from a refactored module (moved classes, renamed
            # modules, truncated protocol frames) regenerate instead of
            # crashing the run.
            return False, None

    def put(self, key: str, value: Any) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.pkl"))


# ================================================================ telemetry


@dataclass
class TaskRecord:
    """Telemetry for one executed (or cache-served) task."""

    label: str
    key: str
    seconds: float
    cache_hit: bool
    #: Trace records the task replayed (0 when unknown or cache-served).
    records: int = 0
    #: Resolved lane kernel that produced the payload ("array", "dict",
    #: "scalar"); ``None`` for non-lane tasks. Cache hits report the kernel
    #: that computed the stored result (all kernels are bit-identical).
    lane_kernel: Optional[str] = None
    #: Why the batch fell back to the scalar path (``None`` when it did not
    #: fall back, or for non-lane tasks).
    lane_fallback: Optional[str] = None


class RunTelemetry:
    """Per-task wall time, throughput, and cache accounting for one run."""

    def __init__(self) -> None:
        self.tasks: List[TaskRecord] = []
        #: Named phase timings (trace generation, replay, reporting, ...)
        #: accumulated via :meth:`phase` / :meth:`add_phase`.
        self.phases: Dict[str, float] = {}
        self._started = time.perf_counter()

    def record(
        self,
        label: str,
        key: str,
        seconds: float,
        cache_hit: bool,
        records: int = 0,
        lane_kernel: Optional[str] = None,
        lane_fallback: Optional[str] = None,
    ) -> None:
        self.tasks.append(TaskRecord(
            label, key, seconds, cache_hit, records,
            lane_kernel=lane_kernel, lane_fallback=lane_fallback,
        ))

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into the named phase bucket."""
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into the named phase bucket."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_phase(name, time.perf_counter() - start)

    @property
    def cache_hits(self) -> int:
        return sum(1 for record in self.tasks if record.cache_hit)

    @property
    def cache_misses(self) -> int:
        return sum(1 for record in self.tasks if not record.cache_hit)

    @property
    def task_seconds(self) -> float:
        """Summed per-task execution time (not wall time under a pool)."""
        return sum(record.seconds for record in self.tasks)

    @property
    def wall_seconds(self) -> float:
        return time.perf_counter() - self._started

    @property
    def replayed_records(self) -> int:
        """Total trace records replayed by executed (non-cached) tasks."""
        return sum(record.records for record in self.tasks)

    @property
    def records_per_second(self) -> float:
        """Replay throughput over executed tasks (0 when nothing ran)."""
        executed = [r for r in self.tasks if not r.cache_hit and r.records]
        seconds = sum(r.seconds for r in executed)
        records = sum(r.records for r in executed)
        return records / seconds if seconds > 0 else 0.0

    def summary_line(self, name: str = "run", jobs: int = 1) -> str:
        line = (
            f"[telemetry] {name}: {len(self.tasks)} tasks "
            f"({self.cache_hits} cache hits, {self.cache_misses} misses), "
            f"task time {self.task_seconds:.2f}s, "
            f"wall {self.wall_seconds:.2f}s, jobs {jobs}"
        )
        throughput = self.records_per_second
        if throughput:
            line += f", {throughput:,.0f} records/s"
        return line

    def manifest(
        self, *, deterministic: bool = False, **extra: Any
    ) -> Dict[str, Any]:
        """The JSON run manifest emitted alongside the tables.

        ``deterministic=True`` zeroes every wall-clock-derived field
        (per-task seconds, totals, phases, throughput) so two runs of the
        same figure produce byte-identical manifests — the run-to-run
        stable part is exactly the task list, its ordering, the cache keys,
        and the replayed-record counts.
        """
        body: Dict[str, Any] = {
            "manifest_version": 3,
            "cache_schema_version": CACHE_SCHEMA_VERSION,
            "totals": {
                "tasks": len(self.tasks),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "task_seconds": 0.0 if deterministic
                else round(self.task_seconds, 6),
                "wall_seconds": 0.0 if deterministic
                else round(self.wall_seconds, 6),
                "replayed_records": self.replayed_records,
                "records_per_second": 0.0 if deterministic
                else round(self.records_per_second, 3),
            },
            "phases": {
                name: 0.0 if deterministic else round(seconds, 6)
                for name, seconds in sorted(self.phases.items())
            },
            "tasks": [self._task_entry(record, deterministic)
                      for record in self.tasks],
        }
        body.update(extra)
        return body

    @staticmethod
    def _task_entry(record: TaskRecord, deterministic: bool) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "label": record.label,
            "key": record.key,
            "seconds": 0.0 if deterministic else round(record.seconds, 6),
            "cache_hit": record.cache_hit,
            "records": record.records,
        }
        # Lane-batch disposition: present only for lane tasks, so scalar
        # task entries keep their v2 shape.
        if record.lane_kernel is not None:
            entry["lane_kernel"] = record.lane_kernel
            entry["lane_fallback"] = record.lane_fallback
        return entry

    def write_manifest(
        self, path: str | Path, *, deterministic: bool = False, **extra: Any
    ) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = self.manifest(deterministic=deterministic, **extra)
        path.write_text(json.dumps(body, indent=2) + "\n")
        return path


# ================================================================== context


@dataclass
class ExecutionContext:
    """How experiment task lists execute: parallelism, cache, telemetry."""

    jobs: int = 1
    cache: Optional[ResultCache] = None
    telemetry: RunTelemetry = field(default_factory=RunTelemetry)


_ACTIVE_CONTEXT = ExecutionContext()


def get_context() -> ExecutionContext:
    """The context :func:`run_parallel` uses when given no overrides."""
    return _ACTIVE_CONTEXT


def set_context(context: ExecutionContext) -> ExecutionContext:
    """Install ``context`` globally; returns the previous one."""
    global _ACTIVE_CONTEXT
    previous = _ACTIVE_CONTEXT
    _ACTIVE_CONTEXT = context
    return previous


@contextmanager
def use_context(context: ExecutionContext) -> Iterator[ExecutionContext]:
    """Temporarily install ``context`` (CLI and test harness entry point)."""
    previous = set_context(context)
    try:
        yield context
    finally:
        set_context(previous)


# ============================================================= parallel map


def _execute_timed(fn: Callable[..., Any], kwargs: Dict[str, Any]) -> Tuple[Any, float]:
    """Worker entry point: run one task and measure its wall time."""
    start = time.perf_counter()
    value = fn(**kwargs)
    return value, time.perf_counter() - start


def _lane_disposition(value: Any) -> Dict[str, Optional[str]]:
    """Lane-batch telemetry fields carried in a task payload, if any."""
    if isinstance(value, dict) and "lane_kernel" in value:
        return {
            "lane_kernel": value["lane_kernel"],
            "lane_fallback": value.get("lane_fallback"),
        }
    return {}


def run_parallel(
    tasks: Sequence[Task],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] | str = "context",
    telemetry: Optional[RunTelemetry] = None,
) -> List[Any]:
    """Execute ``tasks``, returning results in submission order.

    ``jobs``/``cache``/``telemetry`` default to the active
    :class:`ExecutionContext`. ``jobs <= 1`` runs in-process (and is the
    reference behaviour the pool must reproduce exactly); higher values fan
    misses out over a ``ProcessPoolExecutor``. Cached results short-circuit
    execution entirely and are recorded as hits in the telemetry.
    """
    context = get_context()
    if jobs is None:
        jobs = context.jobs
    if cache == "context":
        cache = context.cache
    if telemetry is None:
        telemetry = context.telemetry

    results: List[Any] = [None] * len(tasks)
    pending: List[Tuple[int, Optional[str], Task]] = []
    for index, task in enumerate(tasks):
        key = task.key() if (cache is not None and task.cacheable) else None
        if key is not None:
            hit, value = cache.get(key)
            if hit:
                results[index] = value
                telemetry.record(
                    task.label, key, 0.0, cache_hit=True,
                    **_lane_disposition(value),
                )
                continue
        pending.append((index, key, task))

    def finish(index: int, key: Optional[str], task: Task,
               value: Any, seconds: float) -> None:
        results[index] = value
        if key is not None:
            cache.put(key, value)
        if isinstance(value, dict):
            replayed = value.get("records", 0)
        else:
            replayed = getattr(value, "records", 0)
        telemetry.record(
            task.label, key or "", seconds, cache_hit=False,
            records=replayed if isinstance(replayed, int) else 0,
            **_lane_disposition(value),
        )

    if not pending:
        return results
    if jobs <= 1 or len(pending) == 1:
        for index, key, task in pending:
            value, seconds = _execute_timed(task.fn, dict(task.kwargs))
            finish(index, key, task, value, seconds)
        return results

    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
        futures = {
            pool.submit(_execute_timed, task.fn, dict(task.kwargs)):
                (index, key, task)
            for index, key, task in pending
        }
        # Buffer completions and finish() strictly in submission order, so
        # the telemetry (and therefore the run manifest's ``tasks`` list) is
        # deterministic regardless of worker completion order.
        completed: Dict[int, Tuple[Any, float]] = {}
        outstanding = set(futures)
        try:
            while outstanding:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in done:
                    index, key, task = futures[future]
                    try:
                        completed[index] = future.result()
                    except Exception as error:
                        raise TaskExecutionError(task, key, error) from error
        except BaseException:
            for future in outstanding:
                future.cancel()
            raise
    for index, key, task in pending:
        value, seconds = completed[index]
        finish(index, key, task, value, seconds)
    return results


# ======================================================= experiment tasks


def _make_l1(l1_kind: Optional[str]) -> Optional[Prefetcher]:
    """Build the fixed L1 prefetchers of Figure 12 from a picklable tag."""
    if l1_kind is None:
        return None
    if l1_kind == "stride2":
        from repro.prefetch.stride import StridePrefetcher

        return StridePrefetcher(degree=2)
    if l1_kind == "ipcp2":
        from repro.prefetch.ipcp import IPCPPrefetcher

        return IPCPPrefetcher(cs_degree=2, gs_degree=2)
    raise ValueError(f"unknown l1_kind {l1_kind!r}")


def fixed_prefetcher_task(
    *,
    spec_name: str,
    trace_length: int,
    seed: int = 0,
    prefetcher_name: str = "none",
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    core_config: CoreConfig = CORE_CONFIG_TABLE4,
    l1_kind: Optional[str] = None,
    gap_scale: float = 1.0,
) -> PrefetchRunResult:
    """One comparator-prefetcher replay, rebuilt from its spec name."""
    trace = compiled_trace_for(spec_name, trace_length, seed=seed,
                               gap_scale=gap_scale)
    return run_fixed_prefetcher(
        trace, prefetcher_name, hierarchy_config, core_config,
        l1_prefetcher=_make_l1(l1_kind),
    )


def fixed_arm_task(
    *,
    spec_name: str,
    trace_length: int,
    arm: int,
    seed: int = 0,
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    core_config: CoreConfig = CORE_CONFIG_TABLE4,
) -> PrefetchRunResult:
    """One fixed-ensemble-arm replay (a best-static-arm sample)."""
    trace = compiled_trace_for(spec_name, trace_length, seed=seed)
    return run_fixed_arm(trace, arm, hierarchy_config, core_config)


def bandit_prefetch_task(
    *,
    spec_name: str,
    trace_length: int,
    params: PrefetchBanditParams,
    seed: int = 0,
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    core_config: CoreConfig = CORE_CONFIG_TABLE4,
    algorithm_name: Optional[str] = None,
    algorithm_gamma: float = PREFETCH_GAMMA,
    ideal_latency: bool = False,
    l1_kind: Optional[str] = None,
) -> PrefetchRunResult:
    """One Micro-Armed-Bandit replay.

    ``algorithm_name`` selects a Table 8 lineup entry (Single / Periodic /
    eGreedy / UCB / DUCB) built with ``algorithm_gamma``; ``None`` uses the
    paper's default DUCB with the γ from ``params``.
    """
    trace = compiled_trace_for(spec_name, trace_length, seed=seed)
    algorithm = None
    if algorithm_name is not None:
        algorithm = table8_algorithm_lineup(
            seed=seed, gamma=algorithm_gamma
        )[algorithm_name]
    return run_bandit_prefetch(
        trace,
        algorithm=algorithm,
        hierarchy_config=hierarchy_config,
        core_config=core_config,
        params=params,
        seed=seed,
        ideal_latency=ideal_latency,
        l1_prefetcher=_make_l1(l1_kind),
    )


def multicore_fixed_task(
    *,
    spec_names: Sequence[str],
    trace_length: int,
    seeds: Sequence[int],
    prefetcher_name: str = "none",
    gap_scale: float = 1.0,
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    core_config: CoreConfig = CORE_CONFIG_TABLE4,
) -> Dict[str, Any]:
    """One N-core fixed-prefetcher run; returns a small picklable payload."""
    traces = [
        spec_by_name(name).trace(trace_length, seed=seed, gap_scale=gap_scale)
        for name, seed in zip(spec_names, seeds)
    ]
    total_ipc, system = run_multicore_fixed(
        traces, prefetcher_name, hierarchy_config, core_config
    )
    return {
        "total_ipc": total_ipc,
        "l2_demand_accesses": [
            hierarchy.stats.l2_demand_accesses
            for hierarchy in system.hierarchies
        ],
        "records": sum(len(trace) for trace in traces),
    }


def multicore_bandit_task(
    *,
    spec_names: Sequence[str],
    trace_length: int,
    seeds: Sequence[int],
    params: PrefetchBanditParams,
    seed: int = 0,
    gap_scale: float = 1.0,
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    core_config: CoreConfig = CORE_CONFIG_TABLE4,
) -> Dict[str, Any]:
    """One N-core per-core-bandit run (§7.2.3)."""
    traces = [
        spec_by_name(name).trace(trace_length, seed=s, gap_scale=gap_scale)
        for name, s in zip(spec_names, seeds)
    ]
    total_ipc, _ = run_multicore_bandit(
        traces, hierarchy_config, core_config, params, seed=seed
    )
    return {
        "total_ipc": total_ipc,
        "records": sum(len(trace) for trace in traces),
    }


def smt_static_task(
    *,
    thread_names: Tuple[str, str],
    policy_mnemonic: str,
    scale: SMTScale = DEFAULT_SMT_SCALE,
    config: SMTConfig = SMT_CONFIG_TABLE5,
    seed: int = 0,
) -> SMTRunResult:
    """One SMT mix under a fixed PG policy, rebuilt from mnemonics."""
    from repro.smt.pg_policy import PGPolicy
    from repro.workloads.smt import thread_profile

    mix = (thread_profile(thread_names[0]), thread_profile(thread_names[1]))
    policy = PGPolicy.from_mnemonic(policy_mnemonic)
    return run_smt_static(mix, policy, scale, config, seed=seed)


def smt_bandit_task(
    *,
    thread_names: Tuple[str, str],
    scale: SMTScale = DEFAULT_SMT_SCALE,
    config: SMTConfig = SMT_CONFIG_TABLE5,
    algorithm_name: Optional[str] = None,
    seed: int = 0,
) -> SMTRunResult:
    """One SMT mix under Bandit PG-policy control (§5.3).

    ``algorithm_name`` selects an alternative MAB algorithm from
    :func:`repro.experiments.configs.smt_algorithm_lineup` (Table 9's
    lineup); the default ``None`` is the paper's DUCB configuration.
    Algorithm objects are rebuilt per task from the name so the task stays
    cache-keyable and process-pool picklable.
    """
    from repro.workloads.smt import thread_profile

    mix = (thread_profile(thread_names[0]), thread_profile(thread_names[1]))
    algorithm = None
    if algorithm_name is not None:
        algorithm = smt_algorithm_lineup(seed=seed)[algorithm_name]
    return run_smt_bandit(mix, scale, config, algorithm=algorithm, seed=seed)


def lane_batch_task(
    *,
    spec_name: str,
    trace_length: int,
    lanes: Sequence["LaneSpec"],
    params: PrefetchBanditParams = PREFETCH_BANDIT_CONFIG,
    seed: int = 0,
    gap_scale: float = 1.0,
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    core_config: CoreConfig = CORE_CONFIG_TABLE4,
) -> Dict[str, Any]:
    """One batched multi-lane replay (arm fan-outs, replication sweeps).

    Every lane replays the same trace, so one kernel invocation replaces
    ``len(lanes)`` scalar pool tasks. The payload carries the per-lane
    results in lane order plus the total replayed-record count for the
    telemetry (each lane is a full replay of the trace), and the batch
    disposition: which kernel produced the results (``lane_kernel``) and,
    when the batch routed around the kernels, why (``lane_fallback``).
    Every kernel is bit-identical, so the disposition is observability
    metadata — it never changes the results — and is safe to cache.
    """
    from repro.core_model.lane_kernel import (
        lane_batch_fallback_reason,
        resolve_lane_kernel_mode,
        run_lane_batch,
    )

    trace = compiled_trace_for(spec_name, trace_length, seed=seed,
                               gap_scale=gap_scale)
    fallback = lane_batch_fallback_reason(trace, lanes, params)
    if fallback is None and core_config.rob_size <= 0:
        fallback = "non-positive rob_size"
    kernel = "scalar" if fallback else resolve_lane_kernel_mode(len(lanes))
    results = run_lane_batch(
        trace, lanes, hierarchy_config, core_config, params
    )
    return {
        "results": results,
        "records": len(trace) * len(lanes),
        "lane_kernel": kernel,
        "lane_fallback": fallback,
    }


# ==================================================== best-static-arm fanout


def best_static_arm_tasks(
    spec_name: str,
    trace_length: int,
    seed: int = 0,
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    num_arms: Optional[int] = None,
) -> List[Task]:
    """The per-arm task list behind the §6.4 best-static-arm oracle."""
    if num_arms is None:
        from repro.prefetch.ensemble import TABLE7_ARMS

        num_arms = len(TABLE7_ARMS)
    return [
        Task(
            fixed_arm_task,
            dict(
                spec_name=spec_name,
                trace_length=trace_length,
                arm=arm,
                seed=seed,
                hierarchy_config=hierarchy_config,
            ),
            label=f"{spec_name}:arm{arm}",
        )
        for arm in range(num_arms)
    ]


def parallel_best_static_arm(
    spec_name: str,
    trace_length: int,
    seed: int = 0,
    hierarchy_config: HierarchyConfig = BASELINE_HIERARCHY_CONFIG,
    num_arms: Optional[int] = None,
) -> Tuple[int, Dict[int, float]]:
    """:func:`repro.experiments.prefetch.best_static_arm` as a task fanout.

    Returns the same ``(best arm, per-arm IPC)`` pair, computed through the
    active execution context (parallel + cached when configured). With the
    lane kernel enabled (the default) the 11-arm fan-out collapses into a
    single batched task — one kernel invocation instead of 11 pool tasks —
    with bit-identical per-arm results either way.
    """
    from repro.core_model.lane_kernel import LaneSpec, lane_kernel_enabled

    if lane_kernel_enabled():
        if num_arms is None:
            from repro.prefetch.ensemble import TABLE7_ARMS

            num_arms = len(TABLE7_ARMS)
        lanes = tuple(LaneSpec("arm", arm=arm) for arm in range(num_arms))
        task = Task(
            lane_batch_task,
            dict(
                spec_name=spec_name,
                trace_length=trace_length,
                lanes=lanes,
                seed=seed,
                hierarchy_config=hierarchy_config,
            ),
            label=f"{spec_name}:arms0-{num_arms - 1}",
        )
        payload = run_parallel([task])[0]
        per_arm = {
            arm: result.ipc
            for arm, result in enumerate(payload["results"])
        }
        best = max(per_arm, key=per_arm.__getitem__)
        return best, per_arm

    tasks = best_static_arm_tasks(
        spec_name, trace_length, seed, hierarchy_config, num_arms
    )
    results = run_parallel(tasks)
    per_arm = {task.kwargs["arm"]: result.ipc
               for task, result in zip(tasks, results)}
    best = max(per_arm, key=per_arm.__getitem__)
    return best, per_arm
