"""Declarative scenario-matrix engine: axis grids expanded to frozen tasks.

The paper's evaluation is inherently a *grid* — workload suite x prefetcher
lineup x bandit algorithm x scale x replicate seed — yet the per-figure
fanouts started life as hand-written nested loops. This module makes the
grid a first-class value:

- :class:`MatrixSpec` — an ordered set of named axes plus GitHub-Actions
  style ``include``/``exclude`` filters, frozen and hashable.
- :func:`expand` — the deterministic point list of a spec: the cartesian
  product in axis-declaration order (last axis fastest), minus excluded
  points, plus included ones, in that order. Expansion is a pure function
  of the spec, so two processes expanding the same spec submit the same
  task list in the same order.
- scenario bindings — :func:`prefetch_task_for_point` /
  :func:`smt_task_for_point` map one point to the *same frozen*
  :class:`~repro.experiments.runner.Task` the hand-enumerated fanouts in
  :mod:`repro.experiments.figures` used to build (same function, same
  kwargs, same label, same cache key), so the figures become matrix
  instances without perturbing a single cached result.
- :func:`run_prefetch_matrix` — the self-contained sweep behind the
  ``matrix`` CLI subcommand: expands a spec, derives the per-workload
  bandit step length from a no-prefetch baseline pass (exactly like the
  figures do), executes everything through :func:`run_parallel`, and
  returns per-point rows.

Scenario grammar (the ``scenario`` axis): a comparator prefetcher name
(``none``/``stride``/``bingo``/``mlop``/``pythia``/...), ``arm<K>`` for the
K-th fixed Table 7 ensemble arm, ``bandit`` for the paper's default DUCB
controller, or a Table 8 lineup row (``Single``/``Periodic``/``eGreedy``/
``UCB``/``DUCB``) for an alternative algorithm. The SMT grammar mirrors it
with PG-policy arms (``arm<K>``), ``choi``, ``icount``, a raw policy
mnemonic, ``bandit``, and the Table 9 lineup rows.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, replace as dc_replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments.configs import (
    BASELINE_HIERARCHY_CONFIG,
    TABLE8_ALGORITHM_NAMES,
    PrefetchBanditParams,
    scaled_prefetch_params,
)
from repro.experiments.runner import (
    Task,
    bandit_prefetch_task,
    fixed_arm_task,
    fixed_prefetcher_task,
    run_parallel,
    smt_bandit_task,
    smt_static_task,
)
from repro.uncore.hierarchy import HierarchyConfig

#: Axis values must be canonical scalars: they flow into cache keys and
#: JSON specs unchanged.
AxisValue = Union[None, bool, int, float, str]

#: One expanded matrix point: ``{axis name: value}`` in axis order.
Point = Dict[str, AxisValue]

#: The two axes every scenario binding reads.
WORKLOAD_AXIS = "workload"
SCENARIO_AXIS = "scenario"

_ARM_SCENARIO = re.compile(r"arm(\d+)\Z")


def _freeze_point(
    point: Mapping[str, AxisValue], order: Sequence[str]
) -> Tuple[Tuple[str, AxisValue], ...]:
    """``point`` as a tuple of pairs following the axis declaration order."""
    return tuple((name, point[name]) for name in order if name in point)


@dataclass(frozen=True)
class MatrixSpec:
    """A compact sweep description: axes plus include/exclude filters.

    Construct via :meth:`build` (keyword-friendly, validates) or
    :meth:`from_dict` (JSON spec files); the raw tuple layout exists only
    to keep the dataclass frozen and hashable.

    - ``axes`` — ordered ``(name, values)`` pairs. Expansion order is the
      cartesian product with the *last* declared axis varying fastest.
    - ``exclude`` — partial assignments; a product point matching every
      pair of an entry is dropped.
    - ``include`` — full assignments appended after the filtered product,
      in declaration order. Includes are exempt from ``exclude`` (they are
      explicit opt-ins) and may carry values outside the declared axis
      lists — that is how one-off corner points enter a sweep.
    """

    axes: Tuple[Tuple[str, Tuple[AxisValue, ...]], ...]
    include: Tuple[Tuple[Tuple[str, AxisValue], ...], ...] = ()
    exclude: Tuple[Tuple[Tuple[str, AxisValue], ...], ...] = ()

    @classmethod
    def build(
        cls,
        axes: Union[
            Mapping[str, Sequence[AxisValue]],
            Sequence[Tuple[str, Sequence[AxisValue]]],
        ],
        include: Sequence[Mapping[str, AxisValue]] = (),
        exclude: Sequence[Mapping[str, AxisValue]] = (),
    ) -> "MatrixSpec":
        """Validating constructor from mappings/sequences.

        Rejects empty or duplicate axes, duplicate values within an axis,
        filters naming unknown axes, exclude values outside the declared
        axis values (such a filter can never match — always a typo), and
        include entries that do not assign every axis.
        """
        pairs = list(axes.items()) if isinstance(axes, Mapping) else list(axes)
        if not pairs:
            raise ValueError("matrix spec needs at least one axis")
        names = [name for name, _ in pairs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in {names!r}")
        frozen_axes: List[Tuple[str, Tuple[AxisValue, ...]]] = []
        for name, values in pairs:
            values = tuple(values)
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            if len(set(values)) != len(values):
                raise ValueError(f"axis {name!r} repeats a value: {values!r}")
            frozen_axes.append((name, values))
        by_name = dict(frozen_axes)
        for entry in exclude:
            for key, value in entry.items():
                if key not in by_name:
                    raise ValueError(f"exclude names unknown axis {key!r}")
                if value not in by_name[key]:
                    raise ValueError(
                        f"exclude value {value!r} is not on axis {key!r}; "
                        "it could never match"
                    )
        for entry in include:
            missing = set(names) - set(entry)
            if missing:
                raise ValueError(
                    f"include entry {dict(entry)!r} must assign every axis; "
                    f"missing {sorted(missing)!r}"
                )
            extra = set(entry) - set(names)
            if extra:
                raise ValueError(
                    f"include entry names unknown axes {sorted(extra)!r}"
                )
        return cls(
            axes=tuple(frozen_axes),
            include=tuple(_freeze_point(entry, names) for entry in include),
            exclude=tuple(
                _freeze_point(entry, names) for entry in exclude
            ),
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MatrixSpec":
        """Parse the JSON spec format (see EXPERIMENTS.md).

        ``{"axes": {name: [values...]}, "include": [{...}], "exclude":
        [{...}]}`` — any other top-level key is rejected so typos fail
        loudly instead of silently shrinking a sweep.
        """
        unknown = set(payload) - {"axes", "include", "exclude"}
        if unknown:
            raise ValueError(f"unknown matrix spec keys {sorted(unknown)!r}")
        if "axes" not in payload:
            raise ValueError("matrix spec is missing 'axes'")
        return cls.build(
            axes=payload["axes"],
            include=payload.get("include", ()),
            exclude=payload.get("exclude", ()),
        )

    @property
    def axis_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.axes)

    def axis_values(self, name: str) -> Tuple[AxisValue, ...]:
        for axis, values in self.axes:
            if axis == name:
                return values
        raise KeyError(name)

    def without_axes(self, *names: str) -> "MatrixSpec":
        """The sub-matrix over the remaining axes (for baseline passes).

        Only legal while no include/exclude entry mentions a removed axis:
        a filter on a dropped axis has no well-defined projection.
        """
        removed = set(names)
        unknown = removed - set(self.axis_names)
        if unknown:
            raise KeyError(sorted(unknown))
        for entry in self.include + self.exclude:
            touched = removed & {key for key, _ in entry}
            if touched:
                raise ValueError(
                    f"cannot drop axes {sorted(touched)!r}: an include/"
                    "exclude entry mentions them"
                )
        return MatrixSpec(
            axes=tuple(
                (name, values)
                for name, values in self.axes
                if name not in removed
            ),
            include=self.include,
            exclude=self.exclude,
        )


def expand(spec: MatrixSpec) -> List[Point]:
    """The deterministic point list of ``spec``.

    Cartesian product in axis order (last axis fastest), excludes applied
    as subset matches, includes appended afterwards in declaration order.
    A duplicate point (include colliding with the product or another
    include) raises: a silently repeated task would double-count in every
    consumer that walks results positionally.
    """
    names = spec.axis_names
    excludes = [dict(entry) for entry in spec.exclude]
    points: List[Point] = []
    for combo in itertools.product(*(values for _, values in spec.axes)):
        point = dict(zip(names, combo))
        if any(
            all(point[key] == value for key, value in entry.items())
            for entry in excludes
        ):
            continue
        points.append(point)
    seen = {_freeze_point(point, names) for point in points}
    for entry in spec.include:
        frozen = _freeze_point(dict(entry), names)
        if frozen in seen:
            raise ValueError(
                f"include entry {dict(entry)!r} duplicates an existing point"
            )
        seen.add(frozen)
        points.append(dict(entry))
    return points


def matrix_size(spec: MatrixSpec) -> int:
    """``len(expand(spec))`` without materializing task objects."""
    return len(expand(spec))


# ======================================================= scenario bindings


def default_label(prefix: str, point: Point) -> str:
    """``prefix:v1:v2:...`` over the point's values in axis order."""
    values = ":".join(_format_axis_value(value) for value in point.values())
    return f"{prefix}:{values}" if prefix else values


def _format_axis_value(value: AxisValue) -> str:
    # %g keeps float axis labels short (2400.0 -> "2400"), matching the
    # hand-written fig10 labels.
    return f"{value:g}" if isinstance(value, float) else str(value)


def prefetch_task_for_point(
    point: Point,
    *,
    trace_length: int,
    params: Optional[PrefetchBanditParams] = None,
    seed: int = 0,
    label: str = "",
    hierarchy_config: Optional[HierarchyConfig] = None,
    algorithm_gamma: Optional[float] = None,
) -> Task:
    """The frozen prefetch Task for one matrix point.

    Dispatches on the ``scenario`` axis value (see the module docstring
    grammar). ``hierarchy_config=None`` omits the kwarg so the task
    carries the worker's default — byte-for-byte what the hand-enumerated
    fanouts submitted (defaults are folded into the cache key either way;
    see :func:`repro.experiments.runner.task_key`). ``params`` is only
    consulted for bandit scenarios; fixed replays ignore it. Per-point
    ``trace_length``/``seed`` axis values override the call-level ones, so
    scale and replicate-seed axes need no special casing.
    """
    scenario = str(point[SCENARIO_AXIS])
    workload = str(point[WORKLOAD_AXIS])
    trace_length = int(point.get("trace_length", trace_length))  # type: ignore[arg-type]
    seed = int(point.get("seed", seed))  # type: ignore[arg-type]
    kwargs: Dict[str, Any] = dict(
        spec_name=workload, trace_length=trace_length, seed=seed,
    )
    arm_match = _ARM_SCENARIO.match(scenario)
    if arm_match:
        kwargs["arm"] = int(arm_match.group(1))
        # Reorder to match best_static_arm_tasks' historical kwargs layout
        # (cosmetic only — dict equality and cache keys ignore order).
        kwargs = dict(
            spec_name=workload, trace_length=trace_length,
            arm=kwargs["arm"], seed=seed,
        )
        if hierarchy_config is not None:
            kwargs["hierarchy_config"] = hierarchy_config
        return Task(fixed_arm_task, kwargs, label=label)
    if scenario == "bandit" or scenario in TABLE8_ALGORITHM_NAMES:
        if params is None:
            raise ValueError(
                f"scenario {scenario!r} needs bandit params; pass params= "
                "or params_for= (derived from a no-prefetch baseline)"
            )
        kwargs["params"] = params
        if scenario != "bandit":
            kwargs["algorithm_name"] = scenario
            if algorithm_gamma is not None:
                kwargs["algorithm_gamma"] = algorithm_gamma
        if hierarchy_config is not None:
            kwargs["hierarchy_config"] = hierarchy_config
        return Task(bandit_prefetch_task, kwargs, label=label)
    if scenario != "none":
        kwargs["prefetcher_name"] = scenario
    if hierarchy_config is not None:
        kwargs["hierarchy_config"] = hierarchy_config
    return Task(fixed_prefetcher_task, kwargs, label=label)


def prefetch_matrix_tasks(
    spec: MatrixSpec,
    *,
    trace_length: int,
    seed: int = 0,
    params_for: Optional[Callable[[Point], PrefetchBanditParams]] = None,
    label_for: Optional[Callable[[Point], str]] = None,
    hierarchy_for: Optional[Callable[[Point], Optional[HierarchyConfig]]] = None,
    algorithm_gamma: Optional[float] = None,
    label_prefix: str = "matrix",
) -> List[Task]:
    """Expand ``spec`` into its frozen prefetch task list.

    ``params_for``/``hierarchy_for``/``label_for`` are per-point hooks so
    figure fanouts can thread baseline-derived step lengths, per-point
    hierarchies (e.g. a ``dram_mtps`` axis), and their historical label
    schemes through the expansion. ``params_for`` is invoked lazily, only
    for bandit scenarios.
    """
    tasks: List[Task] = []
    for point in expand(spec):
        scenario = str(point[SCENARIO_AXIS])
        needs_params = (
            scenario == "bandit" or scenario in TABLE8_ALGORITHM_NAMES
        )
        tasks.append(prefetch_task_for_point(
            point,
            trace_length=trace_length,
            seed=seed,
            params=params_for(point) if needs_params and params_for else None,
            label=(label_for(point) if label_for
                   else default_label(label_prefix, point)),
            hierarchy_config=hierarchy_for(point) if hierarchy_for else None,
            algorithm_gamma=algorithm_gamma,
        ))
    return tasks


def smt_task_for_point(
    point: Point,
    *,
    scale: Any,
    seed: int = 0,
    label: str = "",
) -> Task:
    """The frozen SMT Task for one matrix point.

    The ``workload`` axis holds a ``first-second`` mix string (SMT thread
    profile names never contain ``-``); the ``scenario`` axis holds
    ``arm<K>`` (K-th :data:`~repro.smt.pg_policy.BANDIT_PG_ARMS` member),
    ``choi``, ``icount``, a raw PG-policy mnemonic, ``bandit`` (the
    paper's DUCB controller), or a Table 9 lineup row.
    """
    from repro.smt.pg_policy import BANDIT_PG_ARMS, CHOI_POLICY, ICOUNT_POLICY

    scenario = str(point[SCENARIO_AXIS])
    first, second = str(point[WORKLOAD_AXIS]).split("-", 1)
    names = (first, second)
    seed = int(point.get("seed", seed))  # type: ignore[arg-type]
    if scenario == "bandit" or scenario in TABLE8_ALGORITHM_NAMES:
        kwargs: Dict[str, Any] = dict(
            thread_names=names, scale=scale, seed=seed,
        )
        if scenario != "bandit":
            kwargs = dict(
                thread_names=names, scale=scale,
                algorithm_name=scenario, seed=seed,
            )
        return Task(smt_bandit_task, kwargs, label=label)
    arm_match = _ARM_SCENARIO.match(scenario)
    if arm_match:
        mnemonic = BANDIT_PG_ARMS[int(arm_match.group(1))].mnemonic
    elif scenario == "choi":
        mnemonic = CHOI_POLICY.mnemonic
    elif scenario == "icount":
        mnemonic = ICOUNT_POLICY.mnemonic
    else:
        mnemonic = scenario
    return Task(
        smt_static_task,
        dict(thread_names=names, policy_mnemonic=mnemonic,
             scale=scale, seed=seed),
        label=label,
    )


def smt_matrix_tasks(
    spec: MatrixSpec,
    *,
    scale: Any,
    seed: int = 0,
    label_for: Optional[Callable[[Point], str]] = None,
    label_prefix: str = "matrix",
) -> List[Task]:
    """Expand ``spec`` into its frozen SMT task list."""
    return [
        smt_task_for_point(
            point, scale=scale, seed=seed,
            label=(label_for(point) if label_for
                   else default_label(label_prefix, point)),
        )
        for point in expand(spec)
    ]


# ===================================================== self-contained sweep


def expand_workload_values(
    values: Sequence[AxisValue],
) -> Tuple[str, ...]:
    """Resolve ``suite:<name>`` workload-axis entries to suite members.

    Lets a spec say ``{"workload": ["suite:spec06_like"]}`` instead of
    enumerating members; plain names pass through untouched, order is
    preserved, and duplicates (a member listed both ways) are rejected.
    """
    from repro.workloads.suites import ALL_SUITES

    resolved: List[str] = []
    for value in values:
        name = str(value)
        if name.startswith("suite:"):
            suite = name[len("suite:"):]
            if suite not in ALL_SUITES:
                raise ValueError(
                    f"unknown suite {suite!r}; have {sorted(ALL_SUITES)!r}"
                )
            resolved.extend(spec.name for spec in ALL_SUITES[suite])
        else:
            resolved.append(name)
    if len(set(resolved)) != len(resolved):
        raise ValueError(f"workload axis repeats a member: {resolved!r}")
    return tuple(resolved)


@dataclass(frozen=True)
class MatrixRow:
    """One executed matrix point: the point, its IPC, and the baseline."""

    point: Tuple[Tuple[str, AxisValue], ...]
    ipc: float
    base_ipc: float

    @property
    def normalized_ipc(self) -> float:
        return self.ipc / self.base_ipc if self.base_ipc else float("nan")


def run_prefetch_matrix(
    spec: MatrixSpec,
    *,
    trace_length: int = 10_000,
    seed: int = 0,
    algorithm_gamma: Optional[float] = None,
) -> List[MatrixRow]:
    """Execute a prefetch scenario matrix end to end.

    Phase 1 runs one no-prefetch baseline per distinct (workload,
    trace_length, seed, dram_mtps) combination the points touch — the
    baseline both normalizes the reported IPC and derives the bandit step
    length (:func:`scaled_prefetch_params`), exactly as the figure
    fanouts do. Phase 2 submits every point through
    :func:`run_parallel`, so ``--jobs``/result-cache behaviour matches
    the figure commands.
    """
    points = expand(spec)
    BaseKey = Tuple[str, int, int, Optional[float]]

    def base_key(point: Point) -> BaseKey:
        return (
            str(point[WORKLOAD_AXIS]),
            int(point.get("trace_length", trace_length)),  # type: ignore[arg-type]
            int(point.get("seed", seed)),  # type: ignore[arg-type]
            (float(point["dram_mtps"])  # type: ignore[arg-type]
             if "dram_mtps" in point else None),
        )

    def hierarchy_for(point: Point) -> Optional[HierarchyConfig]:
        if "dram_mtps" in point:
            return dc_replace(
                BASELINE_HIERARCHY_CONFIG,
                dram_mtps=float(point["dram_mtps"]),  # type: ignore[arg-type]
            )
        return None

    base_keys: List[BaseKey] = []
    for point in points:
        key = base_key(point)
        if key not in base_keys:
            base_keys.append(key)
    base_tasks = []
    for workload, length, point_seed, mtps in base_keys:
        kwargs: Dict[str, Any] = dict(
            spec_name=workload, trace_length=length, seed=point_seed,
        )
        label = f"matrix:{workload}:none"
        if mtps is not None:
            kwargs["hierarchy_config"] = dc_replace(
                BASELINE_HIERARCHY_CONFIG, dram_mtps=mtps
            )
            label = f"matrix:{mtps:g}:{workload}:none"
        base_tasks.append(Task(fixed_prefetcher_task, kwargs, label=label))
    bases = dict(zip(base_keys, run_parallel(base_tasks)))

    def params_for(point: Point) -> PrefetchBanditParams:
        base = bases[base_key(point)]
        return scaled_prefetch_params(base.stats.l2_demand_accesses)

    tasks = prefetch_matrix_tasks(
        spec,
        trace_length=trace_length,
        seed=seed,
        params_for=params_for,
        hierarchy_for=hierarchy_for,
        algorithm_gamma=algorithm_gamma,
    )
    results = run_parallel(tasks)
    return [
        MatrixRow(
            point=_freeze_point(point, spec.axis_names),
            ipc=result.ipc,
            base_ipc=bases[base_key(point)].ipc,
        )
        for point, result in zip(points, results)
    ]
