"""Experiment configurations and runners regenerating the paper's evaluation.

- :mod:`repro.experiments.configs` — Tables 4/5/6/7 as code.
- :mod:`repro.experiments.prefetch` — single-/multi-core prefetching runners.
- :mod:`repro.experiments.smt` — SMT fetch PG policy runners.
- :mod:`repro.experiments.figures` — one entry point per paper table/figure.
- :mod:`repro.experiments.matrix` — declarative scenario-matrix engine
  (axis grids + include/exclude filters expanded to frozen task lists).
- :mod:`repro.experiments.runner` — parallel task execution, result cache,
  telemetry.
- :mod:`repro.experiments.reporting` — text-table formatting helpers.
"""

from repro.experiments.configs import (
    ALT_HIERARCHY_CONFIG,
    BASELINE_HIERARCHY_CONFIG,
    PREFETCH_BANDIT_CONFIG,
    SMT_BANDIT_TABLE6,
    prefetch_bandit_algorithm,
)
from repro.experiments.matrix import (
    MatrixRow,
    MatrixSpec,
    expand,
    prefetch_matrix_tasks,
    run_prefetch_matrix,
    smt_matrix_tasks,
)
from repro.experiments.prefetch import (
    PrefetchRunResult,
    best_static_arm,
    make_prefetcher,
    run_bandit_prefetch,
    run_fixed_prefetcher,
    run_multicore_bandit,
    run_multicore_fixed,
)
from repro.experiments.runner import (
    ExecutionContext,
    ResultCache,
    RunTelemetry,
    Task,
    run_parallel,
    use_context,
)
from repro.experiments.smt import (
    SMTRunResult,
    run_smt_bandit,
    run_smt_static,
    smt_best_static_arm,
)

__all__ = [
    "ExecutionContext",
    "MatrixRow",
    "MatrixSpec",
    "ResultCache",
    "RunTelemetry",
    "Task",
    "expand",
    "prefetch_matrix_tasks",
    "run_parallel",
    "run_prefetch_matrix",
    "smt_matrix_tasks",
    "use_context",
    "ALT_HIERARCHY_CONFIG",
    "BASELINE_HIERARCHY_CONFIG",
    "PREFETCH_BANDIT_CONFIG",
    "PrefetchRunResult",
    "SMTRunResult",
    "SMT_BANDIT_TABLE6",
    "best_static_arm",
    "make_prefetcher",
    "prefetch_bandit_algorithm",
    "run_bandit_prefetch",
    "run_fixed_prefetcher",
    "run_multicore_bandit",
    "run_multicore_fixed",
    "run_smt_bandit",
    "run_smt_static",
    "smt_best_static_arm",
]
