"""SMT experiment runners.

Every runner simulates one 2-thread mix on the Table 5 pipeline. Epoch
lengths are simulation-scaled (the paper's 64k-cycle epochs become 1k by
default); the *ratio* structure of Table 6 — bandit step = 2 epochs, initial
round-robin step = 32 epochs — is configurable and defaults to a proportional
scaling that keeps total run lengths tractable in Python.

Both runners dispatch to the fused SMT kernel
(:mod:`repro.core_model.smt_kernel`) by default and fall back to the
per-object pipeline when ``REPRO_SMT_KERNEL`` is off, ``use_kernel=False``
is passed, or the pipeline is subclassed. With ``REPRO_SANITIZE=1`` every
run executes on *both* paths against independent, identically seeded
stacks and asserts per-epoch equality (per-thread committed counts,
cycles, IPC) plus — for bandit runs — bit-identical arm histories and
estimator state.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bandit.base import MABAlgorithm
from repro.constants import SMT_STEP_EPOCHS
from repro.core_model.sanitizer import (
    SanitizeDivergence,
    SMTStepRecord,
    compare_step_logs,
    sanitize_enabled,
)
from repro.core_model.smt_kernel import kernel_eligible
from repro.experiments.configs import SMT_CONFIG_TABLE5, scaled_hill_climbing
from repro.smt.bandit_control import (
    BanditFetchController,
    SMTBanditConfig,
    run_static_policy,
)
from repro.smt.pg_policy import BANDIT_PG_ARMS, CHOI_POLICY, PGPolicy
from repro.smt.pipeline import RenameActivity, SMTConfig, SMTPipeline
from repro.workloads.smt import ThreadProfile


@dataclass
class SMTRunResult:
    """Outcome of one SMT mix run."""

    ipc: float
    per_thread: Tuple[int, int]
    rename: RenameActivity
    arm_history: List[int] = field(default_factory=list)


@dataclass(frozen=True)
class SMTScale:
    """Simulation-scale knobs shared by the SMT experiments.

    The paper simulates until 150 M instructions per thread with 64k-cycle
    epochs (~2,300 epochs); the defaults here keep the Table 6 *ratios*
    (bandit step = 2 epochs) while shrinking epoch length and count so one
    mix simulates in seconds. The round-robin step is shortened in the same
    proportion as the episode.
    """

    epoch_cycles: int = 500
    total_epochs: int = 400
    step_epochs: int = SMT_STEP_EPOCHS
    step_epochs_rr: int = 2


DEFAULT_SMT_SCALE = SMTScale()


def _want_sanitize(use_kernel: Optional[bool], pipeline_ready: bool) -> bool:
    """Sanitize by default only when both paths are actually available."""
    return sanitize_enabled() and use_kernel is None and pipeline_ready


def run_smt_static(
    mix: Tuple[ThreadProfile, ThreadProfile],
    policy: PGPolicy = CHOI_POLICY,
    scale: SMTScale = DEFAULT_SMT_SCALE,
    config: SMTConfig = SMT_CONFIG_TABLE5,
    seed: int = 0,
    sanitize: Optional[bool] = None,
    use_kernel: Optional[bool] = None,
    _epoch_log: Optional[List[SMTStepRecord]] = None,
) -> SMTRunResult:
    """One mix under a fixed PG policy with Hill Climbing active.

    ``sanitize=None`` defers to ``REPRO_SANITIZE``; a sanitized run
    executes the kernel and object paths on independent pipelines and
    compares their per-epoch checkpoints before returning the kernel
    result.
    """
    pipeline = SMTPipeline(list(mix), policy, config, seed=seed)
    if sanitize is None:
        sanitize = _want_sanitize(use_kernel, kernel_eligible(pipeline)) and (
            _epoch_log is None
        )
    if sanitize:
        return _run_smt_static_sanitized(mix, policy, scale, config, seed)
    hc_config = scaled_hill_climbing(scale.epoch_cycles)
    ipc = run_static_policy(
        pipeline, policy, scale.total_epochs, hc_config,
        use_kernel=use_kernel, epoch_log=_epoch_log,
    )
    return SMTRunResult(
        ipc=ipc,
        per_thread=pipeline.per_thread_committed(),
        rename=pipeline.rename_activity,
    )


def _run_smt_static_sanitized(
    mix: Tuple[ThreadProfile, ThreadProfile],
    policy: PGPolicy,
    scale: SMTScale,
    config: SMTConfig,
    seed: int,
) -> SMTRunResult:
    """Static run on both paths; returns the kernel result."""
    kernel_log: List[SMTStepRecord] = []
    result = run_smt_static(
        mix, policy, scale, config, seed,
        sanitize=False, use_kernel=True, _epoch_log=kernel_log,
    )
    object_log: List[SMTStepRecord] = []
    shadow = run_smt_static(
        mix, policy, scale, config, seed,
        sanitize=False, use_kernel=False, _epoch_log=object_log,
    )
    compare_step_logs(kernel_log, object_log, context="run_smt_static")
    if result.rename != shadow.rename:
        raise SanitizeDivergence(
            "run_smt_static", -1, "rename_activity", result.rename,
            shadow.rename,
        )
    return result


def run_smt_bandit(
    mix: Tuple[ThreadProfile, ThreadProfile],
    scale: SMTScale = DEFAULT_SMT_SCALE,
    config: SMTConfig = SMT_CONFIG_TABLE5,
    arms: Sequence[PGPolicy] = BANDIT_PG_ARMS,
    algorithm: Optional[MABAlgorithm] = None,
    seed: int = 0,
    sanitize: Optional[bool] = None,
    use_kernel: Optional[bool] = None,
    _epoch_log: Optional[List[SMTStepRecord]] = None,
) -> SMTRunResult:
    """One mix under Bandit PG-policy control (§5.3).

    The episode consumes exactly ``scale.total_epochs`` epochs for every
    algorithm: steps take their natural length (round-robin steps run
    ``step_epochs_rr`` epochs, main-loop steps ``step_epochs``) and a
    trailing remainder is flushed as one short final step, so static and
    bandit runs cover identical cycle counts.
    """
    pipeline = SMTPipeline(list(mix), arms[0], config, seed=seed)
    if sanitize is None:
        sanitize = _want_sanitize(use_kernel, kernel_eligible(pipeline)) and (
            _epoch_log is None
        )
    if sanitize:
        return _run_smt_bandit_sanitized(
            mix, scale, config, arms, algorithm, seed
        )
    controller_config = SMTBanditConfig(
        step_epochs=scale.step_epochs,
        step_epochs_rr=scale.step_epochs_rr,
        hill_climbing=scaled_hill_climbing(scale.epoch_cycles),
        seed=seed,
    )
    controller = BanditFetchController(
        pipeline, arms=arms, config=controller_config, algorithm=algorithm,
        use_kernel=use_kernel, epoch_log=_epoch_log,
    )
    ipc = controller.run_epoch_budget(scale.total_epochs)
    return SMTRunResult(
        ipc=ipc,
        per_thread=pipeline.per_thread_committed(),
        rename=pipeline.rename_activity,
        arm_history=list(controller.arm_history),
    )


def _run_smt_bandit_sanitized(
    mix: Tuple[ThreadProfile, ThreadProfile],
    scale: SMTScale,
    config: SMTConfig,
    arms: Sequence[PGPolicy],
    algorithm: Optional[MABAlgorithm],
    seed: int,
) -> SMTRunResult:
    """Bandit run on both paths; returns the kernel result.

    The caller's ``algorithm`` (when given) drives the kernel path; the
    object path runs a deep copy so both start from identical estimator
    state.
    """
    shadow_algorithm = copy.deepcopy(algorithm)
    kernel_log: List[SMTStepRecord] = []
    result = run_smt_bandit(
        mix, scale, config, arms, algorithm, seed,
        sanitize=False, use_kernel=True, _epoch_log=kernel_log,
    )
    object_log: List[SMTStepRecord] = []
    shadow = run_smt_bandit(
        mix, scale, config, arms, shadow_algorithm, seed,
        sanitize=False, use_kernel=False, _epoch_log=object_log,
    )
    compare_step_logs(kernel_log, object_log, context="run_smt_bandit")
    if result.arm_history != shadow.arm_history:
        raise SanitizeDivergence(
            "run_smt_bandit", -1, "arm_history", result.arm_history,
            shadow.arm_history,
        )
    if result.rename != shadow.rename:
        raise SanitizeDivergence(
            "run_smt_bandit", -1, "rename_activity", result.rename,
            shadow.rename,
        )
    return result


def smt_best_static_arm(
    mix: Tuple[ThreadProfile, ThreadProfile],
    arms: Sequence[PGPolicy] = BANDIT_PG_ARMS,
    scale: SMTScale = DEFAULT_SMT_SCALE,
    config: SMTConfig = SMT_CONFIG_TABLE5,
    seed: int = 0,
) -> Tuple[int, Dict[int, float]]:
    """Exhaustive per-arm evaluation (the Table 9 oracle).

    Fans the per-arm runs out through the active execution context
    (parallel + cached when configured); results are identical to a
    serial loop because each arm run is independent and fully seeded.
    """
    # Imported here: runner imports this module at top level.
    from repro.experiments.runner import Task, run_parallel, smt_static_task

    thread_names = (mix[0].name, mix[1].name)
    tasks = [
        Task(
            smt_static_task,
            dict(
                thread_names=thread_names,
                policy_mnemonic=policy.mnemonic,
                scale=scale,
                config=config,
                seed=seed,
            ),
            label=f"{thread_names[0]}-{thread_names[1]}:arm{index}",
        )
        for index, policy in enumerate(arms)
    ]
    results = run_parallel(tasks)
    per_arm = {index: result.ipc for index, result in enumerate(results)}
    best = max(per_arm, key=per_arm.__getitem__)
    return best, per_arm
