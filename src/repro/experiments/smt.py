"""SMT experiment runners.

Every runner simulates one 2-thread mix on the Table 5 pipeline. Epoch
lengths are simulation-scaled (the paper's 64k-cycle epochs become 1k by
default); the *ratio* structure of Table 6 — bandit step = 2 epochs, initial
round-robin step = 32 epochs — is configurable and defaults to a proportional
scaling that keeps total run lengths tractable in Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bandit.base import MABAlgorithm
from repro.constants import SMT_STEP_EPOCHS
from repro.experiments.configs import SMT_CONFIG_TABLE5, scaled_hill_climbing
from repro.smt.bandit_control import (
    BanditFetchController,
    SMTBanditConfig,
    run_static_policy,
)
from repro.smt.pg_policy import BANDIT_PG_ARMS, CHOI_POLICY, PGPolicy
from repro.smt.pipeline import RenameActivity, SMTConfig, SMTPipeline
from repro.workloads.smt import ThreadProfile


@dataclass
class SMTRunResult:
    """Outcome of one SMT mix run."""

    ipc: float
    per_thread: Tuple[int, int]
    rename: RenameActivity
    arm_history: List[int] = field(default_factory=list)


@dataclass(frozen=True)
class SMTScale:
    """Simulation-scale knobs shared by the SMT experiments.

    The paper simulates until 150 M instructions per thread with 64k-cycle
    epochs (~2,300 epochs); the defaults here keep the Table 6 *ratios*
    (bandit step = 2 epochs) while shrinking epoch length and count so one
    mix simulates in seconds. The round-robin step is shortened in the same
    proportion as the episode.
    """

    epoch_cycles: int = 500
    total_epochs: int = 400
    step_epochs: int = SMT_STEP_EPOCHS
    step_epochs_rr: int = 2


DEFAULT_SMT_SCALE = SMTScale()


def run_smt_static(
    mix: Tuple[ThreadProfile, ThreadProfile],
    policy: PGPolicy = CHOI_POLICY,
    scale: SMTScale = DEFAULT_SMT_SCALE,
    config: SMTConfig = SMT_CONFIG_TABLE5,
    seed: int = 0,
) -> SMTRunResult:
    """One mix under a fixed PG policy with Hill Climbing active."""
    pipeline = SMTPipeline(list(mix), policy, config, seed=seed)
    hc_config = scaled_hill_climbing(scale.epoch_cycles)
    ipc = run_static_policy(pipeline, policy, scale.total_epochs, hc_config)
    return SMTRunResult(
        ipc=ipc,
        per_thread=pipeline.per_thread_committed(),
        rename=pipeline.rename_activity,
    )


def run_smt_bandit(
    mix: Tuple[ThreadProfile, ThreadProfile],
    scale: SMTScale = DEFAULT_SMT_SCALE,
    config: SMTConfig = SMT_CONFIG_TABLE5,
    arms: Sequence[PGPolicy] = BANDIT_PG_ARMS,
    algorithm: Optional[MABAlgorithm] = None,
    seed: int = 0,
) -> SMTRunResult:
    """One mix under Bandit PG-policy control (§5.3).

    The number of bandit steps is derived from ``scale.total_epochs`` so
    static and bandit runs cover comparable cycle counts.
    """
    pipeline = SMTPipeline(list(mix), arms[0], config, seed=seed)
    controller_config = SMTBanditConfig(
        step_epochs=scale.step_epochs,
        step_epochs_rr=scale.step_epochs_rr,
        hill_climbing=scaled_hill_climbing(scale.epoch_cycles),
        seed=seed,
    )
    controller = BanditFetchController(
        pipeline, arms=arms, config=controller_config, algorithm=algorithm
    )
    rr_epochs = len(arms) * scale.step_epochs_rr
    main_epochs = max(scale.total_epochs - rr_epochs, scale.step_epochs)
    num_steps = len(arms) + main_epochs // scale.step_epochs
    ipc = controller.run_steps(num_steps)
    return SMTRunResult(
        ipc=ipc,
        per_thread=pipeline.per_thread_committed(),
        rename=pipeline.rename_activity,
        arm_history=list(controller.arm_history),
    )


def smt_best_static_arm(
    mix: Tuple[ThreadProfile, ThreadProfile],
    arms: Sequence[PGPolicy] = BANDIT_PG_ARMS,
    scale: SMTScale = DEFAULT_SMT_SCALE,
    config: SMTConfig = SMT_CONFIG_TABLE5,
    seed: int = 0,
) -> Tuple[int, Dict[int, float]]:
    """Exhaustive per-arm evaluation (the Table 9 oracle)."""
    per_arm: Dict[int, float] = {}
    for index, policy in enumerate(arms):
        per_arm[index] = run_smt_static(mix, policy, scale, config, seed).ipc
    best = max(per_arm, key=per_arm.get)
    return best, per_arm
