"""The paper's configuration tables as code.

- Table 4 — CPU/cache parameters for the prefetching experiments
  (:data:`BASELINE_HIERARCHY_CONFIG`; the Figure 11 variant is
  :data:`ALT_HIERARCHY_CONFIG`).
- Table 5 — SMT pipeline parameters (:data:`SMT_CONFIG_TABLE5`).
- Table 6 — Bandit hyperparameters for both use cases.
- Table 7 — the 11 prefetching arms (re-exported from the ensemble).

Cycle-scale note: the paper simulates 1 B instructions per trace and 64k-
cycle Hill-Climbing epochs; the Python substrate uses proportionally smaller
defaults (recorded in EXPERIMENTS.md). The *structure* of every experiment —
step lengths measured in L2 accesses or epochs, arm sets, γ/c values — is
taken from Table 6 unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bandit.base import BanditConfig, MABAlgorithm
from repro.bandit.ducb import DUCB
from repro.constants import (
    EPSILON_GREEDY_EPSILON,
    HILL_CLIMBING_DELTA_IQ_ENTRIES,
    HILL_CLIMBING_EPOCH_CYCLES,
    NUM_STREAM_TRACKERS,
    NUM_STRIDE_TRACKERS,
    PREFETCH_EXPLORATION_C,
    PREFETCH_GAMMA,
    PREFETCH_STEP_L2_ACCESSES,
    RR_RESTART_PROB_MULTICORE,
    SELECTION_LATENCY_CYCLES,
    SMT_EXPLORATION_C,
    SMT_GAMMA,
    SMT_NUM_ARMS,
    SMT_STEP_EPOCHS,
    SMT_STEP_EPOCHS_RR,
)
from repro.core_model.trace_core import CoreConfig
from repro.prefetch.ensemble import TABLE7_ARMS
from repro.smt.hill_climbing import HillClimbingConfig
from repro.smt.pipeline import SMTConfig
from repro.uncore.hierarchy import HierarchyConfig

#: Table 4: Skylake-like core with 256 KB L2 and 2 MB LLC/core.
BASELINE_HIERARCHY_CONFIG = HierarchyConfig(
    l1_size_bytes=32 * 1024,
    l1_ways=8,
    l2_size_bytes=256 * 1024,
    l2_ways=8,
    llc_size_bytes=2 * 1024 * 1024,
    llc_ways=16,
    dram_mtps=2400.0,
    core_frequency_ghz=4.0,
)

#: §7.2.2 alternative hierarchy: L2 = 1 MB, LLC = 1.5 MB per core.
ALT_HIERARCHY_CONFIG = HierarchyConfig(
    l1_size_bytes=32 * 1024,
    l1_ways=8,
    l2_size_bytes=1024 * 1024,
    l2_ways=16,
    llc_size_bytes=1536 * 1024,
    llc_ways=12,
    dram_mtps=2400.0,
    core_frequency_ghz=4.0,
)

#: Table 4 core parameters.
CORE_CONFIG_TABLE4 = CoreConfig(rob_size=256, commit_width=4, dispatch_width=6)

#: Table 5: SMT pipeline parameters.
SMT_CONFIG_TABLE5 = SMTConfig(
    fetch_width=5,
    decode_width=5,
    issue_width=8,
    commit_width=8,
    iq_size=97,
    rob_size=224,
    lq_size=72,
    sq_size=56,
    irf_size=180,
)

#: The 11 prefetching arms of Table 7.
PREFETCH_ARMS = TABLE7_ARMS

#: The comparator prefetchers of Figures 8/9/11/14, in the paper's order.
PREFETCHER_LINEUP = ("stride", "bingo", "mlop", "pythia")

#: Row labels of the Table 8/9 algorithm lineups, in table order. Also the
#: algorithm-scenario vocabulary of the matrix engine.
TABLE8_ALGORITHM_NAMES = ("Single", "Periodic", "eGreedy", "UCB", "DUCB")

#: Bandit steps targeted per trace at reproduction scale. The paper runs
#: thousands of 1,000-L2-access steps over 1 B instructions; our traces are
#: orders of magnitude shorter, so the step length is scaled to preserve the
#: *number* of learning opportunities rather than the absolute step size.
TARGET_BANDIT_STEPS = 200

#: DUCB forgetting factor at reproduction scale. Table 6's γ=0.999 encodes a
#: ~1000-step horizon out of ~30k steps; with ~80-step episodes the
#: equivalent horizon is a few tens of steps, hence γ≈0.98.
SCALED_GAMMA = 0.98


@dataclass(frozen=True)
class PrefetchBanditParams:
    """Table 6, data-prefetching column."""

    gamma: float = PREFETCH_GAMMA
    exploration_c: float = PREFETCH_EXPLORATION_C
    num_arms: int = len(TABLE7_ARMS)
    step_l2_accesses: int = PREFETCH_STEP_L2_ACCESSES
    num_stream_trackers: int = NUM_STREAM_TRACKERS
    num_stride_trackers: int = NUM_STRIDE_TRACKERS
    rr_restart_prob_multicore: float = RR_RESTART_PROB_MULTICORE
    selection_latency_cycles: int = SELECTION_LATENCY_CYCLES


PREFETCH_BANDIT_CONFIG = PrefetchBanditParams()


def scaled_prefetch_params(
    l2_demand_accesses: int,
    target_steps: int = TARGET_BANDIT_STEPS,
) -> PrefetchBanditParams:
    """Prefetch bandit params with step and γ scaled to the trace length.

    The step length is derived from a no-prefetch baseline pass so that
    every trace yields roughly ``target_steps`` learning opportunities
    (floor 25 L2 accesses per step to keep reward estimates meaningful).
    """
    from dataclasses import replace as dc_replace

    step = max(25, l2_demand_accesses // target_steps)
    return dc_replace(
        PREFETCH_BANDIT_CONFIG, step_l2_accesses=step, gamma=SCALED_GAMMA
    )


def prefetch_bandit_algorithm(
    seed: int = 0,
    multicore: bool = False,
    params: PrefetchBanditParams = PREFETCH_BANDIT_CONFIG,
) -> DUCB:
    """The Table 6 DUCB instance for the prefetching use case."""
    return DUCB(
        BanditConfig(
            num_arms=params.num_arms,
            gamma=params.gamma,
            exploration_c=params.exploration_c,
            rr_restart_prob=params.rr_restart_prob_multicore if multicore else 0.0,
            seed=seed,
        )
    )


def table8_algorithm_lineup(
    seed: int = 0,
    gamma: float = PREFETCH_GAMMA,
    num_arms: int = len(TABLE7_ARMS),
    exploration_c: float = PREFETCH_EXPLORATION_C,
) -> Dict[str, MABAlgorithm]:
    """The §7.1 algorithm lineup of Table 8, keyed by its row labels.

    ``gamma`` is a parameter because reproduction-scale runs shrink the
    DUCB horizon with the episode (see :data:`SCALED_GAMMA`).
    """
    from repro.bandit.epsilon_greedy import EpsilonGreedy
    from repro.bandit.heuristics import Periodic, Single
    from repro.bandit.ucb import UCB

    return {
        "Single": Single(BanditConfig(num_arms=num_arms, seed=seed)),
        "Periodic": Periodic(
            BanditConfig(num_arms=num_arms, seed=seed),
            period=40, buffer_length=4,
        ),
        "eGreedy": EpsilonGreedy(
            BanditConfig(num_arms=num_arms, epsilon=EPSILON_GREEDY_EPSILON,
                         seed=seed)
        ),
        "UCB": UCB(
            BanditConfig(num_arms=num_arms, exploration_c=exploration_c,
                         seed=seed)
        ),
        "DUCB": DUCB(
            BanditConfig(num_arms=num_arms, gamma=gamma,
                         exploration_c=exploration_c, seed=seed)
        ),
    }


def smt_algorithm_lineup(
    seed: int = 0,
    num_arms: int = SMT_NUM_ARMS,
) -> Dict[str, MABAlgorithm]:
    """The Table 9 algorithm lineup (SMT hyperparameters), keyed by row label.

    Fresh algorithm objects per call — bandit state is mutable, so sharing
    instances across runs would leak estimator state between mixes. The
    Periodic buffer/period values follow the SMT episode length the same way
    Table 8's follow the prefetching one.
    """
    from repro.bandit.epsilon_greedy import EpsilonGreedy
    from repro.bandit.heuristics import Periodic, Single
    from repro.bandit.ucb import UCB

    return {
        "Single": Single(BanditConfig(num_arms=num_arms, seed=seed)),
        "Periodic": Periodic(
            BanditConfig(num_arms=num_arms, seed=seed),
            period=20, buffer_length=4,
        ),
        "eGreedy": EpsilonGreedy(
            BanditConfig(num_arms=num_arms, epsilon=EPSILON_GREEDY_EPSILON,
                         seed=seed)
        ),
        "UCB": UCB(
            BanditConfig(num_arms=num_arms, exploration_c=SMT_EXPLORATION_C,
                         seed=seed)
        ),
        "DUCB": DUCB(
            BanditConfig(num_arms=num_arms, gamma=SMT_GAMMA,
                         exploration_c=SMT_EXPLORATION_C, seed=seed)
        ),
    }


@dataclass(frozen=True)
class SMTBanditParams:
    """Table 6, SMT column (epoch length scaled; see module docstring)."""

    gamma: float = SMT_GAMMA
    exploration_c: float = SMT_EXPLORATION_C
    num_arms: int = SMT_NUM_ARMS
    step_epochs: int = SMT_STEP_EPOCHS
    step_epochs_rr: int = SMT_STEP_EPOCHS_RR
    epoch_cycles: int = HILL_CLIMBING_EPOCH_CYCLES
    delta_iq_entries: float = HILL_CLIMBING_DELTA_IQ_ENTRIES


SMT_BANDIT_TABLE6 = SMTBanditParams()


def scaled_hill_climbing(
    epoch_cycles: int = 1000,
    params: SMTBanditParams = SMT_BANDIT_TABLE6,
) -> HillClimbingConfig:
    """Hill-Climbing config with a simulation-scaled epoch length."""
    return HillClimbingConfig(
        iq_size=SMT_CONFIG_TABLE5.iq_size,
        delta=params.delta_iq_entries,
        epoch_cycles=epoch_cycles,
    )
