"""Plain-text table/series formatting for the benchmark harness output."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table (the bench harness prints these).

    Rows shorter than the header are padded with empty cells; rows longer
    than the header are rejected (silently dropping data would corrupt a
    reproduction table).
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    for index, row in enumerate(materialized):
        if len(row) > len(headers):
            raise ValueError(
                f"row {index} has {len(row)} cells but only "
                f"{len(headers)} headers: {row!r}"
            )
        row.extend([""] * (len(headers) - len(row)))
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_summary_table(
    summaries: Mapping[str, "object"],
    title: str = "",
) -> str:
    """Render a Tables 8/9-style min/max/gmean block (values in percent)."""
    headers = [""] + list(summaries.keys())
    rows = []
    for metric in ("minimum", "maximum", "gmean"):
        label = {"minimum": "min", "maximum": "max", "gmean": "gmean"}[metric]
        row = [label]
        for summary in summaries.values():
            row.append(f"{getattr(summary, metric):.1f}")
        rows.append(row)
    return format_table(headers, rows, title)


def normalized_percent(values: Mapping[str, float], baseline: float) -> Dict[str, float]:
    """Express each value as a percent of ``baseline``."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return {key: 100.0 * value / baseline for key, value in values.items()}
