"""Prefetchers: the lightweight ensemble Bandit controls and all comparators.

- Lightweight prefetchers (§5.2): :class:`NextLinePrefetcher`,
  :class:`StreamPrefetcher`, :class:`StridePrefetcher` — composed by
  :class:`EnsemblePrefetcher` under the Table 7 arm encoding.
- Baseline: :class:`IPStridePrefetcher` (§6.4).
- Non-RL comparators: :class:`BOPrefetcher`, :class:`MLOPPrefetcher`,
  :class:`BingoPrefetcher`, :class:`IPCPPrefetcher`.
- MDP-RL comparator: :class:`PythiaPrefetcher` (SARSA, §2.2/§6.4).
"""

from repro.prefetch.base import NullPrefetcher, Prefetcher
from repro.prefetch.bingo import BingoPrefetcher
from repro.prefetch.bop import BOPrefetcher
from repro.prefetch.ensemble import ArmSpec, EnsemblePrefetcher
from repro.prefetch.ip_stride import IPStridePrefetcher
from repro.prefetch.ipcp import IPCPPrefetcher
from repro.prefetch.mlop import MLOPPrefetcher
from repro.prefetch.next_line import NextLinePrefetcher
from repro.prefetch.pythia import PythiaConfig, PythiaPrefetcher
from repro.prefetch.stream import StreamPrefetcher
from repro.prefetch.stride import StridePrefetcher

__all__ = [
    "ArmSpec",
    "BOPrefetcher",
    "BingoPrefetcher",
    "EnsemblePrefetcher",
    "IPCPPrefetcher",
    "IPStridePrefetcher",
    "MLOPPrefetcher",
    "NextLinePrefetcher",
    "NullPrefetcher",
    "Prefetcher",
    "PythiaConfig",
    "PythiaPrefetcher",
    "StreamPrefetcher",
    "StridePrefetcher",
]
