"""Bingo spatial data prefetcher (Bakhshalipour et al., HPCA 2019) [7].

Bingo records, for every visited region, the *footprint* of blocks touched
while the region was live, associating it with both a long event (trigger
``PC+Address``) and a short event (trigger ``PC+Offset``). On the next
trigger access to a region it looks the history up — preferring the more
precise PC+Address match and falling back to PC+Offset — and prefetches the
recorded footprint.

Structure follows the original: an *accumulation table* for live regions and
a *history table* keyed by the two event kinds. Capacities default to values
in the spirit of the 46 KB design the paper cites.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.prefetch.base import Prefetcher

#: Blocks per region (2 KB regions of 64 B blocks, as in the Bingo paper).
REGION_BLOCKS = 32

#: Set-bit positions for every byte value, for footprint expansion without
#: a 32-iteration scan per trigger.
_BYTE_BITS = tuple(
    tuple(bit for bit in range(8) if byte >> bit & 1) for byte in range(256)
)


@dataclass
class _RegionEntry:
    __slots__ = ("trigger_pc", "trigger_offset", "footprint")

    trigger_pc: int
    trigger_offset: int
    footprint: int  # bitmap over REGION_BLOCKS


class BingoPrefetcher(Prefetcher):
    """Footprint prefetching with PC+Address / PC+Offset history."""

    name = "bingo"

    def __init__(
        self,
        accumulation_capacity: int = 128,
        history_capacity: int = 2048,
    ) -> None:
        self.accumulation_capacity = accumulation_capacity
        self.history_capacity = history_capacity
        # region -> live accumulation entry.
        self._accumulating: "OrderedDict[int, _RegionEntry]" = OrderedDict()
        # (pc, region) -> footprint  /  (pc, offset) -> footprint.
        self._history_long: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self._history_short: "OrderedDict[Tuple[int, int], int]" = OrderedDict()

    @property
    def storage_bytes(self) -> int:
        # History entries: tag (~4 B) + 32-bit footprint; the full design the
        # paper compares against is 46 KB.
        return 46 * 1024

    def observe(self, pc: int, block: int, cycle: float, hit: bool) -> List[int]:
        region, offset = divmod(block, REGION_BLOCKS)
        entry = self._accumulating.get(region)
        if entry is not None:
            entry.footprint |= 1 << offset
            self._accumulating.move_to_end(region)
            return []
        # Trigger access for a new region generation.
        predictions = self._lookup(pc, region, offset)
        self._open_region(region, pc, offset)
        return predictions

    def _lookup(self, pc: int, region: int, offset: int) -> List[int]:
        footprint: Optional[int] = self._history_long.get((pc, region))
        if footprint is None:
            footprint = self._history_short.get((pc, offset))
        if footprint is None:
            return []
        base = region * REGION_BLOCKS
        # Expand set bits byte by byte (ascending order, trigger excluded) —
        # equivalent to scanning all REGION_BLOCKS bit positions.
        predictions: List[int] = []
        byte_base = 0
        while footprint:
            for bit in _BYTE_BITS[footprint & 0xFF]:
                position = byte_base + bit
                if position != offset:
                    predictions.append(base + position)
            footprint >>= 8
            byte_base += 8
        return predictions

    def _open_region(self, region: int, pc: int, offset: int) -> None:
        if len(self._accumulating) >= self.accumulation_capacity:
            old_region, old_entry = self._accumulating.popitem(last=False)
            self._commit(old_region, old_entry)
        self._accumulating[region] = _RegionEntry(
            trigger_pc=pc, trigger_offset=offset, footprint=1 << offset
        )

    def _commit(self, region: int, entry: _RegionEntry) -> None:
        self._store(self._history_long, (entry.trigger_pc, region), entry.footprint)
        self._store(
            self._history_short,
            (entry.trigger_pc, entry.trigger_offset),
            entry.footprint,
        )

    def _store(self, table: OrderedDict, key: Tuple[int, int], footprint: int) -> None:
        table[key] = footprint
        table.move_to_end(key)
        if len(table) > self.history_capacity:
            table.popitem(last=False)

    def reset(self) -> None:
        self._accumulating.clear()
        self._history_long.clear()
        self._history_short.clear()
