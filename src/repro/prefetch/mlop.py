"""Multi-Lookahead Offset Prefetcher (Shakerinava et al., DPC-3 2019) [60].

MLOP generalizes best-offset prefetching by scoring offsets at multiple
*lookahead levels*: an offset scores at level ``k`` if it would have
prefetched a line at least ``k`` accesses before its demand use. At the end
of each evaluation round MLOP selects, for every lookahead level, the best
offset whose score clears a threshold, yielding a small set of offsets
prefetched together — so unlike BOP it sustains several offsets at once.

This implementation keeps MLOP's structure (access map of recent blocks with
arrival indices, per-level scoring, per-round selection) over a simplified
single-zone access map.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from repro.prefetch.base import Prefetcher

DEFAULT_OFFSETS = tuple(range(-8, 0)) + tuple(range(1, 17))


class MLOPPrefetcher(Prefetcher):
    """Multi-lookahead offset scoring with per-level winners."""

    name = "mlop"

    def __init__(
        self,
        offsets: tuple = DEFAULT_OFFSETS,
        num_lookaheads: int = 4,
        round_length: int = 256,
        map_capacity: int = 256,
        score_fraction: float = 0.2,
    ) -> None:
        if num_lookaheads < 1:
            raise ValueError(f"num_lookaheads must be >= 1, got {num_lookaheads}")
        self.offsets = tuple(offsets)
        self.num_lookaheads = num_lookaheads
        self.round_length = round_length
        self.map_capacity = map_capacity
        self.score_fraction = score_fraction
        # block -> access index, LRU-bounded.
        self._access_map: "OrderedDict[int, int]" = OrderedDict()
        # offset -> per-lookahead-level score counts (transposed from the
        # paper's level-major matrix so the hot loop bumps a flat list).
        self._scores: Dict[int, List[int]] = {
            offset: [0] * num_lookaheads for offset in self.offsets
        }
        # (offset, counts) pairs snapshotted for the hot probe loop, so a
        # scoring hit skips the ``scores[offset]`` dict lookup.
        self._score_items = tuple(self._scores.items())
        self._access_index = 0
        self._round_accesses = 0
        self.selected_offsets: List[int] = [1]

    @property
    def storage_bytes(self) -> int:
        # The DPC-3 design reports ~8 KB: access maps + score matrix.
        return 8 * 1024

    def observe(self, pc: int, block: int, cycle: float, hit: bool) -> List[int]:  # repro: hot
        index = self._access_index + 1
        self._access_index = index
        access_map = self._access_map
        access_map_get = access_map.get
        num_lookaheads = self.num_lookaheads
        for offset, counts in self._score_items:
            origin = access_map_get(block - offset)
            if origin is None:
                continue
            age = index - origin
            # The offset would have prefetched this block `age` accesses
            # early; credit every lookahead level it satisfies.
            if age > num_lookaheads:
                age = num_lookaheads
            level = 0
            while level < age:
                counts[level] += 1
                level += 1
        access_map[block] = index
        access_map.move_to_end(block)
        if len(access_map) > self.map_capacity:
            access_map.popitem(last=False)
        self._round_accesses += 1
        if self._round_accesses >= self.round_length:
            self._finish_round()
        return [block + offset for offset in self.selected_offsets]

    def _finish_round(self) -> None:
        threshold = int(self.round_length * self.score_fraction)
        scores = self._scores
        chosen: List[int] = []
        for level in range(self.num_lookaheads):
            best = max(self.offsets, key=lambda offset: scores[offset][level])
            if scores[best][level] >= threshold and best not in chosen:
                chosen.append(best)
        self.selected_offsets = chosen if chosen else []
        self._scores = {
            offset: [0] * self.num_lookaheads for offset in self.offsets
        }
        self._score_items = tuple(self._scores.items())
        self._round_accesses = 0

    def reset(self) -> None:
        self._access_map.clear()
        self._scores = {
            offset: [0] * self.num_lookaheads for offset in self.offsets
        }
        self._score_items = tuple(self._scores.items())
        self._access_index = 0
        self._round_accesses = 0
        self.selected_offsets = [1]
