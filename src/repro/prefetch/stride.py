"""PC-based stride prefetcher with programmable degree (§5.2).

A table keyed by load PC tracks the last block touched and the last observed
stride; once the same stride repeats (confidence ≥ 2) the prefetcher issues
``degree`` strided blocks ahead. Because state is per-PC it sustains several
concurrent strides — the "can already distinguish environment states to some
extent" property §3.1 leans on.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List

from repro.prefetch.base import Prefetcher

#: Repeats of the same stride required before prefetching.
CONFIDENCE_THRESHOLD = 2


@dataclass
class _StrideEntry:
    __slots__ = ("last_block", "stride", "confidence")

    last_block: int
    stride: int
    confidence: int


class StridePrefetcher(Prefetcher):
    """Per-PC stride detection with LRU entry replacement."""

    name = "stride"

    def __init__(self, degree: int = 2, num_trackers: int = 64) -> None:
        if degree < 0:
            raise ValueError(f"degree must be >= 0, got {degree}")
        if num_trackers < 1:
            raise ValueError(f"num_trackers must be >= 1, got {num_trackers}")
        self.degree = degree
        self.num_trackers = num_trackers
        self._entries: "OrderedDict[int, _StrideEntry]" = OrderedDict()

    @property
    def storage_bytes(self) -> int:
        # Per entry: PC tag (~4 B) + last block (~6 B) + stride/conf (2 B).
        return self.num_trackers * 12

    def set_degree(self, degree: int) -> None:
        """Reprogram the degree register (POWER7-style, §5.2)."""
        if degree < 0:
            raise ValueError(f"degree must be >= 0, got {degree}")
        self.degree = degree

    def observe(self, pc: int, block: int, cycle: float, hit: bool) -> List[int]:  # repro: hot
        # Training happens regardless of degree so that the ensemble's arm
        # switches find an already-warm table; only emission is gated.
        entries = self._entries
        entry = entries.get(pc)
        if entry is None:
            if len(entries) >= self.num_trackers:
                entries.popitem(last=False)
            entries[pc] = _StrideEntry(last_block=block, stride=0, confidence=0)
            return []
        entries.move_to_end(pc)
        stride = block - entry.last_block
        entry.last_block = block
        if stride == 0:
            return []
        if stride == entry.stride:
            confidence = entry.confidence + 1
            entry.confidence = 3 if confidence > 3 else confidence
        else:
            entry.stride = stride
            entry.confidence = 1
            return []
        if entry.confidence < CONFIDENCE_THRESHOLD or self.degree == 0:
            return []
        return [block + stride * i for i in range(1, self.degree + 1)]

    def reset(self) -> None:
        self._entries.clear()
