"""Prefetcher interface.

A prefetcher observes the demand-access stream of the cache level it is
attached to and returns candidate blocks to prefetch. The hierarchy filters
duplicates/in-flight blocks, enforces MSHR limits, and performs the fills, so
prefetchers stay pure pattern detectors.
"""

from __future__ import annotations

from typing import List


class Prefetcher:
    """Base class for all prefetchers.

    Subclasses override :meth:`observe` and :attr:`storage_bytes` (the
    hardware budget reported in §7.2.1's comparison).
    """

    name = "base"

    #: Default hardware storage estimate; stateless designs leave it at 0
    #: and stateful ones either set it or override :attr:`storage_bytes`.
    _STORAGE_BYTES = 0

    @property
    def storage_bytes(self) -> int:
        """Hardware storage estimate in bytes; see repro.hwcost for the
        per-design derivations used in the paper's comparison."""
        return self._STORAGE_BYTES

    def observe(self, pc: int, block: int, cycle: float, hit: bool) -> List[int]:
        """React to a demand access to ``block`` (a 64-byte block number).

        ``hit`` says whether the access hit in the attached cache level.
        Returns block numbers to prefetch, in priority order.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Clear learned state (used between episodes)."""


class NullPrefetcher(Prefetcher):
    """No prefetching — the NoPrefetch baseline of Figures 8/9/12."""

    name = "none"

    def observe(self, pc: int, block: int, cycle: float, hit: bool) -> List[int]:
        return []
