"""IP-stride prefetcher [23] — the paper's baseline prefetcher (§6.4).

Functionally a fixed-degree PC-based stride prefetcher; kept as its own class
so experiment configurations and storage accounting can name it explicitly.
The classic Fu/Patel/Janssens design prefetches a single strided block ahead
(degree 1), which is what "simple IP-Stride" denotes in the paper's lineup.
"""

from __future__ import annotations

from repro.prefetch.stride import StridePrefetcher


class IPStridePrefetcher(StridePrefetcher):
    """The classic IP-stride baseline with a fixed degree."""

    name = "ip_stride"

    def __init__(self, degree: int = 1, num_trackers: int = 64) -> None:
        super().__init__(degree=degree, num_trackers=num_trackers)
