"""IPCP — Instruction Pointer Classifier-based Prefetching (ISCA 2020) [48].

IPCP classifies each load PC into one of three classes and dispatches a
per-class lightweight prefetcher:

- **CS (constant stride)** — the PC exhibits a stable block stride;
  prefetch ``degree`` strided blocks.
- **CPLX (complex)** — the PC's stride varies but its *delta sequence*
  repeats; predicted via a delta-correlating table.
- **GS (global stream)** — the PC participates in a dense region-level
  stream; prefetch the next blocks in stream direction.

The paper evaluates IPCP as a multi-level (L1+L2) comparator in Figure 12;
here a single instance can be attached at either level.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List

from repro.prefetch.base import Prefetcher

#: Region granularity for global-stream detection.
REGION_BLOCKS = 64


@dataclass
class _IPEntry:
    __slots__ = ("last_block", "stride", "confidence", "last_delta", "signature")

    last_block: int
    stride: int
    confidence: int
    last_delta: int
    signature: int


class IPCPPrefetcher(Prefetcher):
    """PC classification into CS / CPLX / GS with per-class prefetching."""

    name = "ipcp"

    def __init__(
        self,
        cs_degree: int = 3,
        gs_degree: int = 4,
        table_capacity: int = 128,
        cplx_capacity: int = 512,
    ) -> None:
        self.cs_degree = cs_degree
        self.gs_degree = gs_degree
        self.table_capacity = table_capacity
        self.cplx_capacity = cplx_capacity
        self._ip_table: "OrderedDict[int, _IPEntry]" = OrderedDict()
        # CPLX delta-correlation: signature -> predicted next delta.
        self._cplx_table: "OrderedDict[int, int]" = OrderedDict()
        # Region stream detection: region -> (last offset, direction votes).
        self._regions: "OrderedDict[int, List[int]]" = OrderedDict()

    @property
    def storage_bytes(self) -> int:
        return self.table_capacity * 16 + self.cplx_capacity * 4 + 64 * 4

    def observe(self, pc: int, block: int, cycle: float, hit: bool) -> List[int]:
        entry = self._ip_table.get(pc)
        if entry is None:
            if len(self._ip_table) >= self.table_capacity:
                self._ip_table.popitem(last=False)
            self._ip_table[pc] = _IPEntry(
                last_block=block, stride=0, confidence=0, last_delta=0, signature=0
            )
            return self._global_stream(block)
        self._ip_table.move_to_end(pc)
        delta = block - entry.last_block
        entry.last_block = block
        if delta == 0:
            return []

        predictions: List[int] = []
        if delta == entry.stride:
            entry.confidence = min(entry.confidence + 1, 3)
        else:
            entry.stride = delta
            entry.confidence = max(entry.confidence - 1, 0)
        if entry.confidence >= 2:
            # CS class: constant stride.
            predictions = [
                block + entry.stride * i for i in range(1, self.cs_degree + 1)
            ]
        else:
            # CPLX class: learn/lookup the delta-after-signature correlation.
            signature = ((entry.signature << 3) ^ (entry.last_delta & 0x3F)) & 0xFFF
            self._store_cplx(entry.signature, delta)
            predicted = self._cplx_table.get(signature)
            if predicted:
                predictions = [block + predicted]
            entry.signature = signature
        entry.last_delta = delta

        if not predictions:
            predictions = self._global_stream(block)
        return predictions

    def _store_cplx(self, signature: int, delta: int) -> None:
        self._cplx_table[signature] = delta
        self._cplx_table.move_to_end(signature)
        if len(self._cplx_table) > self.cplx_capacity:
            self._cplx_table.popitem(last=False)

    def _global_stream(self, block: int) -> List[int]:
        region, offset = divmod(block, REGION_BLOCKS)
        state = self._regions.get(region)
        if state is None:
            if len(self._regions) >= 64:
                self._regions.popitem(last=False)
            self._regions[region] = [offset, 0]
            return []
        self._regions.move_to_end(region)
        last_offset, votes = state
        if offset > last_offset:
            votes = min(votes + 1, 3)
        elif offset < last_offset:
            votes = max(votes - 1, -3)
        state[0] = offset
        state[1] = votes
        if votes >= 2:
            return [block + i for i in range(1, self.gs_degree + 1)]
        if votes <= -2:
            return [block - i for i in range(1, self.gs_degree + 1)]
        return []

    def reset(self) -> None:
        self._ip_table.clear()
        self._cplx_table.clear()
        self._regions.clear()
