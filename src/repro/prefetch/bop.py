"""Best-Offset Prefetcher (Michaud, HPCA 2016) [47].

BOP learns a single best offset for *all* cache lines: each learning round it
scores every candidate offset by checking whether ``block - offset`` was
recently accessed (i.e. the offset would have produced a timely prefetch),
and at the end of the round adopts the highest-scoring offset. It always
prefetches with degree 1. §8 discusses why this fails under high-but-
imperfect temporal homogeneity — it cannot sustain several offsets at once —
making it a useful contrast for the ensemble approach.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from repro.prefetch.base import Prefetcher

#: Default candidate offsets (a subset of BOP's 52-entry list).
DEFAULT_OFFSETS = (1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, -1, -2, -3, -4)


class BOPrefetcher(Prefetcher):
    """Best-offset prefetching with a recent-requests table."""

    name = "bop"

    def __init__(
        self,
        offsets: tuple = DEFAULT_OFFSETS,
        round_length: int = 100,
        recent_capacity: int = 128,
        score_threshold: int = 20,
    ) -> None:
        if round_length < 1:
            raise ValueError(f"round_length must be >= 1, got {round_length}")
        self.offsets = tuple(offsets)
        self.round_length = round_length
        self.recent_capacity = recent_capacity
        self.score_threshold = score_threshold
        self._recent: "OrderedDict[int, None]" = OrderedDict()
        self._scores: Dict[int, int] = {offset: 0 for offset in self.offsets}
        self._round_accesses = 0
        self.best_offset = 1
        self._active = True

    @property
    def storage_bytes(self) -> int:
        # Recent-requests table (~6 B/entry) + one score counter per offset.
        return self.recent_capacity * 6 + len(self.offsets) * 2

    def observe(self, pc: int, block: int, cycle: float, hit: bool) -> List[int]:
        for offset in self.offsets:
            if (block - offset) in self._recent:
                self._scores[offset] += 1
        self._remember(block)
        self._round_accesses += 1
        if self._round_accesses >= self.round_length:
            self._finish_round()
        if not self._active:
            return []
        return [block + self.best_offset]

    def _remember(self, block: int) -> None:
        self._recent[block] = None
        self._recent.move_to_end(block)
        if len(self._recent) > self.recent_capacity:
            self._recent.popitem(last=False)

    def _finish_round(self) -> None:
        best = max(self.offsets, key=lambda offset: self._scores[offset])
        best_score = self._scores[best]
        # BOP turns itself off when no offset scores above threshold.
        self._active = best_score >= self.score_threshold
        if self._active:
            self.best_offset = best
        self._scores = {offset: 0 for offset in self.offsets}
        self._round_accesses = 0

    def reset(self) -> None:
        self._recent.clear()
        self._scores = {offset: 0 for offset in self.offsets}
        self._round_accesses = 0
        self.best_offset = 1
        self._active = True
