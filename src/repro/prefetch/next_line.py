"""Next-line prefetcher — one of the three ensemble members (§5.2)."""

from __future__ import annotations

from typing import List

from repro.prefetch.base import Prefetcher


class NextLinePrefetcher(Prefetcher):
    """Prefetch ``block + 1`` on every observed demand access.

    The Table 7 arm encoding turns it on or off; it has no other state, so
    its storage cost is a single enable bit.
    """

    name = "next_line"
    _STORAGE_BYTES = 1

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled

    def observe(self, pc: int, block: int, cycle: float, hit: bool) -> List[int]:
        if not self.enabled:
            return []
        return [block + 1]
