"""Bandit-controlled prefetcher ensemble (§5.2, Table 7).

An arm encodes whether the next-line prefetcher is on, the degree of the
PC-stride prefetcher, and the degree of the stream prefetcher (degree 0 means
off). The Bandit agent writes its arm selection into "programmable registers"
exactly as the POWER7 exposes prefetcher aggressiveness; here that is
:meth:`EnsemblePrefetcher.set_arm`.

The component prefetchers keep *training* on the demand stream regardless of
the active arm so that a newly selected arm is effective immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.constants import (
    NUM_STREAM_TRACKERS,
    NUM_STRIDE_TRACKERS,
    TABLE7_ARM_TABLE,
)
from repro.prefetch.base import Prefetcher
from repro.prefetch.next_line import NextLinePrefetcher
from repro.prefetch.stream import StreamPrefetcher
from repro.prefetch.stride import StridePrefetcher


@dataclass(frozen=True)
class ArmSpec:
    """One Table 7 arm: ensemble configuration."""

    next_line: bool
    stride_degree: int
    stream_degree: int

    def __post_init__(self) -> None:
        if self.stride_degree < 0 or self.stream_degree < 0:
            raise ValueError("degrees must be >= 0")

    def label(self) -> str:
        return (
            f"NL={'on' if self.next_line else 'off'}"
            f"/stride={self.stride_degree}/stream={self.stream_degree}"
        )


#: The 11 arms of Table 7, in arm-id order. The raw (next_line,
#: stride_degree, stream_degree) rows live in :data:`repro.constants.
#: TABLE7_ARM_TABLE` so the paper numbers have a single home.
TABLE7_ARMS: Tuple[ArmSpec, ...] = tuple(
    ArmSpec(next_line=nl, stride_degree=stride, stream_degree=stream)
    for nl, stride, stream in TABLE7_ARM_TABLE
)


class EnsemblePrefetcher(Prefetcher):
    """Next-line + PC-stride + stream, reconfigured by arm id."""

    name = "ensemble"

    def __init__(
        self,
        arms: Sequence[ArmSpec] = TABLE7_ARMS,
        num_stride_trackers: int = NUM_STRIDE_TRACKERS,
        num_stream_trackers: int = NUM_STREAM_TRACKERS,
    ) -> None:
        if not arms:
            raise ValueError("ensemble requires at least one arm")
        self.arms: Tuple[ArmSpec, ...] = tuple(arms)
        self.next_line = NextLinePrefetcher(enabled=False)
        self.stride = StridePrefetcher(degree=0, num_trackers=num_stride_trackers)
        self.stream = StreamPrefetcher(degree=0, num_trackers=num_stream_trackers)
        self._arm_id = 0
        self.set_arm(0)

    @property
    def num_arms(self) -> int:
        return len(self.arms)

    @property
    def arm_id(self) -> int:
        return self._arm_id

    @property
    def storage_bytes(self) -> int:
        # The component prefetchers are "already fundamental parts of modern
        # processors" (§7.2.1); together with them the ensemble is < 2 KB.
        return (
            self.next_line.storage_bytes
            + self.stride.storage_bytes
            + self.stream.storage_bytes
        )

    def set_arm(self, arm_id: int) -> None:
        """Write the arm's configuration into the degree registers."""
        if not 0 <= arm_id < len(self.arms):
            raise ValueError(f"arm id {arm_id} out of range [0, {len(self.arms)})")
        spec = self.arms[arm_id]
        self._arm_id = arm_id
        self.next_line.enabled = spec.next_line
        self.stride.set_degree(spec.stride_degree)
        self.stream.set_degree(spec.stream_degree)

    def observe(self, pc: int, block: int, cycle: float, hit: bool) -> List[int]:  # repro: hot
        # Every component trains on the demand stream regardless of the
        # active arm (so a newly selected arm is effective immediately);
        # the dedup pass only runs when more than one emitted candidates.
        nl = self.next_line.observe(pc, block, cycle, hit)
        st = self.stride.observe(pc, block, cycle, hit)
        sm = self.stream.observe(pc, block, cycle, hit)
        if not st and not sm:
            return nl
        candidates = list(nl)
        seen = set(nl)
        for candidate in st:
            if candidate not in seen:
                seen.add(candidate)
                candidates.append(candidate)
        for candidate in sm:
            if candidate not in seen:
                seen.add(candidate)
                candidates.append(candidate)
        return candidates

    def reset(self) -> None:
        self.stride.reset()
        self.stream.reset()
