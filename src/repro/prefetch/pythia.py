"""Pythia-like MDP-RL prefetcher (Bera et al., MICRO 2021) [11].

Pythia formulates prefetching as MDP-RL: the state is derived from program
features (we use the load PC and the last observed block delta, one of
Pythia's default feature combinations), and the 64 actions are
(offset, degree) pairs drawn from 16 offsets × 4 degrees. Action selection is
ε-greedy over learned state-action values (the paper notes Pythia "uses an
ε-Greedy action selection mechanism", §7.2.1); the reward mirrors Pythia's
accuracy/timeliness scheme with a bandwidth-aware component:

- accurate & timely fill that gets used ............. +20
- accurate but late ................................. +12
- inaccurate (never used) ........................... −8, or −14 under
  high memory-bandwidth usage
- no-prefetch action ................................ −4, or +12 under
  high bandwidth usage

Rewards resolve asynchronously (a prefetch's usefulness is only known once
its block is demanded or evicted from the pending table), so the update is
applied to the issuing (state, action) pair at resolution time — a standard
hardware-RL simplification of the SARSA pipeline that preserves its learning
dynamics. Storage: the paper charges Pythia 25.5 KB (24 KB of QVStore +
metadata), which :attr:`storage_bytes` reports.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.prefetch.base import Prefetcher
from repro.util.rng import make_rng

#: 16 offsets × 4 degrees = 64 actions. Offset 0 encodes "no prefetch".
OFFSETS: Tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16,
                            -1, -2, -3, -4, -6)
DEGREES: Tuple[int, ...] = (1, 2, 3, 4)


@dataclass(frozen=True)
class PythiaConfig:
    """Hyperparameters of the Pythia-like agent."""

    alpha: float = 0.15
    gamma: float = 0.5
    epsilon: float = 0.03
    max_states: int = 1024
    pending_capacity: int = 256
    reward_timely: float = 20.0
    reward_late: float = 12.0
    reward_inaccurate: float = -8.0
    reward_inaccurate_high_bw: float = -14.0
    reward_no_prefetch: float = -4.0
    reward_no_prefetch_high_bw: float = 12.0
    high_bandwidth_threshold: float = 0.5
    late_age_accesses: int = 8
    seed: int = 7


class PythiaPrefetcher(Prefetcher):
    """MDP-RL prefetcher with (PC, delta) states and 64 (offset, degree) arms."""

    name = "pythia"

    def __init__(
        self,
        config: PythiaConfig = PythiaConfig(),
        bandwidth_probe: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = config
        #: Callable returning current memory-bandwidth usage in [0, 1];
        #: wired to the DRAM model by the experiment runner (§7.2.1 notes
        #: Pythia's bandwidth awareness).
        self.bandwidth_probe = bandwidth_probe or (lambda: 0.0)
        self._rng = make_rng(config.seed, "pythia")
        self.actions: List[Tuple[int, int]] = [
            (offset, degree) for offset in OFFSETS for degree in DEGREES
        ]
        # state -> list of Q values per action; LRU-bounded.
        self._q: "OrderedDict[int, List[float]]" = OrderedDict()
        # state -> (max Q value, first argmax index), maintained exactly in
        # step with ``_q`` so greedy selection and the update target skip
        # the 64-element max scan.
        self._qmax: Dict[int, Tuple[float, int]] = {}
        # pending prefetch: block -> (state, action index, issue access index)
        self._pending: "OrderedDict[int, Tuple[int, int, int]]" = OrderedDict()
        self._last_block: Optional[int] = None
        self._access_index = 0
        self.action_counts: Counter = Counter()

    @property
    def storage_bytes(self) -> int:
        # The paper charges Pythia 25.5 KB (§7.2.1).
        return 25 * 1024 + 512

    # ----------------------------------------------------------------- state

    def _state(self, pc: int, block: int) -> int:
        delta = 0 if self._last_block is None else block - self._last_block
        # Quantize the delta into a small signed bucket, combine with PC bits.
        if delta > 16:
            delta = 17
        elif delta < -16:
            delta = -17
        return ((pc & 0x3F) << 6) | ((delta + 17) & 0x3F)

    def _q_values(self, state: int) -> List[float]:
        values = self._q.get(state)
        if values is None:
            if len(self._q) >= self.config.max_states:
                evicted_state, _ = self._q.popitem(last=False)
                del self._qmax[evicted_state]
            values = [0.0] * len(self.actions)
            self._q[state] = values
            self._qmax[state] = (0.0, 0)
        else:
            self._q.move_to_end(state)
        return values

    # ------------------------------------------------------------------- API

    def observe(self, pc: int, block: int, cycle: float, hit: bool) -> List[int]:  # repro: hot
        config = self.config
        access_index = self._access_index + 1
        self._access_index = access_index

        # _resolve_demand, inlined: reward a pending prefetch on its demand.
        entry = self._pending.pop(block, None)
        if entry is not None:
            if access_index - entry[2] >= config.late_age_accesses:
                self._update(entry[0], entry[1], config.reward_timely)
            else:
                self._update(entry[0], entry[1], config.reward_late)

        # _state, inlined.
        last_block = self._last_block
        delta = 0 if last_block is None else block - last_block
        if delta > 16:
            delta = 17
        elif delta < -16:
            delta = -17
        state = ((pc & 0x3F) << 6) | ((delta + 17) & 0x3F)
        self._last_block = block

        # _q_values, inlined.
        q = self._q
        qmax = self._qmax
        values = q.get(state)
        if values is None:
            if len(q) >= config.max_states:
                evicted_state, _ = q.popitem(last=False)
                del qmax[evicted_state]
            values = [0.0] * len(self.actions)
            q[state] = values
            qmax[state] = (0.0, 0)
        else:
            q.move_to_end(state)

        if self._rng.random() < config.epsilon:
            action_index = self._rng.randrange(len(self.actions))
        else:
            # First maximum (identical to values.index(max(values))): the
            # cached argmax is maintained exactly by ``_update``.
            action_index = qmax[state][1]
        self.action_counts[action_index] += 1

        offset, degree = self.actions[action_index]
        if offset == 0:
            self._reward_no_prefetch(state, action_index)
            return []
        predictions = []
        for i in range(1, degree + 1):
            target = block + offset * i
            if target >= 0:
                predictions.append(target)
                self._track(target, state, action_index)
        return predictions

    # --------------------------------------------------------------- rewards

    def _track(self, block: int, state: int, action_index: int) -> None:
        if block in self._pending:
            return
        if len(self._pending) >= self.config.pending_capacity:
            old_block, entry = self._pending.popitem(last=False)
            self._reward_inaccurate(entry)
        self._pending[block] = (state, action_index, self._access_index)

    def _resolve_demand(self, block: int) -> None:
        entry = self._pending.pop(block, None)
        if entry is None:
            return
        state, action_index, issued_at = entry
        age = self._access_index - issued_at
        if age >= self.config.late_age_accesses:
            reward = self.config.reward_timely
        else:
            reward = self.config.reward_late
        self._update(state, action_index, reward)

    def _reward_inaccurate(self, entry: Tuple[int, int, int]) -> None:
        state, action_index, _ = entry
        if self.bandwidth_probe() >= self.config.high_bandwidth_threshold:
            reward = self.config.reward_inaccurate_high_bw
        else:
            reward = self.config.reward_inaccurate
        self._update(state, action_index, reward)

    def _reward_no_prefetch(self, state: int, action_index: int) -> None:
        if self.bandwidth_probe() >= self.config.high_bandwidth_threshold:
            reward = self.config.reward_no_prefetch_high_bw
        else:
            reward = self.config.reward_no_prefetch
        self._update(state, action_index, reward)

    def _update(self, state: int, action_index: int, reward: float) -> None:
        values = self._q.get(state)
        if values is None:
            return
        config = self.config
        qmax = self._qmax
        best_value, best_index = qmax[state]
        # ``best_value`` is exactly ``max(values)`` by invariant.
        target = reward + config.gamma * best_value
        old = values[action_index]
        new = old + config.alpha * (target - old)
        values[action_index] = new
        # Re-establish (max, first argmax) exactly: only a decrease of the
        # current argmax entry needs a rescan.
        if new > best_value:
            qmax[state] = (new, action_index)
        elif action_index == best_index:
            if new != best_value:
                best_value = max(values)
                qmax[state] = (best_value, values.index(best_value))
        elif new == best_value and action_index < best_index:
            qmax[state] = (best_value, action_index)

    # ---------------------------------------------------------------- extras

    def top_action_fractions(self, top: int = 2) -> List[float]:
        """Fraction of selections taken by the most popular actions (Fig 2).

        The four (offset=0, degree) encodings all mean "no prefetch" and are
        counted as a single action.
        """
        total = sum(self.action_counts.values())
        if total == 0:
            return [0.0] * top
        merged: Counter = Counter()
        for action_index, count in self.action_counts.items():
            offset, degree = self.actions[action_index]
            key = (0, 0) if offset == 0 else (offset, degree)
            merged[key] += count
        most_common = merged.most_common(top)
        fractions = [count / total for _, count in most_common]
        while len(fractions) < top:
            fractions.append(0.0)
        return fractions

    def reset(self) -> None:
        self._q.clear()
        self._qmax.clear()
        self._pending.clear()
        self._last_block = None
        self._access_index = 0
        self.action_counts.clear()
