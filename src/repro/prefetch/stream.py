"""Stream prefetcher with programmable degree (§5.2, Table 6: 64 trackers).

Classic two-phase stream detection: a tracker is allocated per 4 KB region on
first touch, trains when subsequent accesses move monotonically through the
region, and once trained prefetches ``degree`` blocks ahead of the demand
stream in the detected direction. Degree 0 disables the prefetcher — which is
how the ensemble's arm encoding switches it off.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List

from repro.prefetch.base import Prefetcher

#: Blocks per tracked region (4 KB regions of 64 B blocks).
REGION_BLOCKS = 64

#: Monotonic hits needed before a tracker starts prefetching.
TRAIN_THRESHOLD = 2


@dataclass
class _StreamTracker:
    __slots__ = ("last_block", "direction", "confidence")

    last_block: int
    direction: int
    confidence: int


class StreamPrefetcher(Prefetcher):
    """Region-based stream prefetcher with LRU tracker replacement."""

    name = "stream"

    def __init__(self, degree: int = 4, num_trackers: int = 64) -> None:
        if degree < 0:
            raise ValueError(f"degree must be >= 0, got {degree}")
        if num_trackers < 1:
            raise ValueError(f"num_trackers must be >= 1, got {num_trackers}")
        self.degree = degree
        self.num_trackers = num_trackers
        self._trackers: "OrderedDict[int, _StreamTracker]" = OrderedDict()

    @property
    def storage_bytes(self) -> int:
        # Per tracker: region tag (~6 B) + last block (1 B) + dir/conf (1 B).
        return self.num_trackers * 8

    def set_degree(self, degree: int) -> None:
        """Reprogram the degree register (POWER7-style, §5.2)."""
        if degree < 0:
            raise ValueError(f"degree must be >= 0, got {degree}")
        self.degree = degree

    def observe(self, pc: int, block: int, cycle: float, hit: bool) -> List[int]:  # repro: hot
        # Training happens regardless of degree so that the ensemble's arm
        # switches find already-warm trackers; only emission is gated.
        trackers = self._trackers
        region = block // REGION_BLOCKS
        tracker = trackers.get(region)
        if tracker is None:
            self._allocate(region, block)
            return []
        trackers.move_to_end(region)
        delta = block - tracker.last_block
        if delta == 0:
            return []
        direction = 1 if delta > 0 else -1
        if direction == tracker.direction:
            confidence = tracker.confidence + 1
            tracker.confidence = 3 if confidence > 3 else confidence
        else:
            tracker.confidence -= 1
            if tracker.confidence <= 0:
                tracker.direction = direction
                tracker.confidence = 1
        tracker.last_block = block
        if tracker.confidence < TRAIN_THRESHOLD or self.degree == 0:
            return []
        return [block + tracker.direction * i for i in range(1, self.degree + 1)]

    def _allocate(self, region: int, block: int) -> None:
        if len(self._trackers) >= self.num_trackers:
            self._trackers.popitem(last=False)
        self._trackers[region] = _StreamTracker(
            last_block=block, direction=1, confidence=0
        )

    def reset(self) -> None:
        self._trackers.clear()
