"""Trace-driven OoO core timing approximation.

The model captures the first-order effects prefetching studies depend on:

- **In-order commit at a bounded width.** Non-memory instructions retire at
  ``commit_width`` per cycle; a load cannot retire before its data returns.
- **Memory-level parallelism within the ROB window.** Loads issue at
  dispatch time, which runs ahead of commit by at most ``rob_size``
  instructions, so independent misses overlap up to the window/MSHR limits.
- **ROB-full stalls.** When a long-latency load blocks commit, dispatch
  (and hence the issue of younger loads) stalls once the window fills —
  which is what makes DRAM queueing delay visible in IPC.
- **Dependent loads.** Records flagged ``dependent`` (pointer chasing)
  cannot issue before the previous load's data returns, collapsing MLP the
  way linked-structure traversals do.

Stores are write-allocate but retire without waiting (store-buffer
semantics), matching how ChampSim-style trace simulators treat them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, Optional, Tuple

from repro.bandit.rewards import PerformanceCounters
from repro.uncore.hierarchy import CacheHierarchy
from repro.workloads.trace import TraceRecord


@dataclass(frozen=True)
class CoreConfig:
    """Core parameters (defaults = Table 4, Intel Skylake-like)."""

    rob_size: int = 256
    commit_width: int = 4
    dispatch_width: int = 6

    def __post_init__(self) -> None:
        if self.rob_size < 1 or self.commit_width < 1 or self.dispatch_width < 1:
            raise ValueError("core parameters must be positive")


class TraceCore:
    """Replays a memory trace against a hierarchy, producing cycle counts."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        config: CoreConfig = CoreConfig(),
        name: str = "core0",
    ) -> None:
        self.hierarchy = hierarchy
        self.config = config
        self.name = name
        self._commit_cost = 1.0 / config.commit_width
        self._dispatch_cost = 1.0 / config.dispatch_width
        self.instructions = 0
        self.retire_time = 0.0
        self.dispatch_time = 0.0
        self._last_load_ready = 0.0
        # Retire times of recent memory ops, for the ROB-window constraint:
        # (instruction index, retire time).
        self._window: Deque[Tuple[int, float]] = deque()
        self._anchor_index = 0
        self._anchor_retire = 0.0

    # ------------------------------------------------------------------ API

    @property
    def cycles(self) -> float:
        return self.retire_time

    @property
    def ipc(self) -> float:
        return self.instructions / self.retire_time if self.retire_time else 0.0

    def counters(self) -> PerformanceCounters:
        """Snapshot for the Bandit's IPC reward path (Figure 6d)."""
        return PerformanceCounters(
            committed_instructions=self.instructions,
            cycles=self.retire_time,
        )

    def execute(self, record: TraceRecord) -> None:
        """Advance the core over ``record`` and its preceding plain instructions."""
        gap = record.inst_gap
        if gap:
            self.instructions += gap
            self.retire_time += gap * self._commit_cost
            self.dispatch_time += gap * self._dispatch_cost

        self.instructions += 1
        index = self.instructions
        issue = self._issue_time(index)

        if record.is_write:
            self.hierarchy.store(record.pc, record.address, issue)
            self.retire_time += self._commit_cost
        else:
            if record.dependent and self._last_load_ready > issue:
                issue = self._last_load_ready
            ready = self.hierarchy.load(record.pc, record.address, issue)
            self._last_load_ready = ready
            next_retire = self.retire_time + self._commit_cost
            self.retire_time = ready if ready > next_retire else next_retire
        self._window.append((index, self.retire_time))

    def run(self, trace: Iterable[TraceRecord], max_records: Optional[int] = None) -> None:
        """Replay ``trace`` (optionally truncated) to completion."""
        for count, record in enumerate(trace):
            if max_records is not None and count >= max_records:
                break
            self.execute(record)

    # -------------------------------------------------------------- internals

    def _issue_time(self, index: int) -> float:
        """Dispatch time for instruction ``index`` under the ROB constraint."""
        self.dispatch_time += self._dispatch_cost
        boundary = index - self.config.rob_size
        if boundary > 0:
            # Advance the anchor to the youngest memory op at/below boundary.
            while self._window and self._window[0][0] <= boundary:
                self._anchor_index, self._anchor_retire = self._window.popleft()
            floor = self._anchor_retire + max(
                0, boundary - self._anchor_index
            ) * self._commit_cost
            if floor > self.dispatch_time:
                self.dispatch_time = floor
        return self.dispatch_time
