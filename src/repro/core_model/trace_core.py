"""Trace-driven OoO core timing approximation.

The model captures the first-order effects prefetching studies depend on:

- **In-order commit at a bounded width.** Non-memory instructions retire at
  ``commit_width`` per cycle; a load cannot retire before its data returns.
- **Memory-level parallelism within the ROB window.** Loads issue at
  dispatch time, which runs ahead of commit by at most ``rob_size``
  instructions, so independent misses overlap up to the window/MSHR limits.
- **ROB-full stalls.** When a long-latency load blocks commit, dispatch
  (and hence the issue of younger loads) stalls once the window fills —
  which is what makes DRAM queueing delay visible in IPC.
- **Dependent loads.** Records flagged ``dependent`` (pointer chasing)
  cannot issue before the previous load's data returns, collapsing MLP the
  way linked-structure traversals do.

Stores are write-allocate but retire without waiting (store-buffer
semantics), matching how ChampSim-style trace simulators treat them.
"""

from __future__ import annotations

import gc
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Iterable, Optional, Tuple

from repro.bandit.rewards import PerformanceCounters
from repro.core_model.replay_kernel import run_replay_kernel
from repro.core_model.sanitizer import sanitize_enabled
from repro.uncore.cache import Cache
from repro.uncore.hierarchy import CacheHierarchy
from repro.workloads.trace import BLOCK_SHIFT, TraceRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.workloads.compiled import CompiledTrace


@dataclass(frozen=True)
class CoreConfig:
    """Core parameters (defaults = Table 4, Intel Skylake-like)."""

    rob_size: int = 256
    commit_width: int = 4
    dispatch_width: int = 6

    def __post_init__(self) -> None:
        if self.rob_size < 1 or self.commit_width < 1 or self.dispatch_width < 1:
            raise ValueError("core parameters must be positive")


class TraceCore:
    """Replays a memory trace against a hierarchy, producing cycle counts."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        config: CoreConfig = CoreConfig(),
        name: str = "core0",
    ) -> None:
        self.hierarchy = hierarchy
        self.config = config
        self.name = name
        self._commit_cost = 1.0 / config.commit_width
        self._dispatch_cost = 1.0 / config.dispatch_width
        self.instructions = 0
        self.retire_time = 0.0
        self.dispatch_time = 0.0
        self._last_load_ready = 0.0
        # Retire times of recent memory ops, for the ROB-window constraint:
        # (instruction index, retire time).
        self._window: Deque[Tuple[int, float]] = deque()
        self._anchor_index = 0
        self._anchor_retire = 0.0

    # ------------------------------------------------------------------ API

    @property
    def cycles(self) -> float:
        return self.retire_time

    @property
    def ipc(self) -> float:
        return self.instructions / self.retire_time if self.retire_time else 0.0

    def counters(self) -> PerformanceCounters:
        """Snapshot for the Bandit's IPC reward path (Figure 6d)."""
        return PerformanceCounters(
            committed_instructions=self.instructions,
            cycles=self.retire_time,
        )

    # repro: mirror[core-step]
    def execute(self, record: TraceRecord) -> None:
        """Advance the core over ``record`` and its preceding plain instructions."""
        gap = record.inst_gap
        if gap:
            self.instructions += gap
            self.retire_time += gap * self._commit_cost
            self.dispatch_time += gap * self._dispatch_cost

        self.instructions += 1
        index = self.instructions
        issue = self._issue_time(index)

        if record.is_write:
            self.hierarchy.store(record.pc, record.address, issue)
            self.retire_time += self._commit_cost
        else:
            if record.dependent and self._last_load_ready > issue:
                issue = self._last_load_ready
            ready = self.hierarchy.load(record.pc, record.address, issue)
            self._last_load_ready = ready
            next_retire = self.retire_time + self._commit_cost
            self.retire_time = ready if ready > next_retire else next_retire
        self._window.append((index, self.retire_time))

    def run(self, trace: Iterable[TraceRecord], max_records: Optional[int] = None) -> None:
        """Replay ``trace`` (optionally truncated) to completion."""
        for count, record in enumerate(trace):
            if max_records is not None and count >= max_records:
                break
            self.execute(record)

    # repro: mirror[core-step]
    def run_compiled(  # repro: hot
        self,
        trace: "CompiledTrace",
        max_records: Optional[int] = None,
        record_hook: Optional[Callable[["TraceCore"], None]] = None,
        sanitize: Optional[bool] = None,
        shadow: Optional["TraceCore"] = None,
    ) -> None:
        """Replay a compiled array-backed trace without per-record objects.

        Semantically identical to :meth:`run` over the equivalent object
        trace (bit-identical counters, cycles, and hierarchy state); the
        loop body is :meth:`execute` inlined over the trace arrays with
        every hot name bound locally.

        ``record_hook(core)`` fires after each record with ``instructions``
        and ``retire_time`` (and the rest of the core state) flushed, which
        is what the bandit step loops consume; hooks must not mutate the
        core itself. A hook may return ``(l2_threshold, cycle_threshold)``
        to promise it is a no-op until ``stats.l2_demand_accesses`` or
        ``retire_time`` reaches those bounds — the fused kernel then skips
        the flush + call for the records in between (this loop, and the
        object path, simply call every record; the promise makes that
        equivalent).

        ``sanitize`` (default: ``$REPRO_SANITIZE``) additionally replays
        the trace through the object path on ``shadow`` (a deep copy of
        this core when not given) and asserts step-by-step equivalence —
        see :mod:`repro.core_model.sanitizer`. Hook-driven replays manage
        their own sanitization (the bandit runners compare per-step
        decisions), so ``sanitize`` with a ``record_hook`` is an error.
        """
        if sanitize is None:
            sanitize = sanitize_enabled()
        if sanitize:
            if record_hook is not None:
                raise ValueError(
                    "sanitize=True cannot wrap a record_hook replay; the "
                    "hook's caller must run its own dual-path comparison"
                )
            from repro.core_model.sanitizer import run_sanitized_replay

            run_sanitized_replay(self, trace, max_records, shadow)
            return
        pcs, blocks, all_flags, gaps = trace.as_lists()
        if max_records is not None and max_records < len(pcs):
            pcs = pcs[:max_records]
            blocks = blocks[:max_records]
            all_flags = all_flags[:max_records]
            gaps = gaps[:max_records]
        hierarchy = self.hierarchy
        if (
            type(hierarchy) is CacheHierarchy
            and hierarchy.l1_prefetcher is None
            and type(hierarchy.l1) is Cache
            and type(hierarchy.l2) is Cache
            and type(hierarchy.llc) is Cache
        ):
            # Plain three-level hierarchy: run the fully fused kernel (the
            # hierarchy's own demand path inlined into the replay loop).
            # Cyclic garbage is not produced at replay rates worth the gen-0
            # scans the kernel's transient tuples/lists trigger, so collection
            # is paused for the duration (refcounting still frees everything).
            gc_was_enabled = gc.isenabled()
            if gc_was_enabled:
                gc.disable()
            try:
                run_replay_kernel(self, pcs, blocks, all_flags, gaps,
                                  record_hook)
            finally:
                if gc_was_enabled:
                    gc.enable()
            return
        config = self.config
        rob_size = config.rob_size
        commit_cost = self._commit_cost
        dispatch_cost = self._dispatch_cost
        hierarchy_stats = hierarchy.stats
        demand_access = hierarchy._demand_access
        window = self._window
        window_append = window.append
        window_popleft = window.popleft
        block_shift = BLOCK_SHIFT
        instructions = self.instructions
        retire_time = self.retire_time
        dispatch_time = self.dispatch_time
        last_load_ready = self._last_load_ready
        anchor_index = self._anchor_index
        anchor_retire = self._anchor_retire

        for pc, block, flags, gap in zip(pcs, blocks, all_flags, gaps):
            if gap:
                instructions += gap
                retire_time += gap * commit_cost
                dispatch_time += gap * dispatch_cost

            instructions += 1
            index = instructions
            dispatch_time += dispatch_cost
            boundary = index - rob_size
            if boundary > 0:
                while window and window[0][0] <= boundary:
                    anchor_index, anchor_retire = window_popleft()
                behind = boundary - anchor_index
                if behind > 0:
                    floor = anchor_retire + behind * commit_cost
                else:
                    floor = anchor_retire
                if floor > dispatch_time:
                    dispatch_time = floor
            issue = dispatch_time

            # hierarchy.load/store inlined: their stat bumps happen here so
            # the demand path is one direct call per record.
            if flags & 1:  # FLAG_WRITE
                hierarchy_stats.stores += 1
                demand_access(pc, block << block_shift, issue, is_write=True)
                retire_time += commit_cost
            else:
                if flags & 2 and last_load_ready > issue:  # FLAG_DEPENDENT
                    issue = last_load_ready
                hierarchy_stats.loads += 1
                ready = demand_access(pc, block << block_shift, issue,
                                      is_write=False)
                last_load_ready = ready
                next_retire = retire_time + commit_cost
                retire_time = ready if ready > next_retire else next_retire
            window_append((index, retire_time))

            if record_hook is not None:
                self.instructions = instructions
                self.retire_time = retire_time
                self.dispatch_time = dispatch_time
                self._last_load_ready = last_load_ready
                self._anchor_index = anchor_index
                self._anchor_retire = anchor_retire
                record_hook(self)

        self.instructions = instructions
        self.retire_time = retire_time
        self.dispatch_time = dispatch_time
        self._last_load_ready = last_load_ready
        self._anchor_index = anchor_index
        self._anchor_retire = anchor_retire

    # -------------------------------------------------------------- internals

    def _issue_time(self, index: int) -> float:
        """Dispatch time for instruction ``index`` under the ROB constraint."""
        self.dispatch_time += self._dispatch_cost
        boundary = index - self.config.rob_size
        if boundary > 0:
            # Advance the anchor to the youngest memory op at/below boundary.
            while self._window and self._window[0][0] <= boundary:
                self._anchor_index, self._anchor_retire = self._window.popleft()
            floor = self._anchor_retire + max(
                0, boundary - self._anchor_index
            ) * self._commit_cost
            if floor > self.dispatch_time:
                self.dispatch_time = floor
        return self.dispatch_time
