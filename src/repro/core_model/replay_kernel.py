"""The fused replay kernel: core + hierarchy hot loop in one frame.

:meth:`~repro.core_model.trace_core.TraceCore.run_compiled` dispatches here
when the hierarchy is eligible (plain :class:`~repro.uncore.cache.Cache`
levels, no L1 prefetcher): one Python frame replays the whole compiled
trace with every per-record quantity — core timing scalars, cache set
dicts, recency stamps, hit/miss/stat counters, MSHR state — held in local
variables and written back to the model objects once, after the last
record. This is the ChampSim-style tight loop the object path approximates:
the simulated behaviour is bit-identical (asserted per workload suite in
``tests/test_compiled_trace.py``); only Python-level overhead — method
dispatch, attribute loads, and per-record allocation — is removed.

Concessions to observability:

- ``record_hook`` consumers (the bandit step loop) see the core's counter
  scalars and ``stats.l2_demand_accesses`` flushed before every call; all
  other counters are flushed only at the end of the replay. A hook that
  returns ``(l2_threshold, cycle_threshold)`` opts into the *thresholded*
  protocol: it promises to be a no-op until ``stats.l2_demand_accesses``
  or ``retire_time`` (both monotone) reach the returned bounds, letting
  the kernel skip the flush + call entirely in between.
- The prefetcher's ``observe`` and the DRAM model's ``access``/``writeback``
  stay real calls, so their internal state is always current (Pythia's
  bandwidth probe reads the DRAM model mid-replay).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.prefetch.base import NullPrefetcher
from repro.prefetch.pythia import PythiaPrefetcher
from repro.uncore.cache import CacheLine

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.core_model.trace_core import TraceCore

_INF = float("inf")


# repro: mirror[demand-path]
def run_replay_kernel(  # repro: hot
    core: "TraceCore",
    pcs: List[int],
    blocks: List[int],
    all_flags: List[int],
    gaps: List[int],
    record_hook: Optional[Callable[["TraceCore"], None]] = None,
) -> None:
    """Replay the compiled arrays on ``core``. Caller checks eligibility."""
    hierarchy = core.hierarchy
    config = hierarchy.config
    l1_latency = config.l1_latency
    l2_latency = config.l2_latency
    llc_latency = config.llc_latency
    max_inflight_prefetches = config.max_inflight_prefetches

    l1 = hierarchy.l1
    l1_sets = l1._sets
    l1_num_sets = l1.num_sets
    l1_ways = l1.ways
    l1_hits = l1.hits
    l1_misses = l1.misses
    l1_stamp = l1._stamp
    l1_resident = l1._resident

    l2 = hierarchy.l2
    l2_sets = l2._sets
    l2_num_sets = l2.num_sets
    l2_ways = l2.ways
    l2_hits = l2.hits
    l2_misses = l2.misses
    l2_stamp = l2._stamp
    l2_resident = l2._resident

    llc = hierarchy.llc
    llc_sets = llc._sets
    llc_num_sets = llc.num_sets
    llc_ways = llc.ways
    llc_hits = llc.hits
    llc_misses = llc.misses
    llc_stamp = llc._stamp
    llc_resident = llc._resident

    stats = hierarchy.stats
    loads = stats.loads
    stores = stats.stores
    l2_demand_accesses = stats.l2_demand_accesses
    l2_demand_hits = stats.l2_demand_hits
    llc_demand_accesses = stats.llc_demand_accesses
    llc_demand_hits = stats.llc_demand_hits
    dram_demand_fills = stats.dram_demand_fills
    writebacks = stats.writebacks
    prefetch_stats = stats.prefetch
    pf_issued = prefetch_stats.issued
    pf_timely = prefetch_stats.timely
    pf_late = prefetch_stats.late
    pf_wrong = prefetch_stats.wrong
    pf_dropped = prefetch_stats.dropped

    mshr = hierarchy.mshr
    inflight = mshr._inflight
    inflight_get = inflight.get
    inflight_pop = inflight.pop
    heap = mshr._heap
    mshr_capacity = mshr.capacity
    inflight_prefetches = hierarchy._inflight_prefetches

    dram = hierarchy.dram
    dram_access = dram.access
    dram_writeback = dram.writeback

    prefetcher = hierarchy.l2_prefetcher
    if prefetcher is None or type(prefetcher) is NullPrefetcher:
        # NullPrefetcher.observe is stateless and always empty: skipping
        # the call per L1 miss is exact.
        observe = None
    else:
        observe = prefetcher.observe

    # The DRAM channel model is itself inlined (state in locals, flushed at
    # the end) unless the prefetcher reads DRAM state mid-replay — Pythia's
    # bandwidth-aware reward probes the live queue delay, so under Pythia
    # every DRAM access stays a real call.
    inline_dram = not isinstance(prefetcher, PythiaPrefetcher)
    dram_channel_free = dram._channel_free_at
    dram_queue_cycles = dram.total_queue_cycles
    dram_demand_count = dram.demand_accesses
    dram_prefetch_count = dram.prefetch_accesses
    dram_writeback_count = dram.writeback_accesses
    dram_line_cost = dram.cycles_per_line
    dram_latency = dram.latency_cycles

    # Next cycle at which any MSHR fill completes; spares the drain site a
    # heap subscript on the (common) records with nothing ready.
    next_fill_ready = heap[0][0] if heap else _INF

    # Fill helpers: closures over the set dicts and geometry; counters they
    # touch are shared cells (``nonlocal``). Bodies mirror CacheHierarchy's
    # _fill_l2/_fill_llc (including CacheLine recycling on eviction).

    # repro: mirror[fill-llc]
    def fill_llc(block: int, prefetched: bool, dirty: bool) -> None:
        # repro: mirror[lane-fill-llc] begin
        nonlocal llc_stamp, llc_resident, writebacks
        nonlocal dram_channel_free, dram_writeback_count
        cache_set = llc_sets[block % llc_num_sets]
        llc_stamp += 1
        existing = cache_set.pop(block, None)
        if existing is not None:
            existing.last_use = llc_stamp
            existing.dirty = existing.dirty or dirty
            cache_set[block] = existing
            return
        if len(cache_set) >= llc_ways:
            for victim_block in cache_set:
                break
            victim = cache_set.pop(victim_block)
            victim_dirty = victim.dirty
            victim.block = block
            victim.last_use = llc_stamp
            victim.prefetched = prefetched
            victim.used = False
            victim.dirty = dirty
            cache_set[block] = victim
            if victim_dirty:
                writebacks += 1
                if inline_dram:
                    dram_channel_free += dram_line_cost
                    dram_writeback_count += 1
                else:
                    dram_writeback()
        else:
            cache_set[block] = CacheLine(block, llc_stamp, prefetched,
                                         False, dirty)
            llc_resident += 1
        # repro: mirror[lane-fill-llc] end

    # repro: mirror[fill-l2]
    def fill_l2(block: int, prefetched: bool, dirty: bool) -> None:
        # repro: mirror[lane-fill-l2] begin
        nonlocal l2_stamp, l2_resident, pf_wrong
        cache_set = l2_sets[block % l2_num_sets]
        l2_stamp += 1
        existing = cache_set.pop(block, None)
        if existing is not None:
            existing.last_use = l2_stamp
            existing.dirty = existing.dirty or dirty
            cache_set[block] = existing
            return
        if len(cache_set) >= l2_ways:
            for victim_block in cache_set:
                break
            victim = cache_set.pop(victim_block)
            victim_dirty = victim.dirty
            if victim.prefetched and not victim.used:
                pf_wrong += 1
            victim.block = block
            victim.last_use = l2_stamp
            victim.prefetched = prefetched
            victim.used = False
            victim.dirty = dirty
            cache_set[block] = victim
            if victim_dirty:
                fill_llc(victim_block, False, True)
        else:
            cache_set[block] = CacheLine(block, l2_stamp, prefetched,
                                         False, dirty)
            l2_resident += 1
        # repro: mirror[lane-fill-l2] end

    # Core timing state (mirrors run_compiled's non-kernel loop).
    rob_size = core.config.rob_size
    commit_cost = core._commit_cost
    dispatch_cost = core._dispatch_cost
    # The ROB window as parallel flat lists with a head cursor: appends are
    # two list appends, and the boundary advance is an index walk instead of
    # deque popleft + tuple unpack. Rebuilt into the core's deque at the end.
    window = core._window
    win_idx: List[int] = []
    win_ret: List[float] = []
    for win_entry in window:
        win_idx.append(win_entry[0])
        win_ret.append(win_entry[1])
    win_append_idx = win_idx.append
    win_append_ret = win_ret.append
    win_head = 0
    win_len = len(win_idx)
    instructions = core.instructions
    retire_time = core.retire_time
    dispatch_time = core.dispatch_time
    last_load_ready = core._last_load_ready
    anchor_index = core._anchor_index
    anchor_retire = core._anchor_retire

    # Thresholded hook protocol: a hook may return ``(l2_threshold,
    # cycle_threshold)``, promising it is a no-op until
    # ``stats.l2_demand_accesses`` reaches the former or ``retire_time``
    # reaches the latter; the kernel then skips the flush + call until one
    # threshold is crossed (both monotone). A hook returning ``None`` is
    # called after every record (the compatibility contract).
    hook_l2 = -_INF
    hook_cycle = -_INF

    # Packed record flags: bit0 write, bit1 dependent (CompiledTrace.flags).
    # repro: dtype[rflags: int bits<=2]
    for pc, block, rflags, gap in zip(pcs, blocks, all_flags, gaps):
        if gap:
            instructions += gap
            retire_time += gap * commit_cost
            dispatch_time += gap * dispatch_cost

        instructions += 1
        index = instructions
        dispatch_time += dispatch_cost
        boundary = index - rob_size
        if boundary > 0:
            if win_head < win_len and win_idx[win_head] <= boundary:
                h = win_head + 1
                while h < win_len and win_idx[h] <= boundary:
                    h += 1
                anchor_index = win_idx[h - 1]
                anchor_retire = win_ret[h - 1]
                win_head = h
                if h > 65536:
                    del win_idx[:h]
                    del win_ret[:h]
                    win_len -= h
                    win_head = 0
            behind = boundary - anchor_index
            if behind > 0:
                floor = anchor_retire + behind * commit_cost
            else:
                floor = anchor_retire
            if floor > dispatch_time:
                dispatch_time = floor
        cycle = dispatch_time

        is_write = rflags & 1
        if is_write:
            stores += 1
        else:
            if rflags & 2 and last_load_ready > cycle:  # FLAG_DEPENDENT
                cycle = last_load_ready
            loads += 1

        # ---- demand access (CacheHierarchy._demand_access, inlined) ----
        if next_fill_ready <= cycle:
            # MSHR drain: complete every fill whose ready time has passed.
            # This is the hottest fill site (one L2+LLC fill per tracked
            # DRAM access), so both fill bodies are inlined here with their
            # ``dirty=False`` specialization; only the rare dirty-victim
            # cascade goes through the closure.
            while heap and heap[0][0] <= cycle:
                fill_block = heappop(heap)[1]
                entry = inflight_pop(fill_block, None)
                if entry is None:
                    continue  # superseded entry
                fill_is_prefetch = entry[1]
                if fill_is_prefetch:
                    inflight_prefetches -= 1
                # fill_l2(fill_block, fill_is_prefetch, False), inlined.
                l2_stamp += 1
                fill_set = l2_sets[fill_block % l2_num_sets]
                existing = fill_set.pop(fill_block, None)
                if existing is not None:
                    existing.last_use = l2_stamp
                    fill_set[fill_block] = existing
                elif len(fill_set) >= l2_ways:
                    for victim_block in fill_set:
                        break
                    victim = fill_set.pop(victim_block)
                    victim_dirty = victim.dirty
                    if victim.prefetched and not victim.used:
                        pf_wrong += 1
                    victim.block = fill_block
                    victim.last_use = l2_stamp
                    victim.prefetched = fill_is_prefetch
                    victim.used = False
                    victim.dirty = False
                    fill_set[fill_block] = victim
                    if victim_dirty:
                        fill_llc(victim_block, False, True)
                else:
                    fill_set[fill_block] = CacheLine(
                        fill_block, l2_stamp, fill_is_prefetch, False, False)
                    l2_resident += 1
                # fill_llc(fill_block, fill_is_prefetch, False), inlined.
                llc_stamp += 1
                fill_set = llc_sets[fill_block % llc_num_sets]
                existing = fill_set.pop(fill_block, None)
                if existing is not None:
                    existing.last_use = llc_stamp
                    fill_set[fill_block] = existing
                elif len(fill_set) >= llc_ways:
                    for victim_block in fill_set:
                        break
                    victim = fill_set.pop(victim_block)
                    victim_dirty = victim.dirty
                    victim.block = fill_block
                    victim.last_use = llc_stamp
                    victim.prefetched = fill_is_prefetch
                    victim.used = False
                    victim.dirty = False
                    fill_set[fill_block] = victim
                    if victim_dirty:
                        writebacks += 1
                        if inline_dram:
                            dram_channel_free += dram_line_cost
                            dram_writeback_count += 1
                        else:
                            dram_writeback()
                else:
                    fill_set[fill_block] = CacheLine(
                        fill_block, llc_stamp, fill_is_prefetch, False, False)
                    llc_resident += 1
            next_fill_ready = heap[0][0] if heap else _INF

        cache_set = l1_sets[block % l1_num_sets]
        line = cache_set.pop(block, None)
        if line is not None:
            # L1 hit. pop + reinsert performs the LRU touch in two dict
            # operations (a miss leaves the set untouched).
            l1_hits += 1
            l1_stamp += 1
            line.last_use = l1_stamp
            line.used = True
            cache_set[block] = line
            if is_write:
                line.dirty = True
                retire_time += commit_cost
            else:
                ready = cycle + l1_latency
                last_load_ready = ready
                next_retire = retire_time + commit_cost
                retire_time = ready if ready > next_retire else next_retire
            win_append_idx(index)
            win_append_ret(retire_time)
            win_len += 1
            if record_hook is not None and (
                l2_demand_accesses >= hook_l2 or retire_time >= hook_cycle
            ):
                core.instructions = instructions
                core.retire_time = retire_time
                core.dispatch_time = dispatch_time
                core._last_load_ready = last_load_ready
                core._anchor_index = anchor_index
                core._anchor_retire = anchor_retire
                stats.l2_demand_accesses = l2_demand_accesses
                hook_limits = record_hook(core)
                if hook_limits is not None:
                    hook_l2, hook_cycle = hook_limits
            continue

        # L1 miss -> L2 demand access; this stream trains the L2 prefetcher.
        # repro: mirror[lane-demand-path] begin
        l1_misses += 1
        l2_cycle = cycle + l1_latency
        l2_demand_accesses += 1
        l2_set = l2_sets[block % l2_num_sets]
        l2_line = l2_set.pop(block, None)
        if l2_line is not None:
            l2_hits += 1
            l2_stamp += 1
            l2_line.last_use = l2_stamp
            l2_line.used = True
            l2_set[block] = l2_line
            l2_demand_hits += 1
            if l2_line.prefetched:
                # First demand use of a prefetched, resident line: timely.
                pf_timely += 1
                l2_line.prefetched = False
            ready = l2_cycle + l2_latency
        else:
            l2_misses += 1
            entry = inflight_get(block)
            if entry is not None:
                # Demand caught up with an in-flight fill.
                entry_ready = entry[0]
                if entry[1]:
                    # ... which was a prefetch: late.
                    pf_late += 1
                    inflight[block] = (entry_ready, False)
                    inflight_prefetches -= 1
                l2_ready = l2_cycle + l2_latency
                ready = entry_ready if entry_ready > l2_ready else l2_ready
            else:
                llc_cycle = l2_cycle + l2_latency
                llc_demand_accesses += 1
                llc_set = llc_sets[block % llc_num_sets]
                llc_line = llc_set.pop(block, None)
                if llc_line is not None:
                    llc_hits += 1
                    llc_stamp += 1
                    llc_line.last_use = llc_stamp
                    llc_line.used = True
                    llc_set[block] = llc_line
                    llc_demand_hits += 1
                    ready = llc_cycle + llc_latency
                    # fill_l2(block, False, False), inlined (LLC-hit refill).
                    # The block just missed the L2 probe on this record, so
                    # the existing-line branch cannot trigger.
                    l2_stamp += 1
                    if len(l2_set) >= l2_ways:
                        for victim_block in l2_set:
                            break
                        victim = l2_set.pop(victim_block)
                        victim_dirty = victim.dirty
                        if victim.prefetched and not victim.used:
                            pf_wrong += 1
                        victim.block = block
                        victim.last_use = l2_stamp
                        victim.prefetched = False
                        victim.used = False
                        victim.dirty = False
                        l2_set[block] = victim
                        if victim_dirty:
                            fill_llc(victim_block, False, True)
                    else:
                        l2_set[block] = CacheLine(block, l2_stamp, False,
                                                  False, False)
                        l2_resident += 1
                else:
                    llc_misses += 1
                    # DRAM fill through the MSHR.
                    request = llc_cycle + llc_latency
                    if inline_dram:
                        start = (request if request > dram_channel_free
                                 else dram_channel_free)
                        dram_queue_cycles += start - request
                        dram_channel_free = start + dram_line_cost
                        dram_demand_count += 1
                        ready = start + dram_latency
                    else:
                        ready = dram_access(request)
                    dram_demand_fills += 1
                    if len(inflight) < mshr_capacity:
                        inflight[block] = (ready, False)
                        heappush(heap, (ready, block))
                        if ready < next_fill_ready:
                            next_fill_ready = ready
                    else:
                        # MSHR pressure: untracked immediate fill, both fill
                        # bodies inlined. The block just missed both L2 and
                        # LLC on this very record, so the existing-line
                        # branch of the fills cannot trigger.
                        l2_stamp += 1
                        if len(l2_set) >= l2_ways:
                            for victim_block in l2_set:
                                break
                            victim = l2_set.pop(victim_block)
                            victim_dirty = victim.dirty
                            if victim.prefetched and not victim.used:
                                pf_wrong += 1
                            victim.block = block
                            victim.last_use = l2_stamp
                            victim.prefetched = False
                            victim.used = False
                            victim.dirty = False
                            l2_set[block] = victim
                            if victim_dirty:
                                fill_llc(victim_block, False, True)
                        else:
                            l2_set[block] = CacheLine(block, l2_stamp,
                                                      False, False, False)
                            l2_resident += 1
                        llc_stamp += 1
                        if len(llc_set) >= llc_ways:
                            for victim_block in llc_set:
                                break
                            victim = llc_set.pop(victim_block)
                            victim_dirty = victim.dirty
                            victim.block = block
                            victim.last_use = llc_stamp
                            victim.prefetched = False
                            victim.used = False
                            victim.dirty = False
                            llc_set[block] = victim
                            if victim_dirty:
                                writebacks += 1
                                if inline_dram:
                                    dram_channel_free += dram_line_cost
                                    dram_writeback_count += 1
                                else:
                                    dram_writeback()
                        else:
                            llc_set[block] = CacheLine(block, llc_stamp,
                                                       False, False, False)
                            llc_resident += 1

        # Fill L1 (inlined _fill_l1 with CacheLine recycling). The block
        # just missed the L1 probe and nothing fills the L1 in between, so
        # no existing-line check is needed.
        l1_stamp += 1
        if len(cache_set) >= l1_ways:
            for victim_block in cache_set:
                break
            victim = cache_set.pop(victim_block)
            victim_dirty = victim.dirty
            victim.block = block
            victim.last_use = l1_stamp
            victim.prefetched = False
            victim.used = False
            victim.dirty = True if is_write else False
            cache_set[block] = victim
            if victim_dirty:
                # L1 writeback lands in L2 (no DRAM traffic);
                # fill_l2(victim_block, False, True) inlined.
                l2_stamp += 1
                wb_set = l2_sets[victim_block % l2_num_sets]
                existing = wb_set.pop(victim_block, None)
                if existing is not None:
                    existing.last_use = l2_stamp
                    existing.dirty = True
                    wb_set[victim_block] = existing
                elif len(wb_set) >= l2_ways:
                    for wb_victim_block in wb_set:
                        break
                    wb_victim = wb_set.pop(wb_victim_block)
                    wb_victim_dirty = wb_victim.dirty
                    if wb_victim.prefetched and not wb_victim.used:
                        pf_wrong += 1
                    wb_victim.block = victim_block
                    wb_victim.last_use = l2_stamp
                    wb_victim.prefetched = False
                    wb_victim.used = False
                    wb_victim.dirty = True
                    wb_set[victim_block] = wb_victim
                    if wb_victim_dirty:
                        fill_llc(wb_victim_block, False, True)
                else:
                    wb_set[victim_block] = CacheLine(victim_block, l2_stamp,
                                                     False, False, True)
                    l2_resident += 1
        else:
            cache_set[block] = CacheLine(block, l1_stamp, False, False,
                                         True if is_write else False)
            l1_resident += 1

        if observe is not None:
            # _run_l2_prefetcher + _issue_l2_prefetch, inlined.
            for candidate in observe(pc, block, cycle, l2_line is not None):
                if candidate < 0 or candidate in l2_sets[
                    candidate % l2_num_sets
                ] or candidate in inflight:
                    continue
                if (inflight_prefetches >= max_inflight_prefetches
                        or len(inflight) >= mshr_capacity):
                    pf_dropped += 1
                    continue
                pf_issued += 1
                if candidate in llc_sets[candidate % llc_num_sets]:
                    pf_ready = cycle + l2_latency + llc_latency
                elif inline_dram:
                    request = cycle + l2_latency + llc_latency
                    start = (request if request > dram_channel_free
                             else dram_channel_free)
                    dram_queue_cycles += start - request
                    dram_channel_free = start + dram_line_cost
                    dram_prefetch_count += 1
                    pf_ready = start + dram_latency
                else:
                    pf_ready = dram_access(cycle + l2_latency + llc_latency,
                                           is_prefetch=True)
                inflight[candidate] = (pf_ready, True)
                heappush(heap, (pf_ready, candidate))
                if pf_ready < next_fill_ready:
                    next_fill_ready = pf_ready
                inflight_prefetches += 1
        # repro: mirror[lane-demand-path] end

        if is_write:
            retire_time += commit_cost
        else:
            last_load_ready = ready
            next_retire = retire_time + commit_cost
            retire_time = ready if ready > next_retire else next_retire
        win_append_idx(index)
        win_append_ret(retire_time)
        win_len += 1

        if record_hook is not None and (
            l2_demand_accesses >= hook_l2 or retire_time >= hook_cycle
        ):
            core.instructions = instructions
            core.retire_time = retire_time
            core.dispatch_time = dispatch_time
            core._last_load_ready = last_load_ready
            core._anchor_index = anchor_index
            core._anchor_retire = anchor_retire
            stats.l2_demand_accesses = l2_demand_accesses
            hook_limits = record_hook(core)
            if hook_limits is not None:
                hook_l2, hook_cycle = hook_limits

    # ------------------------------------------------------------ write-back
    core.instructions = instructions
    core.retire_time = retire_time
    core.dispatch_time = dispatch_time
    core._last_load_ready = last_load_ready
    core._anchor_index = anchor_index
    core._anchor_retire = anchor_retire
    window.clear()
    window.extend(zip(win_idx[win_head:] if win_head else win_idx,
                      win_ret[win_head:] if win_head else win_ret))

    l1.hits = l1_hits
    l1.misses = l1_misses
    l1._stamp = l1_stamp
    l1._resident = l1_resident
    l2.hits = l2_hits
    l2.misses = l2_misses
    l2._stamp = l2_stamp
    l2._resident = l2_resident
    llc.hits = llc_hits
    llc.misses = llc_misses
    llc._stamp = llc_stamp
    llc._resident = llc_resident

    stats.loads = loads
    stats.stores = stores
    stats.l2_demand_accesses = l2_demand_accesses
    stats.l2_demand_hits = l2_demand_hits
    stats.llc_demand_accesses = llc_demand_accesses
    stats.llc_demand_hits = llc_demand_hits
    stats.dram_demand_fills = dram_demand_fills
    stats.writebacks = writebacks
    prefetch_stats.issued = pf_issued
    prefetch_stats.timely = pf_timely
    prefetch_stats.late = pf_late
    prefetch_stats.wrong = pf_wrong
    prefetch_stats.dropped = pf_dropped

    hierarchy._inflight_prefetches = inflight_prefetches

    if inline_dram:
        dram._channel_free_at = dram_channel_free
        dram.total_queue_cycles = dram_queue_cycles
        dram.demand_accesses = dram_demand_count
        dram.prefetch_accesses = dram_prefetch_count
        dram.writeback_accesses = dram_writeback_count
