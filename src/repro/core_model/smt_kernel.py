"""Fused allocation-free cycle kernel for the 2-thread SMT pipeline.

This is the SMT counterpart of :mod:`repro.core_model.replay_kernel`: one
function that runs a batch of Hill-Climbing epochs with every per-cycle
stage of :class:`repro.smt.pipeline.SMTPipeline` inlined and all mutable
state held in local variables. The Python-level overheads the object path
pays every cycle — five stage-method calls, ``self.config`` attribute
chains, bound-method lookups on deques and dicts — are hoisted once per
kernel call, and the pipeline object is written back only at epoch
boundaries (scalars the hook observes) and once at the end (everything).

Semantics are bit-identical to ``SMTPipeline.step``: same stage order
(store drain, commit, issue, rename, fetch), same shared-RNG draw order
for store drains and load latencies, same round-robin tie-breaking, and
the same floating-point expressions for gating thresholds and epoch IPC.
Every inlined stage is tagged ``# repro: mirror[...]`` against its object
twin so rule R10 flags one-sided edits, and the runtime sanitizer
(``REPRO_SANITIZE=1``) checks per-epoch equality end to end.

The epoch-boundary hook is the kernel's only mid-run exit: after each
epoch the per-thread committed counters and the cycle count are flushed
and ``epoch_hook(pipeline, epoch_ipc)`` is invoked (when provided). The
hook must treat the pipeline as read-only — all remaining state (IQ,
fetch queues, occupancies, RNG position) is flushed only when the kernel
returns. Passing ``epoch_hook=None`` keeps the hot loop branch-free at
epoch boundaries.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.smt.pipeline import SMTPipeline
from repro.smt.uop import (
    KIND_BRANCH,
    KIND_LOAD,
    KIND_LONG,
    KIND_STORE,
    REG_WRITING_KINDS,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.smt.hill_climbing import HillClimbing

#: Environment variable that disables the fused SMT kernel ("0"/"false"/
#: "no"/"off"); unset or any other value keeps the fast path on.
KERNEL_ENV = "REPRO_SMT_KERNEL"

#: Called after each epoch with the (partially flushed) pipeline and the
#: epoch's IPC; must not mutate the pipeline.
EpochHook = Callable[[SMTPipeline, float], None]

_ORDER_01: Tuple[int, int] = (0, 1)
_ORDER_10: Tuple[int, int] = (1, 0)


def kernel_enabled() -> bool:
    """Is the fused SMT kernel switched on (the default)?"""
    # Kernel and object paths are bit-identical (sanitizer-verified), so
    # the gate cannot change any task result.
    # repro: cache-invariant[REPRO_SMT_KERNEL]
    value = os.environ.get(KERNEL_ENV, "").strip().lower()
    return value not in ("0", "false", "no", "off")


def kernel_eligible(pipeline: object) -> bool:
    """May ``pipeline`` run through the fused kernel?

    Subclasses fall back to the object path: the kernel inlines the stage
    methods, so any override would silently be skipped.
    """
    return kernel_enabled() and type(pipeline) is SMTPipeline


# repro: hot
def run_smt_epochs_kernel(
    pipeline: SMTPipeline,
    hill_climbing: "HillClimbing",
    epochs: int,
    epoch_cycles: int,
    epoch_hook: Optional[EpochHook] = None,
) -> None:
    """Run ``epochs`` Hill-Climbing epochs of ``epoch_cycles`` cycles each.

    Equivalent to the object path's per-epoch loop::

        for _ in range(epochs):
            pipeline.set_allowances(hill_climbing.allowances)
            epoch_ipc = pipeline.run(epoch_cycles)
            hill_climbing.end_epoch(epoch_ipc)

    but with the whole cycle loop fused. The PG policy must not change
    mid-call (the bandit controller switches arms only between calls).
    """
    config = pipeline.config
    fetch_width = config.fetch_width
    decode_width = config.decode_width
    issue_width = config.issue_width
    commit_width = config.commit_width
    iq_size = config.iq_size
    rob_size = config.rob_size
    lq_size = config.lq_size
    sq_size = config.sq_size
    lsq_size = lq_size + sq_size
    irf_size = pipeline._effective_irf
    fetchq_capacity = config.fetchq_capacity
    l1_latency = config.l1_latency
    l2_latency = config.l2_latency
    dram_latency = config.dram_latency
    mispredict_penalty = config.mispredict_penalty
    reg_writing = REG_WRITING_KINDS

    policy = pipeline.policy
    priority = policy.priority
    priority_is_rr = priority == "RR"
    priority_is_ic = priority == "IC"
    priority_is_brc = priority == "BrC"
    gates_anything = policy.gates_anything
    gate_iq = policy.gate_iq
    gate_lsq = policy.gate_lsq
    gate_rob = policy.gate_rob
    gate_irf = policy.gate_irf

    thread0, thread1 = pipeline.threads
    profile0 = thread0.profile
    profile1 = thread1.profile
    # Same IEEE expressions as SMTPipeline._memory_latency, precomputed:
    # the L1/L2 service-level cut points of each thread's profile.
    l1_cut = (profile0.l1_hit_rate, profile1.l1_hit_rate)
    l2_cut = (
        profile0.l1_hit_rate + (1.0 - profile0.l1_hit_rate) * profile0.l2_hit_rate,
        profile1.l1_hit_rate + (1.0 - profile1.l1_hit_rate) * profile1.l2_hit_rate,
    )
    long_latency = (profile0.long_op_latency, profile1.long_op_latency)
    stream_next = (thread0.stream.__next__, thread1.stream.__next__)
    fetchqs = (thread0.fetchq, thread1.fetchq)
    fetchq_poplefts = (thread0.fetchq.popleft, thread1.fetchq.popleft)
    fetchq_appends = (thread0.fetchq.append, thread1.fetchq.append)
    robs = (thread0.rob, thread1.rob)
    rob_poplefts = (thread0.rob.popleft, thread1.rob.popleft)
    rob_appends = (thread0.rob.append, thread1.rob.append)
    completions: List[Dict[int, float]] = [thread0.completion, thread1.completion]
    completion_gets = [thread0.completion.get, thread1.completion.get]
    next_seqs = [thread0.next_seq, thread1.next_seq]
    committed = [thread0.committed, thread1.committed]
    committed_seqs = [thread0.committed_seq, thread1.committed_seq]
    blocked_seqs: List[Optional[int]] = [thread0.blocked_seq, thread1.blocked_seq]
    iq_occ = [thread0.iq_occ, thread1.iq_occ]
    rob_occ = [thread0.rob_occ, thread1.rob_occ]
    lq_occ = [thread0.lq_occ, thread1.lq_occ]
    sq_occ = [thread0.sq_occ, thread1.sq_occ]
    irf_occ = [thread0.irf_occ, thread1.irf_occ]
    branches = [thread0.branches_in_rob, thread1.branches_in_rob]

    iq = pipeline._iq
    iq_append = iq.append
    sq_releases = pipeline._sq_releases
    mem_random = pipeline._mem_rng.random
    cycle = pipeline.cycle
    rr = pipeline._rr_counter

    activity = pipeline.rename_activity
    act_cycles = activity.cycles
    act_running = activity.running
    act_idle = activity.idle
    act_stalled = activity.stalled
    act_rob = activity.stalled_rob
    act_iq = activity.stalled_iq
    act_lq = activity.stalled_lq
    act_sq = activity.stalled_sq
    act_rf = activity.stalled_rf

    allowances = pipeline.allowances
    for _ in range(epochs):
        allowances = hill_climbing.allowances
        allowance0, allowance1 = allowances
        # Gating thresholds are fixed for the epoch (same products as
        # gated_threads computes per cycle, hence bit-identical).
        fraction0 = allowance0 / iq_size
        fraction1 = allowance1 / iq_size
        lsq_threshold0 = fraction0 * lsq_size
        lsq_threshold1 = fraction1 * lsq_size
        rob_threshold0 = fraction0 * rob_size
        rob_threshold1 = fraction1 * rob_size
        irf_threshold0 = fraction0 * irf_size
        irf_threshold1 = fraction1 * irf_size

        epoch_start_committed = committed[0] + committed[1]
        end_cycle = cycle + epoch_cycles
        while cycle < end_cycle:
            # ---------------------------------------------- store drain
            # repro: mirror[smt-drain-stores] begin
            while sq_releases and sq_releases[0][0] <= cycle:
                # repro: unique-index[heappop yields one scalar thread id]
                sq_occ[heappop(sq_releases)[1]] -= 1
            # repro: mirror[smt-drain-stores] end

            order = _ORDER_10 if rr & 1 else _ORDER_01

            # --------------------------------------------------- commit
            # repro: mirror[smt-commit] begin
            budget = commit_width
            for ti in order:
                rob = robs[ti]
                if not rob:
                    continue
                completion_get = completion_gets[ti]
                rob_popleft = rob_poplefts[ti]
                while budget and rob:
                    seq, kind = rob[0]
                    done_at = completion_get(seq)
                    if done_at is None or done_at > cycle:
                        break
                    rob_popleft()
                    rob_occ[ti] -= 1
                    committed[ti] += 1
                    committed_seqs[ti] = seq
                    budget -= 1
                    if kind == KIND_BRANCH:
                        branches[ti] -= 1
                    elif kind == KIND_LOAD:
                        lq_occ[ti] -= 1
                    elif kind == KIND_STORE:
                        draw = mem_random()
                        if draw < l1_cut[ti]:
                            latency = l1_latency
                        elif draw < l2_cut[ti]:
                            latency = l2_latency
                        else:
                            latency = dram_latency
                        heappush(sq_releases, (cycle + latency, ti))
                    if kind in reg_writing:
                        irf_occ[ti] -= 1
            # repro: mirror[smt-commit] end

            # ---------------------------------------------------- issue
            # repro: mirror[smt-issue] begin
            if iq:
                budget = issue_width
                issued_any = False
                for entry in iq:
                    if budget == 0:
                        break
                    ti, seq, dep1, dep2, kind = entry
                    completion_get = completion_gets[ti]
                    committed_seq = committed_seqs[ti]
                    if dep1 > committed_seq:
                        ready_at = completion_get(dep1)
                        if ready_at is None or ready_at > cycle:
                            continue
                    if dep2 > committed_seq:
                        ready_at = completion_get(dep2)
                        if ready_at is None or ready_at > cycle:
                            continue
                    if kind == KIND_LOAD:
                        # repro: mirror[smt-memory-latency] begin
                        draw = mem_random()
                        if draw < l1_cut[ti]:
                            latency = l1_latency
                        elif draw < l2_cut[ti]:
                            latency = l2_latency
                        else:
                            latency = dram_latency
                        # repro: mirror[smt-memory-latency] end
                    elif kind == KIND_LONG:
                        latency = long_latency[ti]
                    else:
                        latency = 1
                    completions[ti][seq] = cycle + latency
                    iq_occ[ti] -= 1
                    entry[0] = -1
                    issued_any = True
                    budget -= 1
                if issued_any:
                    iq = [entry for entry in iq if entry[0] >= 0]
                    iq_append = iq.append
            # repro: mirror[smt-issue] end

            # --------------------------------------------------- rename
            # repro: mirror[smt-rename] begin
            act_cycles += 1
            budget = decode_width
            renamed = 0
            stall_rob = stall_iq = stall_lq = stall_sq = stall_rf = False
            rob_total = rob_occ[0] + rob_occ[1]
            iq_total = iq_occ[0] + iq_occ[1]
            lq_total = lq_occ[0] + lq_occ[1]
            sq_total = sq_occ[0] + sq_occ[1]
            irf_total = irf_occ[0] + irf_occ[1]
            while budget:
                progressed = False
                for ti in order:
                    if budget == 0:
                        break
                    fetchq = fetchqs[ti]
                    if not fetchq:
                        continue
                    seq, kind, dep1, dep2, mispredict = fetchq[0]
                    stalled = False
                    if rob_total >= rob_size:
                        stall_rob = True
                        stalled = True
                    if iq_total >= iq_size:
                        stall_iq = True
                        stalled = True
                    if kind == KIND_LOAD and lq_total >= lq_size:
                        stall_lq = True
                        stalled = True
                    if kind == KIND_STORE and sq_total >= sq_size:
                        stall_sq = True
                        stalled = True
                    if kind in reg_writing and irf_total >= irf_size:
                        stall_rf = True
                        stalled = True
                    if stalled:
                        continue
                    fetchq_poplefts[ti]()
                    rob_appends[ti]((seq, kind))
                    rob_occ[ti] += 1
                    rob_total += 1
                    iq_occ[ti] += 1
                    iq_total += 1
                    iq_append([ti, seq, dep1, dep2, kind])
                    if kind == KIND_LOAD:
                        lq_occ[ti] += 1
                        lq_total += 1
                    elif kind == KIND_STORE:
                        sq_occ[ti] += 1
                        sq_total += 1
                    elif kind == KIND_BRANCH:
                        branches[ti] += 1
                    if kind in reg_writing:
                        irf_occ[ti] += 1
                        irf_total += 1
                    renamed += 1
                    budget -= 1
                    progressed = True
                if not progressed:
                    break
            if renamed:
                act_running += 1
            elif not fetchqs[0] and not fetchqs[1]:
                act_idle += 1
            else:
                act_stalled += 1
                if stall_rob:
                    act_rob += 1
                if stall_iq:
                    act_iq += 1
                if stall_lq:
                    act_lq += 1
                if stall_sq:
                    act_sq += 1
                if stall_rf:
                    act_rf += 1
            # repro: mirror[smt-rename] end

            # ---------------------------------------------------- fetch
            # repro: mirror[smt-gating] begin
            gated0 = gated1 = False
            if gates_anything:
                if gate_iq and iq_occ[0] > allowance0:
                    gated0 = True
                elif gate_lsq and lq_occ[0] + sq_occ[0] > lsq_threshold0:
                    gated0 = True
                elif gate_rob and rob_occ[0] > rob_threshold0:
                    gated0 = True
                elif gate_irf and irf_occ[0] > irf_threshold0:
                    gated0 = True
                if gate_iq and iq_occ[1] > allowance1:
                    gated1 = True
                elif gate_lsq and lq_occ[1] + sq_occ[1] > lsq_threshold1:
                    gated1 = True
                elif gate_rob and rob_occ[1] > rob_threshold1:
                    gated1 = True
                elif gate_irf and irf_occ[1] > irf_threshold1:
                    gated1 = True
            # repro: mirror[smt-gating] end
            # repro: mirror[smt-fetch] begin
            # The blocked-branch check runs unconditionally per thread:
            # clearing a resolved redirect is a side effect the object
            # path performs even for threads that end up ineligible.
            eligible0 = True
            blocked = blocked_seqs[0]
            if blocked is not None:
                done_at = completion_gets[0](blocked)
                if done_at is not None and done_at + mispredict_penalty <= cycle:
                    blocked_seqs[0] = None
                else:
                    eligible0 = False
            if eligible0 and (len(fetchqs[0]) >= fetchq_capacity or gated0):
                eligible0 = False
            eligible1 = True
            blocked = blocked_seqs[1]
            if blocked is not None:
                done_at = completion_gets[1](blocked)
                if done_at is not None and done_at + mispredict_penalty <= cycle:
                    blocked_seqs[1] = None
                else:
                    eligible1 = False
            if eligible1 and (len(fetchqs[1]) >= fetchq_capacity or gated1):
                eligible1 = False
            # repro: mirror[smt-fetch] end
            # repro: mirror[smt-pick-thread] begin
            if eligible0 and eligible1:
                if priority_is_rr:
                    choice = rr & 1
                else:
                    if priority_is_ic:
                        metric0 = iq_occ[0] + len(fetchqs[0])
                        metric1 = iq_occ[1] + len(fetchqs[1])
                    elif priority_is_brc:
                        metric0 = branches[0]
                        metric1 = branches[1]
                    else:
                        metric0 = lq_occ[0] + sq_occ[0]
                        metric1 = lq_occ[1] + sq_occ[1]
                    if metric0 < metric1:
                        choice = 0
                    elif metric1 < metric0:
                        choice = 1
                    else:
                        choice = rr & 1
            elif eligible0:
                choice = 0
            elif eligible1:
                choice = 1
            else:
                choice = -1
            # repro: mirror[smt-pick-thread] end
            if choice >= 0:
                snext = stream_next[choice]
                fetchq_append = fetchq_appends[choice]
                next_seq = next_seqs[choice]
                for _ in range(fetch_width):
                    kind, dep1_off, dep2_off, mispredict = snext()
                    seq = next_seq
                    next_seq = seq + 1
                    dep1 = seq - dep1_off if dep1_off else 0
                    dep2 = seq - dep2_off if dep2_off else 0
                    fetchq_append((
                        seq,
                        kind,
                        dep1 if dep1 > 0 else 0,
                        dep2 if dep2 > 0 else 0,
                        mispredict,
                    ))
                    if mispredict:
                        blocked_seqs[choice] = seq
                        break
                next_seqs[choice] = next_seq

            # ------------------------------------------------- bookkeeping
            if cycle % 4096 == 0:
                # repro: mirror[smt-prune-completion] begin
                for ti in _ORDER_01:
                    completion = completions[ti]
                    if len(completion) > 2048:
                        floor = committed_seqs[ti] - 512
                        completion = {
                            seq: done
                            for seq, done in completion.items()
                            if seq >= floor
                        }
                        completions[ti] = completion
                        completion_gets[ti] = completion.get
                # repro: mirror[smt-prune-completion] end
            cycle += 1
            rr += 1

        # ------------------------------------------------ epoch boundary
        # repro: mirror[smt-epoch-loop] begin
        # repro: dtype[epoch_ipc: float64]
        epoch_ipc = (committed[0] + committed[1] - epoch_start_committed) / epoch_cycles
        hill_climbing.end_epoch(epoch_ipc)
        if epoch_hook is not None:
            thread0.committed = committed[0]
            thread1.committed = committed[1]
            pipeline.cycle = cycle
            epoch_hook(pipeline, epoch_ipc)
        # repro: mirror[smt-epoch-loop] end

    # ---------------------------------------------------------- write-back
    thread0.next_seq = next_seqs[0]
    thread1.next_seq = next_seqs[1]
    thread0.completion = completions[0]
    thread1.completion = completions[1]
    thread0.committed = committed[0]
    thread1.committed = committed[1]
    thread0.committed_seq = committed_seqs[0]
    thread1.committed_seq = committed_seqs[1]
    thread0.blocked_seq = blocked_seqs[0]
    thread1.blocked_seq = blocked_seqs[1]
    thread0.iq_occ = iq_occ[0]
    thread1.iq_occ = iq_occ[1]
    thread0.rob_occ = rob_occ[0]
    thread1.rob_occ = rob_occ[1]
    thread0.lq_occ = lq_occ[0]
    thread1.lq_occ = lq_occ[1]
    thread0.sq_occ = sq_occ[0]
    thread1.sq_occ = sq_occ[1]
    thread0.irf_occ = irf_occ[0]
    thread1.irf_occ = irf_occ[1]
    thread0.branches_in_rob = branches[0]
    thread1.branches_in_rob = branches[1]
    pipeline.cycle = cycle
    pipeline._rr_counter = rr
    pipeline._iq = iq
    pipeline.allowances = allowances
    activity.cycles = act_cycles
    activity.running = act_running
    activity.idle = act_idle
    activity.stalled = act_stalled
    activity.stalled_rob = act_rob
    activity.stalled_iq = act_iq
    activity.stalled_lq = act_lq
    activity.stalled_sq = act_sq
    activity.stalled_rf = act_rf
