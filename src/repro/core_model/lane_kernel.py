"""Batched lane replay kernel: N independent runs advanced as array columns.

A *lane* is one independent replay of the same compiled trace — a fixed
ensemble arm, the no-prefetch baseline, or a seeded Micro-Armed Bandit run.
The replication sweeps (fig08/fig10, ``best_static_arm``) replay the same
trace through 11+ such lanes; the scalar path simulates them one at a time,
re-deriving per-record state that is in fact *lane-invariant*:

- **Core index stream.** Instruction indices, dispatch-cost increments, and
  the ROB-boundary anchor *record* depend only on the trace's ``inst_gap``
  sequence, so they are precomputed once with vectorized numpy (the anchor
  via one ``searchsorted`` over the cumulative index stream).
- **L1 contents.** L2 prefetch fills never touch the L1, and demand fills
  are trace-ordered, so L1 hit/miss, victim choice, and victim dirtiness are
  identical across lanes — simulated once in a shared pre-pass.
- **Prefetcher training.** The stride/stream tables train on the L1-miss
  stream regardless of the active degree (the ensemble property §5.2 leans
  on), and training reads only ``(pc, block)`` — lane-invariant. The
  pre-pass trains real ``StridePrefetcher``/``StreamPrefetcher`` instances
  once and records, per miss record, whether each component would emit and
  with what stride/direction; a lane's candidate list is then a pure
  function of its current arm degrees.

What *does* diverge per lane — L2/LLC contents, MSHR state, DRAM channel
timing, retire/dispatch clocks — is held lane-resident: numpy ``(N,)``
columns for the core clocks (every L1-hit record updates all lanes in a few
vector ops) and, in the default **array kernel**, packed-int
``(N, sets, ways)`` tag+flags arrays for the L2/LLC plus a per-lane sorted
fill queue held as ``(N, mshr)`` structured columns — so an L1-miss record
updates all N lanes in a handful of masked array ops on both the demand
path and the prefetch-fill path.  Each cache line is packed as
``block * 8 + flags`` (bit0 prefetched, bit1 used, bit2 dirty; ``-1`` =
empty way) and way order *is* recency order (way 0 oldest), so the
insertion-order victim choice of the scalar kernel's dicts becomes
"evict way 0, append at way ``count - 1``".

The previous per-lane dict transcription (PR 6) is retained for one release
behind ``REPRO_LANE_KERNEL=dict`` as an oracle for the array path; both are
exact per-lane transcriptions of
:func:`~repro.core_model.replay_kernel.run_replay_kernel` on L1-miss
records (all lanes miss together, because hit/miss is shared).

The arithmetic is bit-identical to the scalar kernel: vector adds/maxima on
float64 columns perform the same IEEE-754 operations in the same order as
the scalar locals, so every lane's IPC, cycle counts, and hierarchy stats
match ``TraceCore.run_compiled`` exactly (asserted lane-by-lane under
``REPRO_SANITIZE=1``, and in ``tests/test_lane_kernel.py``).

``REPRO_LANE_KERNEL=0`` (or any ineligible lane/config) falls back to the
scalar runners, one process-visible result list either way; ineligibility
is reported as a human-readable fallback reason that the experiment
runner surfaces in telemetry manifests (see
:func:`lane_batch_fallback_reason`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.bandit.hardware import MicroArmedBandit
from repro.bandit.rewards import PerformanceCounters
from repro.constants import NUM_STREAM_TRACKERS, NUM_STRIDE_TRACKERS
from repro.core_model.sanitizer import StepRecord, sanitize_enabled
from repro.core_model.trace_core import CoreConfig
from repro.prefetch.ensemble import TABLE7_ARMS
from repro.prefetch.stream import StreamPrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.uncore.hierarchy import (
    HierarchyConfig,
    HierarchyStats,
    PrefetchOutcome,
)
from repro.workloads.compiled import CompiledTrace

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.experiments.configs import PrefetchBanditParams
    from repro.experiments.prefetch import PrefetchRunResult

#: Set to ``0`` to force every lane batch down the scalar runner path.
LANE_KERNEL_ENV = "REPRO_LANE_KERNEL"

_INF = float("inf")

#: Lane kinds the kernel understands.
_KINDS = ("none", "arm", "bandit")


@dataclass(frozen=True)
class LaneSpec:
    """One lane of a batch: a single independent replay configuration.

    ``kind`` is ``"none"`` (no prefetcher), ``"arm"`` (fixed ensemble arm —
    ``arm`` required), or ``"bandit"`` (Micro-Armed Bandit with ``seed``).
    """

    kind: str
    arm: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown lane kind {self.kind!r}")
        if self.kind == "arm" and self.arm is None:
            raise ValueError("arm lanes require an arm index")


#: Lane count at or above which ``auto`` mode routes a batch to the
#: array kernel. Below it the dict kernel's small per-lane state beats
#: the array path's per-record dispatch floor; above it the dict path's
#: working set blows out the host caches and scales superlinearly while
#: the array path stays linear in lanes (both are bit-identical, so the
#: cutover is purely a performance choice).
AUTO_ARRAY_MIN_LANES = 128


def lane_kernel_mode() -> str:
    """The lane-kernel path selected by ``REPRO_LANE_KERNEL``.

    ``"auto"`` (the default) picks per batch: the array-resident kernel
    for wide batches (>= ``AUTO_ARRAY_MIN_LANES`` lanes) and the dict
    kernel for narrow ones. ``"array"`` / ``"dict"`` force one batched
    path; ``"scalar"`` (also ``0``/``false``/``no``/``off``) forces the
    scalar runner fallback.
    """
    # All paths are bit-identical (sanitizer-verified), so the mode
    # cannot change any task result.
    # repro: cache-invariant[REPRO_LANE_KERNEL]
    value = os.environ.get(LANE_KERNEL_ENV, "auto").strip().lower()
    if value in ("0", "false", "no", "off", "scalar"):
        return "scalar"
    if value in ("dict", "array"):
        return value
    return "auto"


def lane_kernel_enabled() -> bool:
    """Whether a batched kernel may be used (``REPRO_LANE_KERNEL``)."""
    return lane_kernel_mode() != "scalar"


def resolve_lane_kernel_mode(num_lanes: int) -> str:
    """The kernel path a batch of ``num_lanes`` lanes will actually take.

    Resolves ``auto`` to ``"array"`` or ``"dict"`` by batch width; the
    experiment runner records this in telemetry manifests.
    """
    mode = lane_kernel_mode()
    if mode == "auto":
        return "array" if num_lanes >= AUTO_ARRAY_MIN_LANES else "dict"
    return mode


def lane_batch_fallback_reason(
    trace: object,
    lanes: Sequence[LaneSpec],
    params: "PrefetchBanditParams",
) -> Optional[str]:
    """Why this batch cannot run through the batched kernel, or ``None``.

    Requires a non-empty compiled trace, known lane kinds, and in-range
    arm ids.  Mixed stride/stream tracker geometries are fine: the shared
    training pre-pass simulates one table pair per distinct geometry and
    every lane reads its own group's outcomes.  The returned string is a
    stable, human-readable diagnosis that the experiment runner records
    in telemetry manifests when a sweep silently falls back to the
    scalar runners; it depends only on the task inputs (never on the
    ``REPRO_LANE_KERNEL`` mode), so it is safe inside cached payloads.
    """
    if not isinstance(trace, CompiledTrace):
        return "trace is not a CompiledTrace"
    if len(trace) == 0:
        return "empty trace"
    if not lanes:
        return "empty lane list"
    for lane in lanes:
        if lane.kind == "arm":
            if lane.arm is None or not 0 <= lane.arm < len(TABLE7_ARMS):
                return f"arm index {lane.arm!r} out of range"
        elif lane.kind == "bandit":
            # The kernel installs the post-first-hook threshold state
            # directly, which is only equivalent to the scalar kernel's
            # initial -inf thresholds when the first record cannot end a
            # bandit step on its own.
            if params.step_l2_accesses < 1:
                return "bandit lanes require step_l2_accesses >= 1"
        elif lane.kind != "none":
            return f"unknown lane kind {lane.kind!r}"
    return None


def lane_batch_eligible(
    trace: object,
    lanes: Sequence[LaneSpec],
    params: "PrefetchBanditParams",
) -> bool:
    """Whether every lane can run through a batched kernel."""
    return lane_batch_fallback_reason(trace, lanes, params) is None


def run_lane_batch(
    trace: object,
    lanes: Sequence[LaneSpec],
    hierarchy_config: HierarchyConfig,
    core_config: CoreConfig,
    params: Optional["PrefetchBanditParams"] = None,
) -> List["PrefetchRunResult"]:
    """Replay ``trace`` through every lane; one result per lane, in order.

    Dispatches to the array kernel (wide batches), the dict kernel
    (narrow batches, or ``REPRO_LANE_KERNEL=dict``), or — when disabled
    or ineligible — the scalar runners (`run_fixed_prefetcher`/
    `run_fixed_arm`/`run_bandit_prefetch`) lane by lane. Results are
    bit-identical every way; under ``REPRO_SANITIZE=1`` the kernel paths
    additionally replay every lane through the object path and assert
    lane-by-lane equivalence (see
    :func:`repro.core_model.sanitizer.verify_lane_batch`).
    """
    lanes = list(lanes)
    if params is None:
        from repro.experiments.configs import PREFETCH_BANDIT_CONFIG

        params = PREFETCH_BANDIT_CONFIG
    if not lanes:
        return []
    mode = resolve_lane_kernel_mode(len(lanes))
    if (
        mode == "scalar"
        or core_config.rob_size <= 0
        or lane_batch_fallback_reason(trace, lanes, params) is not None
    ):
        return _run_lanes_scalar(
            trace, lanes, hierarchy_config, core_config, params
        )
    sanitize = sanitize_enabled()
    kernel = _lane_kernel_dict if mode == "dict" else _lane_kernel_array
    results, checkpoints, step_logs = kernel(
        trace, lanes, hierarchy_config, core_config, params,
        collect_logs=sanitize,
    )
    if sanitize:
        from repro.core_model.sanitizer import verify_lane_batch

        verify_lane_batch(
            trace, lanes, results, checkpoints, step_logs,
            hierarchy_config, core_config, params, kernel_mode=mode,
        )
    return results


def _run_lanes_scalar(
    trace: object,
    lanes: Sequence[LaneSpec],
    hierarchy_config: HierarchyConfig,
    core_config: CoreConfig,
    params: "PrefetchBanditParams",
) -> List["PrefetchRunResult"]:
    """Scalar fallback: one full runner invocation per lane."""
    from repro.experiments.prefetch import (
        run_bandit_prefetch,
        run_fixed_arm,
        run_fixed_prefetcher,
    )

    results = []
    for lane in lanes:
        if lane.kind == "none":
            results.append(run_fixed_prefetcher(
                trace, "none", hierarchy_config, core_config
            ))
        elif lane.kind == "arm":
            results.append(run_fixed_arm(
                trace, lane.arm, hierarchy_config, core_config
            ))
        else:
            results.append(run_bandit_prefetch(
                trace, hierarchy_config=hierarchy_config,
                core_config=core_config, params=params, seed=lane.seed,
            ))
    return results


# ============================================================ shared pre-pass


def _lane_tracker_geometry(
    lanes: Sequence[LaneSpec],
    params: "PrefetchBanditParams",
) -> Tuple[List[Tuple[int, int]], np.ndarray]:
    """``(tracker pairs, per-lane group index)`` for a lane batch.

    Arm (and "none") lanes train the module-default
    ``(NUM_STRIDE_TRACKERS, NUM_STREAM_TRACKERS)`` geometry; bandit lanes
    train the ``params`` geometry. The ordered-unique pair list drives the
    shared pre-pass (one table pair per distinct geometry) and the group
    index maps each lane onto its pair's training outcomes.
    """
    default_pair = (NUM_STRIDE_TRACKERS, NUM_STREAM_TRACKERS)
    pairs: List[Tuple[int, int]] = []
    geo = np.zeros(len(lanes), dtype=np.int64)
    for i, lane in enumerate(lanes):
        pair = (
            (params.num_stride_trackers, params.num_stream_trackers)
            if lane.kind == "bandit" else default_pair
        )
        if pair not in pairs:
            pairs.append(pair)
        geo[i] = pairs.index(pair)
    return pairs, geo


# repro: mirror-exempt[lane-invariant input prepass: builds the shared hit/stack columns both kernels consume; verified by the sanitizer against per-lane replay]
def _shared_prepass(
    trace: CompiledTrace,
    hierarchy_config: HierarchyConfig,
    core_config: CoreConfig,
    tracker_pairs: Sequence[Tuple[int, int]],
) -> Dict[str, object]:
    """Compute every lane-invariant per-record quantity, once.

    Produces the core index/anchor stream (vectorized), the full L1
    simulation (hit flag + victim block/dirtiness per record), and the
    stride/stream training outcomes per L1-miss record — one outcome set
    per tracker-geometry pair in ``tracker_pairs`` (group 0 trains inline
    during the L1 walk; extra geometries replay the recorded miss stream,
    which is bit-exact because training reads only ``(pc, block)``).
    """
    pcs, blocks, flags_l, gaps_l = trace.as_lists()
    total = len(pcs)
    commit_cost = 1.0 / core_config.commit_width
    dispatch_cost = 1.0 / core_config.dispatch_width

    # ---- core index / ROB anchor stream (vectorized) ----
    gaps_arr = trace.inst_gap.astype(np.int64)
    idx = np.cumsum(gaps_arr + 1)
    boundary = idx - core_config.rob_size
    # Anchor record for row t: the youngest earlier record whose index is
    # <= boundary_t (consumed window entries stay anchored — boundary is
    # strictly increasing, so "last consumed" == "largest index <= boundary").
    anchor_row = np.searchsorted(idx, boundary, side="right") - 1
    anchor_idx = np.where(anchor_row >= 0, idx[np.maximum(anchor_row, 0)], 0)
    behind = boundary - anchor_idx
    # floor = anchor_retire + behind*commit_cost when behind > 0, else
    # anchor_retire; adding +0.0 is a bit-exact identity on the non-negative
    # retire values, so a zeroed addend folds both cases into one add.
    boost = np.where(behind > 0, behind, 0).astype(np.float64) * commit_cost
    # Floor gather plan: the kernel's retire log keeps a permanent zero row
    # at index 0, so ``rlog[anchor_row + 1] + boost`` is the floor for every
    # row at once — anchor -1 (ROB never filled) gathers 0.0 and the
    # boost-only and no-floor cases collapse into the same (no-op) maximum.
    # Rows are grouped into blocks whose anchors all precede the block
    # start, so each block's floors gather from final rlog rows in two
    # vector ops; a row whose anchor lands inside the current block (ROB
    # span shorter than the block) simply opens a new block.
    anchor_l = anchor_row.tolist()
    floor_blocks = [0]
    cur = 0
    for t, a in enumerate(anchor_l):
        if a >= cur and t > cur:
            cur = t
            floor_blocks.append(t)

    # ---- shared L1 simulation + prefetcher training ----
    block_bytes = hierarchy_config.block_bytes
    l1_num_sets = hierarchy_config.l1_size_bytes // (
        hierarchy_config.l1_ways * block_bytes
    )
    l1_ways = hierarchy_config.l1_ways
    l1_sets: List[Dict[int, bool]] = [{} for _ in range(l1_num_sets)]
    hit = bytearray(total)
    l1_victim = [-1] * total
    l1_victim_dirty = bytearray(total)
    st_ok = bytearray(total)
    st_stride = [0] * total
    sm_ok = bytearray(total)
    sm_dir = [0] * total
    miss_rows: List[int] = []
    # Real component instances at degree 1: training is degree-independent,
    # and a non-empty emission directly yields (ok, stride/direction).
    num_stride_trackers, num_stream_trackers = tracker_pairs[0]
    stride_pf = StridePrefetcher(degree=1, num_trackers=num_stride_trackers)
    stream_pf = StreamPrefetcher(degree=1, num_trackers=num_stream_trackers)
    stride_observe = stride_pf.observe
    stream_observe = stream_pf.observe
    stores = 0

    for t in range(total):
        block = blocks[t]
        is_write = flags_l[t] & 1
        if is_write:
            stores += 1
        cache_set = l1_sets[block % l1_num_sets]
        dirty = cache_set.pop(block, None)
        if dirty is not None:
            cache_set[block] = True if is_write else dirty
            hit[t] = 1
            continue
        # L1 miss: train the shared tables, record the emission outcome.
        miss_rows.append(t)
        st = stride_observe(pcs[t], block, 0.0, False)
        if st:
            st_ok[t] = 1
            st_stride[t] = st[0] - block
        sm = stream_observe(pcs[t], block, 0.0, False)
        if sm:
            sm_ok[t] = 1
            sm_dir[t] = sm[0] - block
        if len(cache_set) >= l1_ways:
            for victim_block in cache_set:
                break
            l1_victim[t] = victim_block
            l1_victim_dirty[t] = 1 if cache_set.pop(victim_block) else 0
        cache_set[block] = bool(is_write)

    # Extra tracker geometries: replay the recorded miss stream through a
    # fresh table pair per geometry. Training only ever sees the L1-miss
    # (pc, block) sequence, so the replay is bit-exact.
    st_ok_g = [st_ok]
    st_stride_g = [st_stride]
    sm_ok_g = [sm_ok]
    sm_dir_g = [sm_dir]
    for n_stride, n_stream in tracker_pairs[1:]:
        g_st_ok = bytearray(total)
        g_st_stride = [0] * total
        g_sm_ok = bytearray(total)
        g_sm_dir = [0] * total
        g_stride = StridePrefetcher(degree=1, num_trackers=n_stride).observe
        g_stream = StreamPrefetcher(degree=1, num_trackers=n_stream).observe
        for t in miss_rows:
            block = blocks[t]
            st = g_stride(pcs[t], block, 0.0, False)
            if st:
                g_st_ok[t] = 1
                g_st_stride[t] = st[0] - block
            sm = g_stream(pcs[t], block, 0.0, False)
            if sm:
                g_sm_ok[t] = 1
                g_sm_dir[t] = sm[0] - block
        st_ok_g.append(g_st_ok)
        st_stride_g.append(g_st_stride)
        sm_ok_g.append(g_sm_ok)
        sm_dir_g.append(g_sm_dir)

    return {
        "total": total,
        "pcs": pcs,
        "blocks": blocks,
        "flags": flags_l,
        "gaps": gaps_l,
        "idx": idx.tolist(),
        "anchor_row": anchor_l,
        "anchor_gidx": anchor_row + 1,
        "boost_arr": boost,
        "floor_blocks": floor_blocks,
        "gap_retire": (gaps_arr.astype(np.float64) * commit_cost).tolist(),
        "gap_dispatch": (gaps_arr.astype(np.float64) * dispatch_cost).tolist(),
        "hit": hit,
        "l1_victim": l1_victim,
        "l1_victim_dirty": l1_victim_dirty,
        "st_ok": st_ok_g,
        "st_stride": st_stride_g,
        "sm_ok": sm_ok_g,
        "sm_dir": sm_dir_g,
        "loads": total - stores,
        "stores": stores,
        "commit_cost": commit_cost,
        "dispatch_cost": dispatch_cost,
    }


# ================================================================ the kernel


def _lane_checkpoint(
    checkpoint_logs: List[List[StepRecord]],
    t: int,
    instructions: int,
    retire: np.ndarray,
    l2da: int,
) -> None:
    """Record one sanitizer checkpoint row for every lane."""
    retire_l = retire.tolist()
    for i, log in enumerate(checkpoint_logs):
        retire_i = retire_l[i]
        log.append(StepRecord(
            step=t + 1,
            instructions=instructions,
            cycles=retire_i,
            ipc=instructions / retire_i if retire_i else 0.0,
            l2_demand_accesses=l2da,
        ))


def _assemble_results(
    lanes: List[LaneSpec],
    loads: int,
    stores: int,
    records: int,
    total_instructions: int,
    retire_final: List[float],
    l2da: int,
    l2dh: Sequence[int],
    llcda: Sequence[int],
    llcdh: Sequence[int],
    dram_fills: Sequence[int],
    writebacks: Sequence[int],
    pf_issued: Sequence[int],
    pf_timely: Sequence[int],
    pf_late: Sequence[int],
    pf_wrong: Sequence[int],
    pf_dropped: Sequence[int],
    algorithms: Sequence[object],
    arm_traces: Sequence[List[Tuple[float, int]]],
) -> List["PrefetchRunResult"]:
    """One ``PrefetchRunResult`` per lane from the kernel's final counters.

    Counter sequences may be plain lists or numpy columns; every value is
    cast to a builtin so the results pickle/serialize identically to the
    scalar runners' output.
    """
    from repro.experiments.prefetch import PrefetchRunResult

    results: List[PrefetchRunResult] = []
    for i, lane in enumerate(lanes):
        retire_i = float(retire_final[i])
        stats = HierarchyStats(
            loads=loads,
            stores=stores,
            l2_demand_accesses=l2da,
            l2_demand_hits=int(l2dh[i]),
            llc_demand_accesses=int(llcda[i]),
            llc_demand_hits=int(llcdh[i]),
            dram_demand_fills=int(dram_fills[i]),
            writebacks=int(writebacks[i]),
            prefetch=PrefetchOutcome(
                issued=int(pf_issued[i]),
                timely=int(pf_timely[i]),
                late=int(pf_late[i]),
                wrong=int(pf_wrong[i]),
                dropped=int(pf_dropped[i]),
            ),
        )
        if lane.kind == "bandit":
            arm_history = list(algorithms[i].selection_history)
            arm_trace = arm_traces[i]
        elif lane.kind == "arm":
            arm_history = [lane.arm]
            arm_trace = []
        else:
            arm_history = []
            arm_trace = []
        results.append(PrefetchRunResult(
            ipc=total_instructions / retire_i if retire_i else 0.0,
            instructions=total_instructions,
            cycles=retire_i,
            stats=stats,
            arm_history=arm_history,
            arm_trace=arm_trace,
            records=records,
        ))
    return results


def _lane_kernel_dict(
    trace: CompiledTrace,
    lanes: List[LaneSpec],
    hierarchy_config: HierarchyConfig,
    core_config: CoreConfig,
    params: "PrefetchBanditParams",
    collect_logs: bool = False,
) -> Tuple[
    List["PrefetchRunResult"],
    List[List[StepRecord]],
    Dict[int, List[StepRecord]],
]:
    """Advance every lane through the trace in one fused pass (dict path).

    This is the PR 6 kernel, kept for one release behind
    ``REPRO_LANE_KERNEL=dict`` as an oracle for the array-resident kernel:
    the memory side is plain per-lane dicts updated in a per-lane Python
    loop on every L1-miss record. Returns
    ``(results, checkpoint_logs, bandit_step_logs)``; the logs are only
    populated when ``collect_logs`` (the sanitizer's capture).
    """
    num_lanes = len(lanes)
    has_bandit = any(lane.kind == "bandit" for lane in lanes)
    tracker_pairs, geo = _lane_tracker_geometry(lanes, params)
    geo_l = geo.tolist()
    pre = _shared_prepass(
        trace, hierarchy_config, core_config, tracker_pairs
    )
    total = pre["total"]
    blocks = pre["blocks"]
    flags_l = pre["flags"]
    gaps_l = pre["gaps"]
    idx_l = pre["idx"]
    anchor_gidx = pre["anchor_gidx"]
    boost_arr = pre["boost_arr"]
    floor_blocks = pre["floor_blocks"]
    gap_retire = pre["gap_retire"]
    gap_dispatch = pre["gap_dispatch"]
    hit = pre["hit"]
    l1_victim = pre["l1_victim"]
    l1_victim_dirty = pre["l1_victim_dirty"]
    st_ok = pre["st_ok"]
    st_stride_l = pre["st_stride"]
    sm_ok = pre["sm_ok"]
    sm_dir_l = pre["sm_dir"]
    commit_cost = pre["commit_cost"]

    config = hierarchy_config
    l1_latency = config.l1_latency
    l2_latency = config.l2_latency
    llc_latency = config.llc_latency
    max_inflight_prefetches = config.max_inflight_prefetches
    mshr_capacity = config.mshr_entries
    block_bytes = config.block_bytes
    l2_num_sets = config.l2_size_bytes // (config.l2_ways * block_bytes)
    llc_num_sets = config.llc_size_bytes // (config.llc_ways * block_bytes)
    l2_ways = config.l2_ways
    llc_ways = config.llc_ways
    # DRAM channel constants (mirrors DRAMModel.access/writeback).
    transfers_per_cycle = config.dram_mtps * 1e6 / (
        config.core_frequency_ghz * 1e9
    )
    dram_line_cost = 8 / transfers_per_cycle
    dram_latency = config.dram_latency

    # ---- per-lane memory-side state (plain Python; victim choice is dict
    # order, so recency stamps are never consulted and are dropped).  L2
    # lines are packed small ints (bit0 prefetched, bit1 used, bit2 dirty)
    # and LLC lines a bare dirty bool (its other flags are never read), so
    # cache fills allocate nothing ----
    l2_sets = [
        [{} for _ in range(l2_num_sets)] for _ in range(num_lanes)
    ]  # type: List[List[Dict[int, int]]]
    llc_sets = [
        [{} for _ in range(llc_num_sets)] for _ in range(num_lanes)
    ]  # type: List[List[Dict[int, bool]]]
    # In-flight fills: block -> ready cycle, negated for prefetch fills
    # (ready cycles are strictly positive, so the sign carries is_pf).
    inflight: List[Dict[int, float]] = [dict() for _ in range(num_lanes)]
    heaps: List[list] = [[] for _ in range(num_lanes)]
    nfr = [_INF] * num_lanes  # next MSHR fill-ready cycle, per lane
    ipf = [0] * num_lanes  # in-flight prefetch count
    dram_free = [0.0] * num_lanes  # DRAM channel-free cycle

    # Every lane misses L1 together, so L2 demand accesses are a single
    # shared counter, not a per-lane column.
    l2da = 0
    l2dh = [0] * num_lanes
    llcda = [0] * num_lanes
    llcdh = [0] * num_lanes
    dram_fills = [0] * num_lanes
    writebacks = [0] * num_lanes
    pf_issued = [0] * num_lanes
    pf_timely = [0] * num_lanes
    pf_late = [0] * num_lanes
    pf_wrong = [0] * num_lanes
    pf_dropped = [0] * num_lanes

    # ---- per-lane prefetcher configuration (EnsemblePrefetcher.set_arm
    # collapses to one packed (next_line, stride_deg, stream_deg) register
    # tuple; "none" lanes carry None and never observe) ----
    lane_arm: List[Optional[Tuple[bool, int, int]]] = [
        None if lane.kind == "none" else (False, 0, 0) for lane in lanes
    ]

    # repro: mirror-exempt[degree-register install shared by the mirrored demand paths; twin of the array kernel's apply_arm]
    def apply_arm(i: int, arm_id: int) -> None:
        spec = TABLE7_ARMS[arm_id]
        lane_arm[i] = (
            spec.next_line, spec.stride_degree, spec.stream_degree
        )

    # ---- bandit lanes (real MicroArmedBandit + DUCB objects per lane;
    # only the ensemble's degree registers are virtualized) ----
    is_bandit = [lane.kind == "bandit" for lane in lanes]
    bandit_lanes = [i for i, flag in enumerate(is_bandit) if flag]
    bandits: List[Optional[MicroArmedBandit]] = [None] * num_lanes
    algorithms: List[object] = [None] * num_lanes
    pending = [0] * num_lanes
    applied = [0] * num_lanes
    next_boundary = [0] * num_lanes
    hook_l2 = [_INF] * num_lanes
    hook_cyc = [_INF] * num_lanes
    arm_traces: List[List[Tuple[float, int]]] = [[] for _ in range(num_lanes)]
    step_accesses = params.step_l2_accesses

    step_logs: Dict[int, List[StepRecord]] = {}
    checkpoint_logs: List[List[StepRecord]] = [[] for _ in range(num_lanes)]
    if collect_logs:
        from repro.core_model.sanitizer import _CHECKPOINTS

        cp_stride = max(1, total // _CHECKPOINTS)
    else:
        cp_stride = 0

    def log_step(i: int, instructions: int, retire_i: float) -> None:
        log = step_logs[i]
        algorithm = algorithms[i]
        log.append(StepRecord(
            step=len(log),
            instructions=instructions,
            cycles=retire_i,
            ipc=instructions / retire_i if retire_i else 0.0,
            l2_demand_accesses=l2da,
            arm=pending[i],
            reward_estimates=tuple(algorithm.reward_estimates()),
            selection_counts=tuple(algorithm.selection_counts()),
        ))

    if has_bandit:
        from repro.experiments.configs import prefetch_bandit_algorithm

        for i, lane in enumerate(lanes):
            if not is_bandit[i]:
                continue
            algorithm = prefetch_bandit_algorithm(
                seed=lane.seed, params=params
            )
            bandit = MicroArmedBandit(
                algorithm,
                selection_latency_cycles=params.selection_latency_cycles,
            )
            # Mirrors run_bandit_prefetch's episode setup on a fresh core.
            bandit.reset_counters(PerformanceCounters(0, 0.0))
            arm = bandit.begin_step(0.0)
            pending[i] = arm
            applied[i] = arm
            apply_arm(i, arm)
            arm_traces[i] = [(0.0, arm)]
            next_boundary[i] = step_accesses
            algorithms[i] = algorithm
            bandits[i] = bandit
            # The scalar kernel's initial -inf thresholds fire the hook
            # after the first record just to install real thresholds; with
            # step_l2_accesses >= 1 (enforced by eligibility) anything that
            # first fire could do — at most ending a step when record 0 is
            # an L2 access and the step budget is 1 — is reproduced by the
            # ordinary end-of-miss-row threshold check, so the post-fire
            # state is installed directly: the l2 threshold is the first
            # boundary and no cycle threshold is armed.
            hook_l2[i] = next_boundary[i]
            if collect_logs:
                step_logs[i] = []
                log_step(i, 0, 0.0)

    for i, lane in enumerate(lanes):
        if lane.kind == "arm":
            apply_arm(i, lane.arm)  # type: ignore[arg-type]

    # repro: mirror[lane-bandit-step]
    def fire_hook(i: int, retire_i: float, instructions: int) -> None:
        """Per-lane transcription of run_bandit_prefetch's bandit_hook."""
        # repro: mirror[lane-array-bandit-step] begin
        bandit = bandits[i]
        if pending[i] != applied[i] and retire_i >= bandit.selection_ready_cycle:
            apply_arm(i, pending[i])
            applied[i] = pending[i]
        if l2da >= next_boundary[i]:
            next_boundary[i] = l2da + step_accesses
            bandit.end_step(PerformanceCounters(instructions, retire_i))
            pending[i] = bandit.begin_step(retire_i)
            arm_traces[i].append((retire_i, pending[i]))
            if collect_logs:
                log_step(i, instructions, retire_i)
        hook_l2[i] = next_boundary[i]
        hook_cyc[i] = (
            bandit.selection_ready_cycle
            if pending[i] != applied[i] else _INF
        )
        # repro: mirror[lane-array-bandit-step] end

    # repro: mirror[lane-fill-llc]
    def fill_llc(i: int, block: int, dirty: bool) -> None:
        """Per-lane transcription of the scalar kernel's fill_llc closure."""
        # repro: mirror[lane-array-fill-llc] begin
        cache_set = llc_sets[i][block % llc_num_sets]
        existing = cache_set.pop(block, None)
        if existing is not None:
            cache_set[block] = existing or dirty
            return
        if len(cache_set) >= llc_ways:
            for victim_block in cache_set:
                break
            victim_dirty = cache_set.pop(victim_block)
            cache_set[block] = dirty
            if victim_dirty:
                writebacks[i] += 1
                dram_free[i] += dram_line_cost
        else:
            cache_set[block] = dirty
        # repro: mirror[lane-array-fill-llc] end

    # repro: mirror[lane-fill-l2]
    def fill_l2(i: int, block: int, line: int) -> None:
        """Per-lane transcription of the scalar kernel's fill_l2 closure.

        ``line`` is the packed incoming flags (bit0 prefetched, bit2
        dirty); an existing line only absorbs the dirty bit, as the
        object path's fill does.
        """
        # repro: mirror[lane-array-fill-l2] begin
        cache_set = l2_sets[i][block % l2_num_sets]
        existing = cache_set.pop(block, None)
        if existing is not None:
            cache_set[block] = existing | (line & 4)
            return
        if len(cache_set) >= l2_ways:
            for victim_block in cache_set:
                break
            victim = cache_set.pop(victim_block)
            if victim & 1 and not victim & 2:
                pf_wrong[i] += 1
            cache_set[block] = line
            if victim & 4:
                fill_llc(i, victim_block, True)
        else:
            cache_set[block] = line
        # repro: mirror[lane-array-fill-l2] end

    def drain_mshr(i: int, cycle_i: float) -> None:
        """MSHR drain for one lane: complete every fill now ready.

        The clean-fill ``fill_l2``/``fill_llc`` bodies are inlined — this
        is the hot fill path (roughly one fill per lane per miss row).
        """
        # repro: mirror[lane-array-drain] begin
        heap = heaps[i]
        inflight_i = inflight[i]
        l2_sets_i = l2_sets[i]
        llc_sets_i = llc_sets[i]
        while heap and heap[0][0] <= cycle_i:
            fill_block = heappop(heap)[1]
            entry = inflight_i.pop(fill_block, None)
            if entry is None:
                continue  # superseded entry
            if entry < 0:
                ipf[i] -= 1
                line = 1
            else:
                line = 0
            cache_set = l2_sets_i[fill_block % l2_num_sets]
            existing = cache_set.pop(fill_block, None)
            if existing is not None:
                cache_set[fill_block] = existing
            elif len(cache_set) >= l2_ways:
                for victim_block in cache_set:
                    break
                victim = cache_set.pop(victim_block)
                if victim & 1 and not victim & 2:
                    pf_wrong[i] += 1
                cache_set[fill_block] = line
                if victim & 4:
                    fill_llc(i, victim_block, True)
            else:
                cache_set[fill_block] = line
            cache_set = llc_sets_i[fill_block % llc_num_sets]
            existing = cache_set.pop(fill_block, None)
            if existing is not None:
                cache_set[fill_block] = existing
            elif len(cache_set) >= llc_ways:
                for victim_block in cache_set:
                    break
                victim_dirty = cache_set.pop(victim_block)
                cache_set[fill_block] = False
                if victim_dirty:
                    writebacks[i] += 1
                    dram_free[i] += dram_line_cost
            else:
                cache_set[fill_block] = False
        nfr[i] = heap[0][0] if heap else _INF
        # repro: mirror[lane-array-drain] end

    # ---- per-lane core clocks as (N,) float64 columns; rlog[t + 1] is the
    # retire-time column after row t, and row 0 is a permanent zero row so
    # the no-anchor floor gathers 0.0 and every row takes the same maximum ----
    # repro: dtype[retire: float64]
    # repro: dtype[dispatch: float64]
    # repro: dtype[llr: float64]
    # repro: dtype[rlog: float64]
    # Packed L2 line flags: bit0 prefetched, bit1 used, bit2 dirty.
    # repro: dtype[line: int bits<=3]
    # repro: dtype[victim: int bits<=3]
    # repro: dtype[l2_line: int bits<=3]
    retire = np.zeros(num_lanes)
    dispatch = np.zeros(num_lanes)
    llr = np.zeros(num_lanes)  # last_load_ready
    rlog = np.zeros((total + 1, num_lanes))

    dispatch_cost = pre["dispatch_cost"]
    maximum = np.maximum
    num_blocks = len(floor_blocks)
    for b in range(num_blocks):
        blk_s = floor_blocks[b]
        blk_e = floor_blocks[b + 1] if b + 1 < num_blocks else total
        # Every anchor in the block precedes blk_s (the pre-pass block
        # builder guarantees it), so the gathered rlog rows are final and
        # the whole block's retire floors cost two vector ops.
        floors = rlog[anchor_gidx[blk_s:blk_e]]
        floors += boost_arr[blk_s:blk_e, None]
        for t in range(blk_s, blk_e):
            gap_d = gap_dispatch[t]
            if gap_d:
                retire += gap_retire[t]
                dispatch += gap_d
            dispatch += dispatch_cost
            maximum(dispatch, floors[t - blk_s], out=dispatch)

            rflags = flags_l[t]
            is_write = rflags & 1
            if hit[t]:
                if is_write:
                    retire += commit_cost
                else:
                    if rflags & 2:  # FLAG_DEPENDENT
                        cycle = maximum(dispatch, llr)
                    else:
                        cycle = dispatch
                    ready = cycle + l1_latency
                    llr = ready
                    retire += commit_cost
                    maximum(retire, ready, out=retire)
                rlog[t + 1] = retire
                if cp_stride and ((t + 1) % cp_stride == 0 or t + 1 == total):
                    _lane_checkpoint(
                        checkpoint_logs, t, idx_l[t], retire, l2da
                    )
                continue

            # L1 miss on every lane: per-lane memory-side transcription.
            if not is_write and rflags & 2:  # FLAG_DEPENDENT
                cycle = maximum(dispatch, llr)
            else:
                cycle = dispatch
            block = blocks[t]
            bs2 = block % l2_num_sets
            bsl = block % llc_num_sets
            cycle_l = cycle.tolist()
            retire_l = retire.tolist()
            ready_l = cycle_l  # overwritten per lane below (loads only)
            if not is_write:
                ready_l = [0.0] * num_lanes
            victim_block_t = l1_victim[t]
            victim_wb = victim_block_t >= 0 and l1_victim_dirty[t]
            nl_cand = block + 1
            st_d_rows = [grp[t] for grp in st_stride_l]
            sm_d_rows = [grp[t] for grp in sm_dir_l]
            st_hit_rows = [grp[t] for grp in st_ok]
            sm_hit_rows = [grp[t] for grp in sm_ok]
            cand_memo: Dict[Tuple[int, bool, int, int], List[int]] = {}
            # Every lane misses together: one shared demand-access bump.
            # Nothing between here and the end-of-row hook check reads it
            # except fire_hook, which only runs there.
            l2da += 1
            if bandit_lanes:
                # Deferred cycle-threshold hook: a selection that came
                # ready by the end of the previous record only swaps the
                # degree registers, which are first read below — l2
                # accesses cannot cross a step boundary on hit rows, so
                # applying the pending arm is the fire's only observable
                # effect.  The check uses retire as of the end of row t-1
                # (rlog row t): the scalar hook never sees this row's
                # ROB-gap retire increment.
                prev_retire_l = rlog[t].tolist()
                for i in bandit_lanes:
                    if prev_retire_l[i] >= hook_cyc[i]:
                        apply_arm(i, pending[i])
                        applied[i] = pending[i]
                        hook_cyc[i] = _INF
            # repro: mirror[lane-demand-path] begin
            # repro: mirror[lane-array-demand-path] begin
            for i in range(num_lanes):
                cycle_i = cycle_l[i]
                if nfr[i] <= cycle_i:
                    # Deferred MSHR drain: fills that came ready during the
                    # hit rows since this lane's last miss are unobservable
                    # until this probe, and the ready-heap preserves their
                    # completion order, so draining them here is exact.
                    drain_mshr(i, cycle_i)
                l2_cycle = cycle_i + l1_latency
                l2_sets_i = l2_sets[i]
                llc_sets_i = llc_sets[i]
                l2_set = l2_sets_i[bs2]
                l2_line = l2_set.pop(block, None)
                inflight_i = inflight[i]
                if l2_line is not None:
                    l2dh[i] += 1
                    if l2_line & 1:
                        pf_timely[i] += 1
                        l2_set[block] = (l2_line | 2) & ~1
                    else:
                        l2_set[block] = l2_line | 2
                    ready_i = l2_cycle + l2_latency
                else:
                    entry = inflight_i.get(block)
                    if entry is not None:
                        if entry < 0:
                            pf_late[i] += 1
                            entry = -entry
                            inflight_i[block] = entry
                            ipf[i] -= 1
                        l2_ready = l2_cycle + l2_latency
                        ready_i = entry if entry > l2_ready else l2_ready
                    else:
                        llc_cycle = l2_cycle + l2_latency
                        llcda[i] += 1
                        llc_set = llc_sets_i[bsl]
                        llc_line = llc_set.pop(block, None)
                        if llc_line is not None:
                            llc_set[block] = llc_line
                            llcdh[i] += 1
                            ready_i = llc_cycle + llc_latency
                            # fill_l2(block, 0): the block just missed
                            # this set, so no existing-line check.
                            if len(l2_set) >= l2_ways:
                                for victim_block in l2_set:
                                    break
                                victim = l2_set.pop(victim_block)
                                if victim & 1 and not victim & 2:
                                    pf_wrong[i] += 1
                                l2_set[block] = 0
                                if victim & 4:
                                    fill_llc(i, victim_block, True)
                            else:
                                l2_set[block] = 0
                        else:
                            request = llc_cycle + llc_latency
                            channel_free = dram_free[i]
                            start = (request if request > channel_free
                                     else channel_free)
                            dram_free[i] = start + dram_line_cost
                            ready_i = start + dram_latency
                            dram_fills[i] += 1
                            if len(inflight_i) < mshr_capacity:
                                inflight_i[block] = ready_i
                                heappush(heaps[i], (ready_i, block))
                                if ready_i < nfr[i]:
                                    nfr[i] = ready_i
                            else:
                                # MSHR pressure: untracked immediate fill.
                                fill_l2(i, block, 0)
                                fill_llc(i, block, False)
                # L1 fill is shared state (pre-pass); only a dirty victim's
                # L2 writeback diverges per lane.
                if victim_wb:
                    fill_l2(i, victim_block_t, 4)
                arm_t = lane_arm[i]
                if arm_t is not None:
                    nl_on, st_d, sm_d = arm_t
                    g = geo_l[i]
                    if not st_hit_rows[g]:
                        st_d = 0
                    if not sm_hit_rows[g]:
                        sm_d = 0
                    if nl_on or st_d or sm_d:
                        key = (g, nl_on, st_d, sm_d)
                        candidates = cand_memo.get(key)
                        if candidates is None:
                            # EnsemblePrefetcher.observe's emission order:
                            # next-line, then deduped stride, then stream.
                            nl = [nl_cand] if nl_on else []
                            st = ([block + st_d_rows[g] * k
                                   for k in range(1, st_d + 1)]
                                  if st_d else [])
                            sm = ([block + sm_d_rows[g] * k
                                   for k in range(1, sm_d + 1)]
                                  if sm_d else [])
                            if not st and not sm:
                                candidates = nl
                            else:
                                candidates = list(nl)
                                seen = set(nl)
                                for cand in st:
                                    if cand not in seen:
                                        seen.add(cand)
                                        candidates.append(cand)
                                for cand in sm:
                                    if cand not in seen:
                                        seen.add(cand)
                                        candidates.append(cand)
                            cand_memo[key] = candidates
                        for cand in candidates:
                            if cand < 0 or cand in l2_sets_i[
                                cand % l2_num_sets
                            ] or cand in inflight_i:
                                continue
                            if (ipf[i] >= max_inflight_prefetches
                                    or len(inflight_i) >= mshr_capacity):
                                pf_dropped[i] += 1
                                continue
                            pf_issued[i] += 1
                            if cand in llc_sets_i[cand % llc_num_sets]:
                                pf_ready = cycle_i + l2_latency + llc_latency
                            else:
                                request = cycle_i + l2_latency + llc_latency
                                channel_free = dram_free[i]
                                start = (request if request > channel_free
                                         else channel_free)
                                dram_free[i] = start + dram_line_cost
                                pf_ready = start + dram_latency
                            inflight_i[cand] = -pf_ready
                            heappush(heaps[i], (pf_ready, cand))
                            if pf_ready < nfr[i]:
                                nfr[i] = pf_ready
                            ipf[i] += 1
                # On write rows ready_l aliases cycle_l; cycle_l[i] was
                # already consumed, so the stray write is harmless.
                ready_l[i] = ready_i
            # repro: mirror[lane-array-demand-path] end
            # repro: mirror[lane-demand-path] end
            if is_write:
                retire += commit_cost
            else:
                new_retire = [0.0] * num_lanes
                for i in range(num_lanes):
                    next_retire = retire_l[i] + commit_cost
                    ready_i = ready_l[i]
                    new_retire[i] = (ready_i if ready_i > next_retire
                                     else next_retire)
                retire = np.array(new_retire, dtype=np.float64)
                llr = np.array(ready_l, dtype=np.float64)
            rlog[t + 1] = retire

            # End-of-record hook thresholds, bandit lanes only: the retire
            # value is recomputed with the same scalar add the vector path
            # performed, so the comparison is bit-exact.
            for i in bandit_lanes:
                retire_i = (retire_l[i] + commit_cost if is_write
                            else new_retire[i])
                if l2da >= hook_l2[i] or retire_i >= hook_cyc[i]:
                    fire_hook(i, retire_i, idx_l[t])

            if cp_stride and ((t + 1) % cp_stride == 0 or t + 1 == total):
                _lane_checkpoint(checkpoint_logs, t, idx_l[t], retire, l2da)

    # ------------------------------------------------------------- episode end
    total_instructions = idx_l[-1] if total else 0
    retire_final = retire.tolist()

    for i in range(num_lanes):
        if is_bandit[i]:
            # Trailing partial step (run_bandit_prefetch's flush).
            bandits[i].flush_step(
                PerformanceCounters(total_instructions, retire_final[i])
            )
            if collect_logs:
                log_step(i, total_instructions, retire_final[i])
        # hierarchy.finalize(): flush in-flight fills (heap order at +inf),
        # then count never-used prefetched L2 lines as wrong.
        heap = heaps[i]
        inflight_i = inflight[i]
        while heap:
            fill_block = heappop(heap)[1]
            entry = inflight_i.pop(fill_block, None)
            if entry is None:
                continue
            if entry < 0:
                ipf[i] -= 1
                fill_l2(i, fill_block, 1)
            else:
                fill_l2(i, fill_block, 0)
            fill_llc(i, fill_block, False)
        for cache_set in l2_sets[i]:
            for line in cache_set.values():
                if line & 1 and not line & 2:
                    pf_wrong[i] += 1

    results = _assemble_results(
        lanes, pre["loads"], pre["stores"], total, total_instructions,
        retire_final, l2da, l2dh, llcda, llcdh, dram_fills, writebacks,
        pf_issued, pf_timely, pf_late, pf_wrong, pf_dropped,
        algorithms, arm_traces,
    )
    return results, checkpoint_logs, step_logs


# ===================================================== array-resident kernel


class _BanditLanes:
    """Bandit state for a lane batch's ``"bandit"`` lanes (array kernel).

    Owns the real ``MicroArmedBandit``/DUCB objects per lane plus the hook
    thresholds as ``(N,)`` float64 columns (``inf`` on non-bandit lanes),
    so the kernel's end-of-row hook check is a single vector compare.
    """

    def __init__(
        self,
        lanes: Sequence[LaneSpec],
        params: "PrefetchBanditParams",
        apply_arm: Callable[[int, int], None],
        collect_logs: bool,
    ) -> None:
        num_lanes = len(lanes)
        self.step_accesses = params.step_l2_accesses
        self.apply_arm = apply_arm
        self.collect_logs = collect_logs
        self.lane_indices = [
            i for i, lane in enumerate(lanes) if lane.kind == "bandit"
        ]
        self.bandits: List[Optional[MicroArmedBandit]] = [None] * num_lanes
        self.algorithms: List[object] = [None] * num_lanes
        self.pending = [0] * num_lanes
        self.applied = [0] * num_lanes
        self.next_boundary = [0] * num_lanes
        self.hook_l2 = np.full(num_lanes, _INF)
        self.hook_cyc = np.full(num_lanes, _INF)
        self.arm_traces: List[List[Tuple[float, int]]] = [
            [] for _ in range(num_lanes)
        ]
        self.step_logs: Dict[int, List[StepRecord]] = {}
        if not self.lane_indices:
            return
        from repro.experiments.configs import prefetch_bandit_algorithm

        for i in self.lane_indices:
            algorithm = prefetch_bandit_algorithm(
                seed=lanes[i].seed, params=params
            )
            bandit = MicroArmedBandit(
                algorithm,
                selection_latency_cycles=params.selection_latency_cycles,
            )
            # Mirrors run_bandit_prefetch's episode setup on a fresh core.
            bandit.reset_counters(PerformanceCounters(0, 0.0))
            arm = bandit.begin_step(0.0)
            self.pending[i] = arm
            self.applied[i] = arm
            apply_arm(i, arm)
            self.arm_traces[i] = [(0.0, arm)]
            self.next_boundary[i] = self.step_accesses
            self.algorithms[i] = algorithm
            self.bandits[i] = bandit
            # The scalar kernel's initial -inf thresholds fire the hook
            # after the first record just to install real thresholds; with
            # step_l2_accesses >= 1 (enforced by eligibility) the
            # post-fire state is installed directly: the l2 threshold is
            # the first boundary and no cycle threshold is armed.
            self.hook_l2[i] = self.next_boundary[i]
            if collect_logs:
                self.step_logs[i] = []
                self.log_step(i, 0, 0.0, 0)

    def log_step(
        self, i: int, instructions: int, retire_i: float, l2da: int
    ) -> None:
        log = self.step_logs[i]
        algorithm = self.algorithms[i]
        log.append(StepRecord(
            step=len(log),
            instructions=instructions,
            cycles=retire_i,
            ipc=instructions / retire_i if retire_i else 0.0,
            l2_demand_accesses=l2da,
            arm=self.pending[i],
            reward_estimates=tuple(algorithm.reward_estimates()),
            selection_counts=tuple(algorithm.selection_counts()),
        ))

    # repro: mirror[lane-array-bandit-step]
    def fire(
        self, i: int, retire_i: float, instructions: int, l2da: int
    ) -> None:
        """Per-lane transcription of run_bandit_prefetch's bandit_hook."""
        bandit = self.bandits[i]
        if (
            self.pending[i] != self.applied[i]
            and retire_i >= bandit.selection_ready_cycle
        ):
            self.apply_arm(i, self.pending[i])
            self.applied[i] = self.pending[i]
        if l2da >= self.next_boundary[i]:
            self.next_boundary[i] = l2da + self.step_accesses
            bandit.end_step(PerformanceCounters(instructions, retire_i))
            self.pending[i] = bandit.begin_step(retire_i)
            self.arm_traces[i].append((retire_i, self.pending[i]))
            if self.collect_logs:
                self.log_step(i, instructions, retire_i, l2da)
        self.hook_l2[i] = self.next_boundary[i]
        self.hook_cyc[i] = (
            bandit.selection_ready_cycle
            if self.pending[i] != self.applied[i] else _INF
        )

    # repro: mirror-exempt[deferred arm swap: dict-path twin lives inside the lane-bandit-step mirror's fire hook]
    def apply_pending(self, i: int) -> None:
        """Deferred cycle-threshold fire: only the arm swap is observable."""
        self.apply_arm(i, self.pending[i])
        self.applied[i] = self.pending[i]
        self.hook_cyc[i] = _INF

    def flush(
        self, i: int, instructions: int, retire_i: float, l2da: int
    ) -> None:
        """Trailing partial step (run_bandit_prefetch's flush)."""
        self.bandits[i].flush_step(
            PerformanceCounters(instructions, retire_i)
        )
        if self.collect_logs:
            self.log_step(i, instructions, retire_i, l2da)


_ARANGE_CACHE: Dict[int, np.ndarray] = {}


# repro: unique-index[memoized np.arange: 0..n-1, duplicate-free]
# repro: mirror-exempt[read-only arange memo; holds no kernel state]
def _arange(n: int) -> np.ndarray:
    """A cached ``np.arange(n)`` (the kernel re-uses a few small sizes).

    Callers must treat the returned array as read-only.
    """
    cached = _ARANGE_CACHE.get(n)
    if cached is None:
        cached = np.arange(n)
        _ARANGE_CACHE[n] = cached
    return cached


# repro: mirror-exempt[shared set-probe/insert engine of the tagged _fill_llc_rows/_fill_l2_rows transcriptions; a mirror pairs exactly two sides]
def _fill_rows(
    flat: np.ndarray,
    cflat: np.ndarray,
    sflat: np.ndarray,
    keys: np.ndarray,
    blocks: np.ndarray,
    flags: np.ndarray,
    ctr: int,
) -> np.ndarray:
    """Generic cache fill over flattened ``(lane row, set index)`` keys.

    Mirrors the dict kernels' fill closures under the stamp-LRU layout:
    way positions are stable and recency lives in the ``sflat``
    last-touch stamps, so a hit touch and an insert are single-element
    scatters instead of O(ways) MRU shifts. An existing line absorbs
    only the incoming dirty bit; an absent line lands at way ``count``
    (sets fill left to right and lines are never invalidated) or
    replaces the argmin-stamp way of a full set — the least recently
    touched line, exactly the dict kernels' move-to-end victim, because
    stamps are assigned from one monotone counter per touch event.
    ``flat``/``cflat``/``sflat`` are the ``(N * sets, ...)`` views of a
    level's line, count, and stamp arrays and ``keys`` is ``row *
    num_sets + set``. ``keys`` must be duplicate-free (each call
    touches a lane's set at most once), which also keeps a set's
    occupied-way stamps pairwise distinct under the shared per-call
    ``ctr``. Returns the packed victim per key (``-1`` = none).
    """
    k = keys.shape[0]
    set_rows = flat[keys]
    match = (set_rows >> 3) == blocks[:, None]
    if not match.any():
        count = cflat[keys]
        full = count == flat.shape[1]
        if full.all():
            # Thrash steady state: every set is full — victim selection
            # is one argmin and the counts never move.
            spos = np.argmin(sflat[keys], axis=1)
            victims = set_rows[_arange(k), spos]
        else:
            spos = np.where(full, np.argmin(sflat[keys], axis=1), count)
            victims = np.where(full, set_rows[_arange(k), spos], -1)
            cflat[keys] = count + ~full
        flat[keys, spos] = blocks * 8 + flags
        sflat[keys, spos] = ctr
        return victims
    found = match.any(axis=1)
    victims = np.full(k, -1, dtype=np.int64)
    pos = match.argmax(axis=1)
    h = found.nonzero()[0]
    hp = pos[h]
    hk = keys[h]
    flat[hk, hp] = set_rows[h, hp] | (flags[h] & 4)
    sflat[hk, hp] = ctr
    m = (~found).nonzero()[0]
    if m.size:
        mk = keys[m]
        count = cflat[mk]
        full = count == flat.shape[1]
        spos = np.where(full, np.argmin(sflat[mk], axis=1), count)
        victims[m] = np.where(full, set_rows[m, spos], -1)
        flat[mk, spos] = blocks[m] * 8 + flags[m]
        sflat[mk, spos] = ctr
        if not full.all():
            cflat[mk] = count + ~full
    return victims


@dataclass
class _ArrayState:
    """Array-resident L2/LLC state plus the accounting columns the fill
    path touches (writebacks, wrong prefetches, DRAM channel timing)."""

    l2_data: np.ndarray  #: (N, l2 sets, l2 ways) packed lines, -1 = empty
    l2_cnt: np.ndarray  #: (N, l2 sets) occupied-way counts
    l2_stamp: np.ndarray  #: (N, l2 sets, l2 ways) last-touch stamps
    llc_data: np.ndarray  #: (N, llc sets, llc ways) packed lines
    llc_cnt: np.ndarray  #: (N, llc sets) occupied-way counts
    llc_stamp: np.ndarray  #: (N, llc sets, llc ways) last-touch stamps
    #: Flattened (N * sets, ...) views of the arrays above — the fill
    #: path indexes them with one flat key per (lane, set) pair.
    l2_flat: np.ndarray
    l2_cnt_flat: np.ndarray
    l2_stamp_flat: np.ndarray
    llc_flat: np.ndarray
    llc_cnt_flat: np.ndarray
    llc_stamp_flat: np.ndarray
    l2_num_sets: int
    llc_num_sets: int
    dram_line_cost: float
    dram_free: np.ndarray  #: (N,) DRAM channel-free cycle
    ipf: np.ndarray  #: (N,) in-flight prefetch count
    writebacks: np.ndarray  #: (N,) dirty-victim writeback count
    pf_wrong: np.ndarray  #: (N,) prefetched-but-never-used eviction count
    #: Monotone touch counter: every vectorized touch event (fill wave,
    #: demand hit batch) stamps the ways it touches with a fresh value,
    #: so argmin(stamp) over a full set is the dict kernels' LRU victim.
    ctr: int = 0


# repro: mirror[lane-array-fill-llc]
def _fill_llc_rows(
    st: _ArrayState,
    rows: np.ndarray,
    blocks: np.ndarray,
    flags: np.ndarray,
    keys: Optional[np.ndarray] = None,
) -> None:
    """Vectorized transcription of the scalar kernel's fill_llc closure.

    ``keys`` is the optional precomputed flat ``row * sets + set`` index
    (the drain already has it for collision checks).
    """
    if keys is None:
        keys = rows * np.int64(st.llc_num_sets) + blocks % st.llc_num_sets
    st.ctr += 1
    victims = _fill_rows(
        st.llc_flat, st.llc_cnt_flat, st.llc_stamp_flat, keys, blocks,
        flags, st.ctr,
    )
    # -1 & 4 is truthy in two's complement, so empty ways need the >= 0
    # guard before the dirty-bit test.
    dirty = (victims >= 0) & ((victims & 4) != 0)
    if dirty.any():
        # Unbuffered adds: drain waves may carry one lane twice (distinct
        # sets), and fancy-index += would drop the duplicate. Repeated
        # adds of the same constant are order-independent, so this stays
        # bit-identical to the dict kernel's sequential accounting.
        wrows = rows[dirty]
        np.add.at(st.writebacks, wrows, 1)
        np.add.at(st.dram_free, wrows, st.dram_line_cost)


# repro: mirror[lane-array-fill-l2]
def _fill_l2_rows(
    st: _ArrayState, rows: np.ndarray, blocks: np.ndarray, flags: np.ndarray
) -> None:
    """Vectorized transcription of the scalar kernel's fill_l2 closure.

    ``flags`` is the packed incoming line (bit0 prefetched, bit2 dirty);
    an existing line only absorbs the dirty bit. A victim that was
    prefetched but never used counts as pf_wrong; a dirty victim cascades
    into the LLC.
    """
    keys = rows * np.int64(st.l2_num_sets) + blocks % st.l2_num_sets
    st.ctr += 1
    victims = _fill_rows(
        st.l2_flat, st.l2_cnt_flat, st.l2_stamp_flat, keys, blocks,
        flags, st.ctr,
    )
    # (victim & 3) == 1 means prefetched-and-never-used; -1 (empty) gives
    # 3 and can never hit, so no occupancy guard is needed here.
    wrong = (victims & 3) == 1
    if wrong.any():
        # ``rows`` is caller-supplied: today every caller passes one row
        # per lane, but the unbuffered add keeps the accounting correct
        # (and bit-identical — integer adds commute) if a wave ever
        # carries a lane twice, matching _fill_llc_rows.
        np.add.at(st.pf_wrong, rows[wrong], 1)
    dirty = (victims >= 0) & ((victims & 4) != 0)
    if dirty.any():
        drows = rows[dirty]
        _fill_llc_rows(
            st, drows, victims[dirty] >> 3,
            np.full(drows.shape[0], 4, dtype=np.int64),
        )


# repro: mirror-exempt[one-block specialization of the tagged _fill_l2_rows; exercised by the sanitizer on every L1 dirty victim]
def _fill_l2_wb(st: _ArrayState, rows_all: np.ndarray, block: int) -> None:
    """L1 dirty-victim writeback into every lane's L2 at once.

    Same transcription as :func:`_fill_l2_rows`, specialized for the one
    call shape the kernel issues per record: a single shared block (one
    L2 set) across all N lanes with a dirty incoming line. The probes
    and scatters run on basic column views of the (N, sets, ways)
    arrays, so nothing here pays flat fancy-key traffic.
    """
    s = block % st.l2_num_sets
    view = st.l2_data[:, s]
    sview = st.l2_stamp[:, s]
    st.ctr += 1
    ctr = st.ctr
    match = (view >> 3) == block
    packed = block * 8 + 4
    if not match.any():
        cview = st.l2_cnt[:, s]
        full = cview == view.shape[1]
        if full.all():
            spos = np.argmin(sview, axis=1)
            victims = view[rows_all, spos]
        else:
            spos = np.where(full, np.argmin(sview, axis=1), cview)
            victims = np.where(full, view[rows_all, spos], -1)
            cview += ~full
        view[rows_all, spos] = packed
        sview[rows_all, spos] = ctr
    else:
        found = match.any(axis=1)
        victims = np.full(view.shape[0], -1, dtype=np.int64)
        pos = match.argmax(axis=1)
        h = found.nonzero()[0]
        hp = pos[h]
        # An existing line only absorbs the incoming dirty bit.
        view[h, hp] |= 4
        sview[h, hp] = ctr
        m = (~found).nonzero()[0]
        if m.size:
            count = st.l2_cnt[m, s]
            full = count == view.shape[1]
            spos = np.where(full, np.argmin(sview[m], axis=1), count)
            victims[m] = np.where(full, view[m, spos], -1)
            view[m, spos] = packed
            sview[m, spos] = ctr
            if not full.all():
                st.l2_cnt[m, s] = count + ~full
    wrong = (victims & 3) == 1
    if wrong.any():
        st.pf_wrong[wrong] += 1
    dirty = (victims >= 0) & ((victims & 4) != 0)
    if dirty.any():
        drows = dirty.nonzero()[0]
        _fill_llc_rows(
            st, drows, victims[dirty] >> 3,
            np.full(drows.shape[0], 4, dtype=np.int64),
        )


#: Block-id sentinel for lexicographic tie-breaks (no real block reaches it).
_I64_MAX = np.iinfo(np.int64).max


@dataclass
class _FillQueue:
    """Per-lane MSHR fill queues as hole-tolerant append columns.

    Row ``i``'s slots ``[0, tail[i])`` hold its in-flight fills plus the
    holes completed fills leave behind; holes carry the ``(+inf, -1,
    False)`` pad triple, so due-scans, membership probes, and
    min-reductions skip them for free. Removal is therefore a masked
    scatter (no per-drain compaction), and slots are reclaimed wholesale
    by an amortized :meth:`_compact` only when an insert would overrun
    capacity. The drain orders extracted fills by lexicographic
    ``(ready, block)`` *value* — exactly the dict kernel's heap order —
    so storage order never matters. ``length`` counts real entries (the
    MSHR occupancy check), ``nfr`` caches each row's minimum ready cycle
    (``+inf`` when empty), and ``hi == max(tail)`` bounds scans.

    ``tab`` counts live entries per ``block & 255`` bucket, giving the
    kernel's membership probe exact negatives from one ``(N, C)`` gather;
    only bucket collisions fall back to scanning queue slots, so the
    probe's byte traffic no longer scales with MSHR capacity.
    """

    ready: np.ndarray  #: (N, mshr) fill-ready cycles, +inf padded
    block: np.ndarray  #: (N, mshr) block ids, -1 padded
    pf: np.ndarray  #: (N, mshr) prefetch-fill flags
    length: np.ndarray  #: (N,) live entry counts (holes excluded)
    tail: np.ndarray  #: (N,) append cursors (holes included)
    nfr: np.ndarray  #: (N,) next fill-ready cycle (min over the row)
    tab: np.ndarray  #: (N, 256) bucket occupancy counts (block & 255)
    capacity: int = 0
    hi: int = 0

    @classmethod
    def create(cls, num_lanes: int, capacity: int) -> "_FillQueue":
        return cls(
            ready=np.full((num_lanes, capacity), _INF),
            block=np.full((num_lanes, capacity), -1, dtype=np.int64),
            pf=np.zeros((num_lanes, capacity), dtype=bool),
            length=np.zeros(num_lanes, dtype=np.int64),
            tail=np.zeros(num_lanes, dtype=np.int64),
            nfr=np.full(num_lanes, _INF),
            tab=np.zeros((num_lanes, 256), dtype=np.int16),
            capacity=capacity,
        )

    # repro: mirror-exempt[array-path MSHR storage; dict twin is the per-lane heap inside the lane-demand-path mirror]
    def _compact(self) -> None:
        """Squeeze holes out of every row (stable), resetting ``tail``.

        A stable argsort on the hole mask moves each row's live entries
        to the front in their current relative order and parks the pad
        triples behind them, so no pad restore pass is needed.
        """
        hi = self.hi
        holes = self.block[:, :hi] == -1
        order = np.argsort(holes, axis=1, kind="stable")
        lidx = _arange(holes.shape[0])[:, None]
        self.ready[:, :hi] = self.ready[lidx, order]
        self.block[:, :hi] = self.block[lidx, order]
        self.pf[:, :hi] = self.pf[lidx, order]
        self.tail[:] = self.length
        self.hi = int(self.length.max())

    # repro: mirror-exempt[array-path MSHR storage; dict twin is the per-lane heap inside the lane-demand-path mirror]
    def insert(
        self,
        rows: np.ndarray,
        ready_vals: np.ndarray,
        blocks: np.ndarray | int,
        is_pf: bool,
    ) -> None:
        """Insert one in-flight fill per row (capacity checked by caller).

        ``blocks`` may be a scalar block id (demand fills of one record
        share it; the scatter broadcasts).
        """
        if self.hi >= self.capacity:
            self._compact()
        pos = self.tail[rows]
        self.ready[rows, pos] = ready_vals
        self.block[rows, pos] = blocks
        if is_pf:
            self.pf[rows, pos] = True
        # rows are unique (callers pass at most one fill per lane), so
        # (row, bucket) pairs are too: plain fancy += is safe here
        # (unlike the drain's removals).
        # repro: unique-index[callers pass at most one fill per lane]
        self.tab[rows, blocks & 255] += 1
        self.tail[rows] = pos + 1
        self.length[rows] += 1  # repro: unique-index[one fill per lane]
        # repro: unique-index[one fill per lane]
        self.nfr[rows] = np.minimum(self.nfr[rows], ready_vals)
        new_hi = int(pos.max()) + 1
        if new_hi > self.hi:
            self.hi = new_hi

    # repro: mirror-exempt[array-path MSHR storage; dict twin is the per-lane heap inside the lane-demand-path mirror]
    def insert_many(
        self,
        ready_mat: np.ndarray,
        block_mat: np.ndarray,
        ins: np.ndarray,
        cum: np.ndarray,
        add: np.ndarray,
    ) -> None:
        """Batch-insert the ``ins``-masked prefetch fills of one record.

        ``ins`` is ``(N, candidates)`` in per-lane candidate order.
        ``ready_mat`` and ``block_mat`` match it — or collapse to 1-D
        when the caller's values do not vary along the collapsed axis
        (a shared candidate row: ``block_mat`` of shape ``(candidates,)``;
        a per-lane ready cycle shared by every candidate: ``ready_mat``
        of shape ``(N,)``), which skips materializing broadcast views on
        the hot path. ``cum`` is the caller's inclusive running
        candidate count along each row (its budget cursor — on ``ins``
        positions ``cum - 1`` equals the insert's per-lane rank, since
        the budget cut keeps a prefix), and ``add`` is the caller's
        per-row insert count. The caller's drop budget guarantees
        ``length`` stays within capacity; ``tail`` may overrun first,
        which triggers an amortized compaction.
        """
        rows_idx, cand_idx = ins.nonzero()
        if not rows_idx.size:
            return
        if self.hi + int(add.max()) > self.capacity:
            self._compact()
        pos = self.tail[rows_idx] + cum[rows_idx, cand_idx] - 1
        blocks = (
            block_mat[cand_idx] if block_mat.ndim == 1
            else block_mat[rows_idx, cand_idx]
        )
        if ready_mat.ndim == 1:
            self.ready[rows_idx, pos] = ready_mat[rows_idx]
            row_min = np.where(add > 0, ready_mat, _INF)
        else:
            self.ready[rows_idx, pos] = ready_mat[rows_idx, cand_idx]
            row_min = np.where(ins, ready_mat, _INF).min(axis=1)
        self.block[rows_idx, pos] = blocks
        self.pf[rows_idx, pos] = True
        # One lane may insert bucket-colliding blocks in one record, so
        # the count update must not collapse duplicate indices.
        np.add.at(self.tab, (rows_idx, blocks & 255), 1)
        self.tail += add
        self.length += add
        np.minimum(self.nfr, row_min, out=self.nfr)
        new_hi = int(self.tail.max())
        if new_hi > self.hi:
            self.hi = new_hi

    # repro: mirror-exempt[array-path MSHR storage; dict twin is the per-lane heap inside the lane-demand-path mirror]
    def remove_due(
        self, cycle: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Extract every fill ready by ``cycle`` (all fills when None).

        Returns ``(rows, readys, blocks, pf flags)`` of the removed
        entries, unordered. Removed slots become holes (pads restored by
        scatter); ``length``/``nfr`` are refreshed in place, and the
        append cursors rewind to zero whenever the queue empties out
        (the common thrash-path shape), keeping scans narrow.
        """
        hi = self.hi
        if cycle is None:
            due = self.block[:, :hi] != -1
        else:
            # Hole slots carry +inf ready cycles, so they are never due.
            due = self.ready[:, :hi] <= cycle[:, None]
        rows_idx, slot_idx = due.nonzero()
        if not rows_idx.size:
            return rows_idx, np.empty(0), rows_idx, np.empty(0, dtype=bool)
        readys = self.ready[rows_idx, slot_idx]
        blocks = self.block[rows_idx, slot_idx]
        pfs = self.pf[rows_idx, slot_idx]
        self.ready[rows_idx, slot_idx] = _INF
        self.block[rows_idx, slot_idx] = -1
        self.pf[rows_idx, slot_idx] = False
        self.length -= np.bincount(rows_idx, minlength=self.length.shape[0])
        if not self.length.any():
            self.tab[:] = 0
            self.tail[:] = 0
            self.nfr[:] = _INF
            self.hi = 0
        else:
            np.add.at(self.tab, (rows_idx, blocks & 255), -1)
            self.nfr[:] = self.ready[:, :hi].min(axis=1)
        return rows_idx, readys, blocks, pfs


def _rank_within(keys: np.ndarray) -> np.ndarray:
    """Occurrence rank of each element among equal ``keys``, in array order."""
    n = keys.shape[0]
    sidx = np.argsort(keys, kind="stable")
    ksorted = keys[sidx]
    newgrp = np.empty(n, dtype=bool)
    newgrp[0] = True
    np.not_equal(ksorted[1:], ksorted[:-1], out=newgrp[1:])
    grp_start = np.maximum.accumulate(np.where(newgrp, _arange(n), 0))
    rank = np.empty(n, dtype=np.int64)
    rank[sidx] = _arange(n) - grp_start
    return rank


# repro: mirror[lane-array-drain]
def _drain_ready_fills(
    st: _ArrayState, fq: _FillQueue, cycle: Optional[np.ndarray]
) -> None:
    """Complete every in-flight fill that is ready by ``cycle``.

    One-shot transcription of the dict kernel's drain_mshr. A fill only
    touches its own (lane, set) line array and its accounting adds
    commute, so the completion order the dict kernel's heap imposes
    matters only *within* a (lane, set) pair. The drain therefore
    extracts every due fill at once and applies each cache level in
    occurrence-rank waves: fills are sorted by the heap's (ready, block)
    order, each wave carries at most one fill per (lane, set), and ranks
    replay the per-set order exactly. Dirty L2 victims spill into the
    LLC sequenced with the dict kernel's interleaving — the victim of
    fill k lands before fill k's own LLC line. ``cycle=None`` drains
    everything (hierarchy finalize).
    """
    rows_u, readys, blocks, pfs = fq.remove_due(cycle)
    k = rows_u.shape[0]
    if not k:
        return
    if pfs.any():
        st.ipf -= np.bincount(rows_u[pfs], minlength=st.ipf.shape[0])
    # Phase 1 — L2 fills. When no two fills share a (lane, L2 set), the
    # per-set order is vacuous and one unordered wave suffices (the
    # common case: a drain point rarely completes set-colliding fills
    # together); otherwise sort into heap order and replay rank waves.
    sets2 = blocks % st.l2_num_sets
    l2_keys = rows_u * np.int64(st.l2_num_sets) + sets2
    sk = np.sort(l2_keys)
    ordered = False
    if bool((sk[1:] == sk[:-1]).any()):
        order = np.lexsort((blocks, readys, rows_u))
        rows_u = rows_u[order]
        readys = readys[order]
        blocks = blocks[order]
        pfs = pfs[order]
        l2_keys = l2_keys[order]
        ordered = True
        l2_rank = _rank_within(l2_keys)
        victims = np.empty(k, dtype=np.int64)
        for r in range(int(l2_rank.max()) + 1):
            m = l2_rank == r
            st.ctr += 1
            victims[m] = _fill_rows(
                st.l2_flat, st.l2_cnt_flat, st.l2_stamp_flat, l2_keys[m],
                blocks[m], pfs[m].astype(np.int64), st.ctr,
            )
    else:
        st.ctr += 1
        victims = _fill_rows(
            st.l2_flat, st.l2_cnt_flat, st.l2_stamp_flat, l2_keys, blocks,
            pfs.astype(np.int64), st.ctr,
        )
    wrong = (victims & 3) == 1
    if wrong.any():
        st.pf_wrong += np.bincount(
            rows_u[wrong], minlength=st.pf_wrong.shape[0]
        )
    dirty = (victims >= 0) & ((victims & 4) != 0)
    have_dirty = bool(dirty.any())
    zeros_k = np.zeros(k, dtype=np.int64)
    # Phase 2 — LLC fills, with dirty L2 victims spilled in between. When
    # the fills and the spilled victims together touch each (lane, LLC
    # set) at most once, the heap's per-set order is again vacuous and
    # one unordered wave covers fills *and* victim writebacks (their
    # accounting adds commute); otherwise replay heap order (sorting
    # victims *after* the unordered L2 wave is sound — collision-free
    # victims are order-free).
    if have_dirty:
        crows = np.concatenate((rows_u, rows_u[dirty]))
        cblocks = np.concatenate((blocks, victims[dirty] >> 3))
        ckeys = crows * np.int64(st.llc_num_sets) + cblocks % st.llc_num_sets
        sl = np.sort(ckeys)
        if not bool((sl[1:] == sl[:-1]).any()):
            cflags = np.concatenate(
                (zeros_k, np.full(crows.shape[0] - k, 4, dtype=np.int64))
            )
            _fill_llc_rows(st, crows, cblocks, cflags, keys=ckeys)
            return
    else:
        llc_keys = rows_u * np.int64(st.llc_num_sets) + blocks % st.llc_num_sets
        sl = np.sort(llc_keys)
        if not bool((sl[1:] == sl[:-1]).any()):
            _fill_llc_rows(st, rows_u, blocks, zeros_k, keys=llc_keys)
            return
    if not ordered:
        order = np.lexsort((blocks, readys, rows_u))
        rows_u = rows_u[order]
        blocks = blocks[order]
        dirty = dirty[order]
        victims = victims[order]
    if have_dirty:
        # The dict kernel writes fill k's dirty victim to the LLC right
        # before fill k's own line: merge by interleave sequence keys
        # (victim of fill k → 2k, fill k itself → 2k+1).
        seq = _arange(k)
        lorder = np.argsort(
            np.concatenate((seq * 2 + 1, seq[dirty] * 2)), kind="stable"
        )
        lrows = np.concatenate((rows_u, rows_u[dirty]))[lorder]
        lblocks = np.concatenate((blocks, victims[dirty] >> 3))[lorder]
        lflags = np.concatenate(
            (zeros_k, np.full(int(dirty.sum()), 4, dtype=np.int64))
        )[lorder]
    else:
        lrows, lblocks, lflags = rows_u, blocks, zeros_k
    lkeys = lrows * np.int64(st.llc_num_sets) + lblocks % st.llc_num_sets
    llc_rank = _rank_within(lkeys)
    for r in range(int(llc_rank.max()) + 1):
        m = llc_rank == r
        _fill_llc_rows(st, lrows[m], lblocks[m], lflags[m], keys=lkeys[m])


def _lane_kernel_array(
    trace: CompiledTrace,
    lanes: List[LaneSpec],
    hierarchy_config: HierarchyConfig,
    core_config: CoreConfig,
    params: "PrefetchBanditParams",
    collect_logs: bool = False,
) -> Tuple[
    List["PrefetchRunResult"],
    List[List[StepRecord]],
    Dict[int, List[StepRecord]],
]:
    """Advance every lane through the trace in one fused pass (array path).

    The memory side lives in packed ``(N, sets, ways)`` line arrays plus
    an ``(N, mshr)`` sorted fill queue, so an L1-miss record updates all N
    lanes in a handful of masked array ops — no per-lane Python loop on
    the demand or prefetch-fill paths. Bit-identical lane-by-lane to
    ``_lane_kernel_dict`` and the scalar runners. Returns
    ``(results, checkpoint_logs, bandit_step_logs)``; the logs are only
    populated when ``collect_logs`` (the sanitizer's capture).
    """
    num_lanes = len(lanes)
    tracker_pairs, geo = _lane_tracker_geometry(lanes, params)
    single_geo = len(tracker_pairs) == 1
    pre = _shared_prepass(
        trace, hierarchy_config, core_config, tracker_pairs
    )
    total = pre["total"]
    blocks = pre["blocks"]
    flags_l = pre["flags"]
    idx_l = pre["idx"]
    anchor_gidx = pre["anchor_gidx"]
    boost_arr = pre["boost_arr"]
    floor_blocks = pre["floor_blocks"]
    gap_retire = pre["gap_retire"]
    gap_dispatch = pre["gap_dispatch"]
    hit = pre["hit"]
    l1_victim = pre["l1_victim"]
    l1_victim_dirty = pre["l1_victim_dirty"]
    st_ok = pre["st_ok"]
    st_stride_l = pre["st_stride"]
    sm_ok = pre["sm_ok"]
    sm_dir_l = pre["sm_dir"]
    commit_cost = pre["commit_cost"]

    config = hierarchy_config
    l1_latency = config.l1_latency
    l2_latency = config.l2_latency
    llc_latency = config.llc_latency
    max_inflight_prefetches = config.max_inflight_prefetches
    mshr_capacity = config.mshr_entries
    block_bytes = config.block_bytes
    l2_num_sets = config.l2_size_bytes // (config.l2_ways * block_bytes)
    llc_num_sets = config.llc_size_bytes // (config.llc_ways * block_bytes)
    l2_ways = config.l2_ways
    llc_ways = config.llc_ways
    # DRAM channel constants (mirrors DRAMModel.access/writeback).
    transfers_per_cycle = config.dram_mtps * 1e6 / (
        config.core_frequency_ghz * 1e9
    )
    dram_line_cost = 8 / transfers_per_cycle
    dram_latency = config.dram_latency

    # ---- lane-resident memory state: packed (N, sets, ways) line arrays
    # (block * 8 + flags; bit0 prefetched, bit1 used, bit2 dirty; -1 =
    # empty way). Way positions are stable; recency lives in the
    # parallel last-touch stamp arrays (argmin stamp = LRU victim). ----
    # repro: dtype[l2_data: int64]
    # repro: dtype[llc_data: int64]
    # repro: dtype[l2_cnt: int64]
    # repro: dtype[llc_cnt: int64]
    # repro: dtype[l2_stamp: int64]
    # repro: dtype[llc_stamp: int64]
    l2_data = np.full(
        (num_lanes, l2_num_sets, l2_ways), -1, dtype=np.int64
    )
    l2_cnt = np.zeros((num_lanes, l2_num_sets), dtype=np.int64)
    l2_stamp = np.zeros((num_lanes, l2_num_sets, l2_ways), dtype=np.int64)
    llc_data = np.full(
        (num_lanes, llc_num_sets, llc_ways), -1, dtype=np.int64
    )
    llc_cnt = np.zeros((num_lanes, llc_num_sets), dtype=np.int64)
    llc_stamp = np.zeros(
        (num_lanes, llc_num_sets, llc_ways), dtype=np.int64
    )
    st = _ArrayState(
        l2_data=l2_data,
        l2_cnt=l2_cnt,
        l2_stamp=l2_stamp,
        llc_data=llc_data,
        llc_cnt=llc_cnt,
        llc_stamp=llc_stamp,
        l2_flat=l2_data.reshape(-1, l2_ways),
        l2_cnt_flat=l2_cnt.reshape(-1),
        l2_stamp_flat=l2_stamp.reshape(-1, l2_ways),
        llc_flat=llc_data.reshape(-1, llc_ways),
        llc_cnt_flat=llc_cnt.reshape(-1),
        llc_stamp_flat=llc_stamp.reshape(-1, llc_ways),
        l2_num_sets=l2_num_sets,
        llc_num_sets=llc_num_sets,
        dram_line_cost=dram_line_cost,
        dram_free=np.zeros(num_lanes),
        ipf=np.zeros(num_lanes, dtype=np.int64),
        writebacks=np.zeros(num_lanes, dtype=np.int64),
        pf_wrong=np.zeros(num_lanes, dtype=np.int64),
    )
    fq = _FillQueue.create(num_lanes, mshr_capacity)
    nfr = fq.nfr  # per-lane next fill-ready cycle (updated in place)

    # Every lane misses L1 together, so L2 demand accesses are a single
    # shared counter; everything else is an (N,) column.
    l2da = 0
    l2dh = np.zeros(num_lanes, dtype=np.int64)
    llcda = np.zeros(num_lanes, dtype=np.int64)
    llcdh = np.zeros(num_lanes, dtype=np.int64)
    dram_fills = np.zeros(num_lanes, dtype=np.int64)
    pf_issued = np.zeros(num_lanes, dtype=np.int64)
    pf_timely = np.zeros(num_lanes, dtype=np.int64)
    pf_late = np.zeros(num_lanes, dtype=np.int64)
    pf_dropped = np.zeros(num_lanes, dtype=np.int64)

    # ---- per-lane degree registers (EnsemblePrefetcher.set_arm collapses
    # to three packed columns; "none" lanes stay all-zero, which emits no
    # candidates and therefore never observes) ----
    reg_nl = np.zeros(num_lanes, dtype=np.int64)
    reg_st = np.zeros(num_lanes, dtype=np.int64)
    reg_sm = np.zeros(num_lanes, dtype=np.int64)

    # Arm switches are rare (one lane per bandit step) next to miss
    # records, so degree-register reductions (max degree, next-line mask)
    # are cached and recomputed only when a register actually changed.
    deg_dirty = [True]

    # repro: mirror-exempt[degree-register install shared by the mirrored demand paths; twin of the dict kernel's apply_arm]
    def apply_arm(i: int, arm_id: int) -> None:
        spec = TABLE7_ARMS[arm_id]
        reg_nl[i] = 1 if spec.next_line else 0
        reg_st[i] = spec.stride_degree
        reg_sm[i] = spec.stream_degree
        deg_dirty[0] = True

    bst = _BanditLanes(lanes, params, apply_arm, collect_logs)
    has_bandit = bool(bst.lane_indices)
    hook_l2v = bst.hook_l2
    hook_cycv = bst.hook_cyc
    # Scalar hook-threshold summaries: ``l2da`` is shared, so no lane can
    # fire below the minimum armed boundary, and the cycle threshold only
    # exists while some selection is pending. Both are refreshed on the
    # (rare) records where a hook actually fired or applied, replacing
    # two per-record (N,) compares with scalar tests.
    hook_l2_min = float(hook_l2v.min()) if has_bandit else _INF
    hook_cyc_fin = bool((hook_cycv < _INF).any()) if has_bandit else False
    for i, lane in enumerate(lanes):
        if lane.kind == "arm":
            apply_arm(i, lane.arm)  # type: ignore[arg-type]

    checkpoint_logs: List[List[StepRecord]] = [[] for _ in range(num_lanes)]
    if collect_logs:
        from repro.core_model.sanitizer import _CHECKPOINTS

        cp_stride = max(1, total // _CHECKPOINTS)
    else:
        cp_stride = 0

    if single_geo:
        st_ok0 = st_ok[0]
        sm_ok0 = sm_ok[0]
        st_stride0 = st_stride_l[0]
        sm_dir0 = sm_dir_l[0]

    # ---- candidate-matrix constants: the Table 7 arm registry bounds the
    # per-record candidate list at 1 next-line + max stride degree + max
    # stream degree columns, so one reusable (N, width) buffer covers
    # every record and dedup/validity become masks instead of per-group
    # Python list building ----
    max_st_deg = max(spec.stride_degree for spec in TABLE7_ARMS)
    max_sm_deg = max(spec.stream_degree for spec in TABLE7_ARMS)
    kdeg = np.arange(1, max_st_deg + 1)
    jdeg = np.arange(1, max_sm_deg + 1)
    cand_buf = np.empty((num_lanes, 1 + max_st_deg + max_sm_deg),
                        dtype=np.int64)
    jrow = _arange(max_sm_deg)[None, :]
    # Read-only constant column (callers never mutate flag vectors).
    zeros_n = np.zeros(num_lanes, dtype=np.int64)
    # Single-geometry candidate cache: the per-record candidate offsets
    # and validity masks depend only on (active degrees, stride value,
    # stream direction, degree registers), so records sharing a tracker
    # verdict reuse one (offsets, valid, min offset) entry; any register
    # change clears the cache (see the deg_dirty refresh).
    cand_cache: Dict[
        Tuple[int, int, int, int], Tuple[np.ndarray, np.ndarray, int]
    ] = {}

    # ---- per-lane core clocks as (N,) float64 columns; rlog[t + 1] is
    # the retire column after row t, and row 0 is a permanent zero row so
    # the no-anchor floor gathers 0.0 (see the dict kernel) ----
    # repro: dtype[retire: float64]
    # repro: dtype[dispatch: float64]
    # repro: dtype[llr: float64]
    # repro: dtype[rlog: float64]
    # repro: dtype[ready_arr: float64]
    retire = np.zeros(num_lanes)
    dispatch = np.zeros(num_lanes)
    llr = np.zeros(num_lanes)  # last_load_ready
    rlog = np.zeros((total + 1, num_lanes))

    dispatch_cost = pre["dispatch_cost"]
    maximum = np.maximum
    all_rows = _arange(num_lanes)
    lidx = all_rows[:, None]
    num_blocks = len(floor_blocks)
    for b in range(num_blocks):
        blk_s = floor_blocks[b]
        blk_e = floor_blocks[b + 1] if b + 1 < num_blocks else total
        floors = rlog[anchor_gidx[blk_s:blk_e]]
        floors += boost_arr[blk_s:blk_e, None]
        for t in range(blk_s, blk_e):
            gap_d = gap_dispatch[t]
            if gap_d:
                retire += gap_retire[t]
                dispatch += gap_d
            dispatch += dispatch_cost
            maximum(dispatch, floors[t - blk_s], out=dispatch)

            rflags = flags_l[t]
            is_write = rflags & 1
            if hit[t]:
                if is_write:
                    retire += commit_cost
                else:
                    if rflags & 2:  # FLAG_DEPENDENT
                        cycle = maximum(dispatch, llr)
                    else:
                        cycle = dispatch
                    ready = cycle + l1_latency
                    llr = ready
                    retire += commit_cost
                    maximum(retire, ready, out=retire)
                rlog[t + 1] = retire
                if cp_stride and ((t + 1) % cp_stride == 0 or t + 1 == total):
                    _lane_checkpoint(
                        checkpoint_logs, t, idx_l[t], retire, l2da
                    )
                continue

            # L1 miss on every lane: vectorized memory-side transcription.
            if not is_write and rflags & 2:  # FLAG_DEPENDENT
                cycle = maximum(dispatch, llr)
            else:
                cycle = dispatch
            block = blocks[t]
            bs2 = block % l2_num_sets
            bsl = block % llc_num_sets
            victim_block_t = l1_victim[t]
            victim_wb = victim_block_t >= 0 and l1_victim_dirty[t]
            l2da += 1
            if hook_cyc_fin:
                # Deferred cycle-threshold hook: a selection that came
                # ready by the end of the previous record only swaps the
                # degree registers (see the dict kernel's transcription
                # note); the check uses retire as of the end of row t-1.
                due_apply = rlog[t] >= hook_cycv
                if due_apply.any():
                    for i in due_apply.nonzero()[0]:
                        bst.apply_pending(int(i))
                    hook_cyc_fin = bool((hook_cycv < _INF).any())
            # repro: mirror[lane-array-demand-path] begin
            if fq.hi and (nfr <= cycle).any():
                # Deferred MSHR drain, exactly the dict kernel's: fills
                # that came ready during hit rows are unobservable until
                # this probe, and the queue preserves completion order.
                _drain_ready_fills(st, fq, cycle)
            l2_cycle = cycle + l1_latency
            ready_arr = np.empty(num_lanes)
            # --- L2 probe: one shared set index, all lanes at once ---
            set2 = l2_data[:, bs2]
            match2 = (set2 >> 3) == block
            l2hit = match2.any(axis=1)
            hrows = l2hit.nonzero()[0]
            if hrows.size:
                pos = match2[hrows].argmax(axis=1)
                old = set2[hrows, pos]
                was_pf = (old & 1) != 0
                if was_pf.any():
                    pf_timely[hrows[was_pf]] += 1
                # Demand touch on the packed value: set used (bit1),
                # clear prefetched (bit0), keep block and dirty. The
                # way stays put — only its recency stamp moves.
                set2[hrows, pos] = (old | 2) ^ (old & 1)
                st.ctr += 1
                l2_stamp[hrows, bs2, pos] = st.ctr
                l2dh[hrows] += 1
                ready_arr[hrows] = l2_cycle[hrows] + l2_latency
            # The thrash shape — every lane misses every level — skips
            # each subset gather below (``*_all`` flags) and operates on
            # whole columns instead.
            if hrows.size:
                mrows = (~l2hit).nonzero()[0]
                m_all = False
            else:
                mrows = all_rows
                m_all = True
            if mrows.size:
                if m_all:
                    l2_ready_m = l2_cycle + l2_latency
                else:
                    l2_ready_m = l2_cycle[mrows] + l2_latency
                # --- in-flight (MSHR) probe: the bucket table rules out
                # membership with one (N,) gather; only bucket-colliding
                # rows scan their queue slots ---
                qf_size = 0
                if fq.hi:
                    qtcol = fq.tab[:, block & 255]
                    qmay = (qtcol != 0) if m_all else (qtcol[mrows] != 0)
                    qmr = qmay.nonzero()[0]
                    if qmr.size:
                        qmatch = fq.block[mrows[qmr], :fq.hi] == block
                        qf_inner = qmatch.any(axis=1).nonzero()[0]
                        qf = qmr[qf_inner]
                        qf_size = qf.size
                if qf_size:
                    prows = mrows[qf]
                    qpos = qmatch[qf_inner].argmax(axis=1)
                    entry = fq.ready[prows, qpos]
                    conv = fq.pf[prows, qpos]
                    cv = conv.nonzero()[0]
                    if cv.size:
                        # Prefetch-to-demand conversion flips only the pf
                        # flag; the (ready, block) sort key is untouched.
                        pf_late[prows[cv]] += 1
                        st.ipf[prows[cv]] -= 1
                        fq.pf[prows[cv], qpos[cv]] = False
                    ready_arr[prows] = maximum(entry, l2_ready_m[qf])
                    qfound = np.zeros(mrows.shape[0], dtype=bool)
                    qfound[qf] = True
                    rem = (~qfound).nonzero()[0]
                    r2 = mrows[rem]
                    # Same expression as l2_ready, reused bit-for-bit.
                    llc_cycle = l2_ready_m[rem]
                    r_all = False
                else:
                    r2 = mrows
                    llc_cycle = l2_ready_m
                    r_all = m_all
                if r2.size:
                    setl = llc_data[:, bsl]
                    if r_all:
                        llcda += 1
                        matchl = (setl >> 3) == block
                    else:
                        llcda[r2] += 1
                        matchl = (setl[r2] >> 3) == block
                    llc_hit = matchl.any(axis=1)
                    lh = llc_hit.nonzero()[0]
                    if lh.size:
                        lrows = r2[lh]
                        pos = matchl[lh].argmax(axis=1)
                        # An LLC demand touch leaves the packed line
                        # as-is; only its recency stamp moves.
                        st.ctr += 1
                        llc_stamp[lrows, bsl, pos] = st.ctr
                        llcdh[lrows] += 1
                        ready_arr[lrows] = llc_cycle[lh] + llc_latency
                        # fill_l2(block, 0): the block just missed this
                        # L2 set, so the fill takes the insert path.
                        _fill_l2_rows(
                            st, lrows,
                            np.full(lh.size, block, dtype=np.int64),
                            zeros_n[:lh.size],
                        )
                        lm = (~llc_hit).nonzero()[0]
                        r3 = r2[lm]
                        request = llc_cycle[lm] + llc_latency
                        d_all = False
                    else:
                        r3 = r2
                        request = llc_cycle + llc_latency
                        d_all = r_all
                    if r3.size:
                        if d_all:
                            start = maximum(request, st.dram_free)
                            np.add(start, dram_line_cost, out=st.dram_free)
                            ready3 = start + dram_latency
                            ready_arr = ready3
                            dram_fills += 1
                            roomy = fq.length < mshr_capacity
                        else:
                            start = maximum(request, st.dram_free[r3])
                            st.dram_free[r3] = start + dram_line_cost
                            ready3 = start + dram_latency
                            ready_arr[r3] = ready3
                            dram_fills[r3] += 1
                            roomy = fq.length[r3] < mshr_capacity
                        if roomy.all():
                            fq.insert(r3, ready3, block, False)
                        else:
                            rr = roomy.nonzero()[0]
                            if rr.size:
                                fq.insert(r3[rr], ready3[rr], block, False)
                            # MSHR pressure: untracked immediate fill.
                            fr = r3[(~roomy).nonzero()[0]]
                            _fill_l2_rows(
                                st, fr,
                                np.full(fr.size, block, dtype=np.int64),
                                zeros_n[:fr.size],
                            )
                            _fill_llc_rows(
                                st, fr,
                                np.full(fr.size, block, dtype=np.int64),
                                zeros_n[:fr.size],
                            )
            # L1 fill is shared state (pre-pass); only a dirty victim's
            # L2 writeback diverges per lane.
            if victim_wb:
                _fill_l2_wb(st, all_rows, victim_block_t)
            # --- prefetch candidate emission: the ensemble's ordered
            # list (next-line, then deduped stride, then stream) as fixed
            # matrix columns. Invalid and duplicate slots become -1 pads,
            # which the rank/budget step already skips, so dedup is a
            # mask instead of per-group Python list building ---
            if deg_dirty[0]:
                nlb = reg_nl > 0
                nl_any = bool(nlb.any())
                ke_full = int(reg_st.max())
                je_full = int(reg_sm.max())
                est_m1 = np.maximum(reg_st - 1, 0)
                est_pos = reg_st > 0
                cand_cache.clear()
                deg_dirty[0] = False
            if single_geo:
                # The shared tracker verdict is a scalar per record, so
                # active degrees are the register maxima or nothing, and
                # ``est``/``esm`` alias the registers wherever they are
                # read (guarded by ``ke``/``je``, read-only).
                ke = ke_full if st_ok0[t] else 0
                je = je_full if sm_ok0[t] else 0
            else:
                st_hits = np.array(
                    [grp[t] for grp in st_ok], dtype=np.int64
                )[geo]
                sm_hits = np.array(
                    [grp[t] for grp in sm_ok], dtype=np.int64
                )[geo]
                est = reg_st * st_hits
                esm = reg_sm * sm_hits
                ke = int(est.max())
                je = int(esm.max())
            if ke or je or nl_any:
                # Stride slot k duplicates next-line iff stride*k == 1
                # and repeats an earlier stride slot iff stride == 0;
                # stream slots additionally dedup against every stride
                # slot the lane's degree exposes. Equality is transitive,
                # so comparing against dropped duplicates reproduces the
                # dict kernels' set-based dedup verdict exactly. Column
                # count adapts to the record's max active degrees.
                if single_geo:
                    # Candidate *values* are block + per-column offsets
                    # (the shared verdict stride/direction are record
                    # scalars), so the offset vector and per-lane
                    # validity mask are cached per (degrees, stride,
                    # direction) and only the block-relative work runs
                    # per record.
                    sv = st_stride0[t]
                    dv = sm_dir0[t]
                    ck = (ke, je, int(sv) if ke else 0,
                          int(dv) if je else 0)
                    ent = cand_cache.get(ck)
                    if ent is None:
                        width = 1 + ke + je
                        offs = np.empty(width, dtype=np.int64)
                        offs[0] = 1
                        valid = np.empty((num_lanes, width), dtype=bool)
                        valid[:, 0] = nlb
                        if ke:
                            kd = kdeg[:ke]
                            stc = sv * kd
                            dup_st = (nlb[:, None] & (stc == 1)) | (
                                (sv == 0) & (kd > 1)
                            )
                            offs[1:1 + ke] = stc
                            valid[:, 1:1 + ke] = (
                                kd <= reg_st[:, None]
                            ) & ~dup_st
                        if je:
                            jd = jdeg[:je]
                            smc = dv * jd
                            dup_sm = (nlb[:, None] & (smc == 1)) | (
                                (dv == 0) & (jd > 1)
                            )
                            if ke:
                                eqc = np.cumsum(
                                    smc[:, None] == stc[None, :], axis=1
                                )
                                dup_sm |= (
                                    eqc[:, est_m1].T != 0
                                ) & est_pos[:, None]
                            offs[1 + ke:] = smc
                            valid[:, 1 + ke:] = (
                                jd <= reg_sm[:, None]
                            ) & ~dup_sm
                        # offs is a lane-invariant candidate-offset memo; its
                        # min() reduces the candidate axis, not the lane axis.
                        # repro: shared-scalar[cand_cache]
                        cand_cache[ck] = ent = (offs, valid, int(offs.min()))
                    offs, valid, offs_min = ent
                    cv_cols = block + offs
                    # A candidate whose block id underflows below zero
                    # is dropped exactly like a pad (the generic path's
                    # cand >= 0 test). The cached offset minimum turns
                    # the per-record check into scalar arithmetic.
                    vmask = (
                        (valid & (cv_cols >= 0)) if block + offs_min < 0
                        else valid
                    )
                    in_l2 = (
                        (l2_data[:, cv_cols % l2_num_sets] >> 3)
                        == cv_cols[None, :, None]
                    ).any(axis=2)
                    nb = vmask & ~in_l2
                    # Every lane shares the candidate row, so ``cand``
                    # stays 1-D; downstream gathers index it by
                    # candidate column alone.
                    cand = cv_cols
                    if fq.hi:
                        # Bucket-table prefilter with tiny (C,) index
                        # vectors: exact negatives from one gather.
                        maybe = (fq.tab[:, cv_cols & 255] != 0) & nb
                        if maybe.any():
                            qr, qc = maybe.nonzero()
                            qhit = (
                                fq.block[qr, :fq.hi]
                                == cv_cols[qc][:, None]
                            ).any(axis=1)
                            nb[qr[qhit], qc[qhit]] = False
                else:
                    cand = cand_buf[:, :1 + ke + je]
                    cand[:, 0] = np.where(nlb, block + 1, -1)
                    sv = np.array([grp[t] for grp in st_stride_l])[geo]
                    dv = np.array([grp[t] for grp in sm_dir_l])[geo]
                    if ke:
                        kd = kdeg[:ke]
                        stc = sv[:, None] * kd
                        dup_st = (nlb[:, None] & (stc == 1)) | (
                            (sv == 0)[:, None] & (kd > 1)
                        )
                        cand[:, 1:1 + ke] = np.where(
                            (kd <= est[:, None]) & ~dup_st, block + stc, -1
                        )
                    if je:
                        jd = jdeg[:je]
                        smc = dv[:, None] * jd
                        dup_sm = (nlb[:, None] & (smc == 1)) | (
                            (dv == 0)[:, None] & (jd > 1)
                        )
                        if ke:
                            eqc = np.cumsum(
                                smc[:, :, None] == stc[:, None, :], axis=2
                            )
                            dup_sm |= (
                                eqc[lidx, jrow[:, :je],
                                    np.maximum(est - 1, 0)[:, None]] != 0
                            ) & (est > 0)[:, None]
                        cand[:, 1 + ke:] = np.where(
                            (jd <= esm[:, None]) & ~dup_sm, block + smc, -1
                        )
                    in_l2 = (
                        (l2_data[lidx, cand % l2_num_sets] >> 3)
                        == cand[:, :, None]
                    ).any(axis=2)
                    nb = (cand >= 0) & ~in_l2
                    if fq.hi:
                        # Bucket-table prefilter: exact negatives from an
                        # (N, C) gather; only hits scan their queue slots.
                        # (-1 pads gather bucket 255 but are already off
                        # nb.)
                        maybe = (fq.tab[lidx, cand & 255] != 0) & nb
                        if maybe.any():
                            qr, qc = maybe.nonzero()
                            qhit = (
                                fq.block[qr, :fq.hi]
                                == cand[qr, qc][:, None]
                            ).any(axis=1)
                            nb[qr[qhit], qc[qhit]] = False
                # Both drop thresholds (in-flight prefetches, MSHR
                # occupancy) only grow as a record issues, so each
                # lane issues a prefix of its non-blocked candidates
                # and drops the rest — a rank-vs-budget test.
                budget = np.minimum(
                    max_inflight_prefetches - st.ipf,
                    mshr_capacity - fq.length,
                )
                cum_nb = np.cumsum(nb, axis=1)
                ins = nb & (cum_nb <= budget[:, None])
                # The budget cut keeps a per-lane prefix of the
                # non-blocked candidates, so the insert count is
                # min(total, budget) — no second (N, C) reduction.
                tot_nb = cum_nb[:, -1]
                ins_n = np.minimum(tot_nb, budget)
                pf_dropped += tot_nb - ins_n
                pf_issued += ins_n
                st.ipf += ins_n
                if ins_n.any():
                    # The LLC probe only matters for issued prefetches:
                    # gather (K, ways) for the ins rows instead of
                    # scanning (N, C, ways).
                    ir, ic = ins.nonzero()
                    cb = cand[ic] if cand.ndim == 1 else cand[ir, ic]
                    llc_in = (
                        (llc_data[ir, cb % llc_num_sets] >> 3)
                        == cb[:, None]
                    ).any(axis=1)
                    request = (cycle + l2_latency) + llc_latency
                    dram_c = np.zeros(ins.shape, dtype=bool)
                    dram_c[ir, ic] = ~llc_in
                    nd = dram_c.sum(axis=1)
                    maxrank = int(nd.max())
                    if maxrank:
                        # A lane's k-th DRAM prefetch starts exactly one
                        # line-transfer after its (k-1)-th: once the
                        # first start clears max(request, dram_free),
                        # every later max() resolves to the channel-free
                        # side, so the chain is iterative adds (kept
                        # iterative for float bit-identity with the
                        # scalar path).
                        starts = np.empty((num_lanes, maxrank))
                        col = maximum(request, st.dram_free)
                        starts[:, 0] = col
                        for rr in range(1, maxrank):
                            col = col + dram_line_cost
                            starts[:, rr] = col
                        # Off-candidate slots gather a wrapped column
                        # (cumsum - 1 == -1 before the first DRAM
                        # prefetch); the where() masks them out.
                        drank = np.cumsum(dram_c, axis=1) - 1
                        ready_mat = np.where(
                            dram_c,
                            starts[lidx, drank] + dram_latency,
                            request[:, None],
                        )
                        has = (nd > 0).nonzero()[0]
                        st.dram_free[has] = (
                            starts[has, nd[has] - 1] + dram_line_cost
                        )
                    else:
                        # No DRAM prefetch this record: every insert of a
                        # lane shares its request cycle, kept 1-D.
                        ready_mat = request
                    fq.insert_many(ready_mat, cand, ins, cum_nb, ins_n)
            # repro: mirror[lane-array-demand-path] end
            if is_write:
                retire += commit_cost
            else:
                retire = maximum(ready_arr, retire + commit_cost)
                llr = ready_arr
            rlog[t + 1] = retire

            # End-of-record hook thresholds, bandit lanes only: the
            # retire column already holds exactly the scalar hook's
            # value, so the compare is bit-exact. The scalar minimum /
            # pending-flag guards skip the vector compares on the many
            # records where no lane can possibly fire.
            if has_bandit and (l2da >= hook_l2_min or hook_cyc_fin):
                if hook_cyc_fin:
                    fire = (l2da >= hook_l2v) | (retire >= hook_cycv)
                else:
                    fire = hook_l2v <= l2da
                if fire.any():
                    retire_l = retire.tolist()
                    instructions = idx_l[t]
                    for i in fire.nonzero()[0]:
                        ii = int(i)
                        bst.fire(ii, retire_l[ii], instructions, l2da)
                    hook_l2_min = float(hook_l2v.min())
                    hook_cyc_fin = bool((hook_cycv < _INF).any())

            if cp_stride and ((t + 1) % cp_stride == 0 or t + 1 == total):
                _lane_checkpoint(checkpoint_logs, t, idx_l[t], retire, l2da)

    # ------------------------------------------------------------- episode end
    total_instructions = idx_l[-1] if total else 0
    retire_final = retire.tolist()
    for i in bst.lane_indices:
        # Trailing partial step (run_bandit_prefetch's flush).
        bst.flush(i, total_instructions, retire_final[i], l2da)
    # hierarchy.finalize(): flush in-flight fills in (ready, block)
    # order, then count never-used prefetched L2 lines as wrong (-1 empty
    # ways give (line & 3) == 3 and never match).
    _drain_ready_fills(st, fq, None)
    st.pf_wrong += ((l2_data & 3) == 1).sum(axis=(1, 2))

    results = _assemble_results(
        lanes, pre["loads"], pre["stores"], total, total_instructions,
        retire_final, l2da, l2dh, llcda, llcdh, dram_fills, st.writebacks,
        pf_issued, pf_timely, pf_late, st.pf_wrong, pf_dropped,
        bst.algorithms, bst.arm_traces,
    )
    return results, checkpoint_logs, bst.step_logs
