"""Batched lane replay kernel: N independent runs advanced as array columns.

A *lane* is one independent replay of the same compiled trace — a fixed
ensemble arm, the no-prefetch baseline, or a seeded Micro-Armed Bandit run.
The replication sweeps (fig08/fig10, ``best_static_arm``) replay the same
trace through 11+ such lanes; the scalar path simulates them one at a time,
re-deriving per-record state that is in fact *lane-invariant*:

- **Core index stream.** Instruction indices, dispatch-cost increments, and
  the ROB-boundary anchor *record* depend only on the trace's ``inst_gap``
  sequence, so they are precomputed once with vectorized numpy (the anchor
  via one ``searchsorted`` over the cumulative index stream).
- **L1 contents.** L2 prefetch fills never touch the L1, and demand fills
  are trace-ordered, so L1 hit/miss, victim choice, and victim dirtiness are
  identical across lanes — simulated once in a shared pre-pass.
- **Prefetcher training.** The stride/stream tables train on the L1-miss
  stream regardless of the active degree (the ensemble property §5.2 leans
  on), and training reads only ``(pc, block)`` — lane-invariant. The
  pre-pass trains real ``StridePrefetcher``/``StreamPrefetcher`` instances
  once and records, per miss record, whether each component would emit and
  with what stride/direction; a lane's candidate list is then a pure
  function of its current arm degrees.

What *does* diverge per lane — L2/LLC contents, MSHR state, DRAM channel
timing, retire/dispatch clocks — is held as numpy ``(N,)`` columns for the
core clocks (every L1-hit record updates all lanes in a few vector ops) and
as plain per-lane dicts for the memory side, updated by an exact per-lane
transcription of :func:`~repro.core_model.replay_kernel.run_replay_kernel`
on L1-miss records (all lanes miss together, because hit/miss is shared).

The arithmetic is bit-identical to the scalar kernel: vector adds/maxima on
float64 columns perform the same IEEE-754 operations in the same order as
the scalar locals, so every lane's IPC, cycle counts, and hierarchy stats
match ``TraceCore.run_compiled`` exactly (asserted lane-by-lane under
``REPRO_SANITIZE=1``, and in ``tests/test_lane_kernel.py``).

``REPRO_LANE_KERNEL=0`` (or any ineligible lane/config) falls back to the
scalar runners, one process-visible result list either way.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bandit.hardware import MicroArmedBandit
from repro.bandit.rewards import PerformanceCounters
from repro.constants import NUM_STREAM_TRACKERS, NUM_STRIDE_TRACKERS
from repro.core_model.sanitizer import StepRecord, sanitize_enabled
from repro.core_model.trace_core import CoreConfig
from repro.prefetch.ensemble import TABLE7_ARMS
from repro.prefetch.stream import StreamPrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.uncore.hierarchy import (
    HierarchyConfig,
    HierarchyStats,
    PrefetchOutcome,
)
from repro.workloads.compiled import CompiledTrace

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.experiments.configs import PrefetchBanditParams
    from repro.experiments.prefetch import PrefetchRunResult

#: Set to ``0`` to force every lane batch down the scalar runner path.
LANE_KERNEL_ENV = "REPRO_LANE_KERNEL"

_INF = float("inf")

#: Lane kinds the kernel understands.
_KINDS = ("none", "arm", "bandit")


@dataclass(frozen=True)
class LaneSpec:
    """One lane of a batch: a single independent replay configuration.

    ``kind`` is ``"none"`` (no prefetcher), ``"arm"`` (fixed ensemble arm —
    ``arm`` required), or ``"bandit"`` (Micro-Armed Bandit with ``seed``).
    """

    kind: str
    arm: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown lane kind {self.kind!r}")
        if self.kind == "arm" and self.arm is None:
            raise ValueError("arm lanes require an arm index")


def lane_kernel_enabled() -> bool:
    """Whether the batched kernel may be used (``REPRO_LANE_KERNEL``)."""
    # Kernel and scalar paths are bit-identical (sanitizer-verified), so
    # the gate cannot change any task result.
    # repro: cache-invariant[REPRO_LANE_KERNEL]
    return os.environ.get(LANE_KERNEL_ENV, "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


def lane_batch_eligible(
    trace: object,
    lanes: Sequence[LaneSpec],
    params: "PrefetchBanditParams",
) -> bool:
    """Whether every lane can run through the batched kernel.

    Requires a compiled trace, known lane kinds, in-range arm ids, and a
    single stride/stream tracker geometry across all prefetching lanes
    (arm lanes use the module defaults, bandit lanes use ``params``) —
    the shared training pre-pass simulates exactly one table pair.
    """
    if not isinstance(trace, CompiledTrace) or len(trace) == 0:
        return False
    if not lanes:
        return False
    tracker_pairs = set()
    for lane in lanes:
        if lane.kind == "arm":
            if lane.arm is None or not 0 <= lane.arm < len(TABLE7_ARMS):
                return False
            tracker_pairs.add((NUM_STRIDE_TRACKERS, NUM_STREAM_TRACKERS))
        elif lane.kind == "bandit":
            # The kernel installs the post-first-hook threshold state
            # directly, which is only equivalent to the scalar kernel's
            # initial -inf thresholds when the first record cannot end a
            # bandit step on its own.
            if params.step_l2_accesses < 1:
                return False
            tracker_pairs.add(
                (params.num_stride_trackers, params.num_stream_trackers)
            )
        elif lane.kind != "none":
            return False
    return len(tracker_pairs) <= 1


def run_lane_batch(
    trace: object,
    lanes: Sequence[LaneSpec],
    hierarchy_config: HierarchyConfig,
    core_config: CoreConfig,
    params: Optional["PrefetchBanditParams"] = None,
) -> List["PrefetchRunResult"]:
    """Replay ``trace`` through every lane; one result per lane, in order.

    Dispatches to the batched kernel when enabled and eligible, otherwise
    to the scalar runners (`run_fixed_prefetcher`/`run_fixed_arm`/
    `run_bandit_prefetch`) lane by lane. Results are bit-identical either
    way; under ``REPRO_SANITIZE=1`` the kernel path additionally replays
    every lane through the object path and asserts lane-by-lane
    equivalence (see :func:`repro.core_model.sanitizer.verify_lane_batch`).
    """
    lanes = list(lanes)
    if params is None:
        from repro.experiments.configs import PREFETCH_BANDIT_CONFIG

        params = PREFETCH_BANDIT_CONFIG
    if not lanes:
        return []
    if (
        not lane_kernel_enabled()
        or core_config.rob_size <= 0
        or not lane_batch_eligible(trace, lanes, params)
    ):
        return _run_lanes_scalar(
            trace, lanes, hierarchy_config, core_config, params
        )
    sanitize = sanitize_enabled()
    results, checkpoints, step_logs = _lane_kernel(
        trace, lanes, hierarchy_config, core_config, params,
        collect_logs=sanitize,
    )
    if sanitize:
        from repro.core_model.sanitizer import verify_lane_batch

        verify_lane_batch(
            trace, lanes, results, checkpoints, step_logs,
            hierarchy_config, core_config, params,
        )
    return results


def _run_lanes_scalar(
    trace: object,
    lanes: Sequence[LaneSpec],
    hierarchy_config: HierarchyConfig,
    core_config: CoreConfig,
    params: "PrefetchBanditParams",
) -> List["PrefetchRunResult"]:
    """Scalar fallback: one full runner invocation per lane."""
    from repro.experiments.prefetch import (
        run_bandit_prefetch,
        run_fixed_arm,
        run_fixed_prefetcher,
    )

    results = []
    for lane in lanes:
        if lane.kind == "none":
            results.append(run_fixed_prefetcher(
                trace, "none", hierarchy_config, core_config
            ))
        elif lane.kind == "arm":
            results.append(run_fixed_arm(
                trace, lane.arm, hierarchy_config, core_config
            ))
        else:
            results.append(run_bandit_prefetch(
                trace, hierarchy_config=hierarchy_config,
                core_config=core_config, params=params, seed=lane.seed,
            ))
    return results


# ============================================================ shared pre-pass


def _shared_prepass(
    trace: CompiledTrace,
    hierarchy_config: HierarchyConfig,
    core_config: CoreConfig,
    num_stride_trackers: int,
    num_stream_trackers: int,
) -> Dict[str, object]:
    """Compute every lane-invariant per-record quantity, once.

    Produces the core index/anchor stream (vectorized), the full L1
    simulation (hit flag + victim block/dirtiness per record), and the
    stride/stream training outcomes per L1-miss record.
    """
    pcs, blocks, flags_l, gaps_l = trace.as_lists()
    total = len(pcs)
    commit_cost = 1.0 / core_config.commit_width
    dispatch_cost = 1.0 / core_config.dispatch_width

    # ---- core index / ROB anchor stream (vectorized) ----
    gaps_arr = trace.inst_gap.astype(np.int64)
    idx = np.cumsum(gaps_arr + 1)
    boundary = idx - core_config.rob_size
    # Anchor record for row t: the youngest earlier record whose index is
    # <= boundary_t (consumed window entries stay anchored — boundary is
    # strictly increasing, so "last consumed" == "largest index <= boundary").
    anchor_row = np.searchsorted(idx, boundary, side="right") - 1
    anchor_idx = np.where(anchor_row >= 0, idx[np.maximum(anchor_row, 0)], 0)
    behind = boundary - anchor_idx
    # floor = anchor_retire + behind*commit_cost when behind > 0, else
    # anchor_retire; adding +0.0 is a bit-exact identity on the non-negative
    # retire values, so a zeroed addend folds both cases into one add.
    boost = np.where(behind > 0, behind, 0).astype(np.float64) * commit_cost
    # Floor gather plan: the kernel's retire log keeps a permanent zero row
    # at index 0, so ``rlog[anchor_row + 1] + boost`` is the floor for every
    # row at once — anchor -1 (ROB never filled) gathers 0.0 and the
    # boost-only and no-floor cases collapse into the same (no-op) maximum.
    # Rows are grouped into blocks whose anchors all precede the block
    # start, so each block's floors gather from final rlog rows in two
    # vector ops; a row whose anchor lands inside the current block (ROB
    # span shorter than the block) simply opens a new block.
    anchor_l = anchor_row.tolist()
    floor_blocks = [0]
    cur = 0
    for t, a in enumerate(anchor_l):
        if a >= cur and t > cur:
            cur = t
            floor_blocks.append(t)

    # ---- shared L1 simulation + prefetcher training ----
    block_bytes = hierarchy_config.block_bytes
    l1_num_sets = hierarchy_config.l1_size_bytes // (
        hierarchy_config.l1_ways * block_bytes
    )
    l1_ways = hierarchy_config.l1_ways
    l1_sets: List[Dict[int, bool]] = [{} for _ in range(l1_num_sets)]
    hit = bytearray(total)
    l1_victim = [-1] * total
    l1_victim_dirty = bytearray(total)
    st_ok = bytearray(total)
    st_stride = [0] * total
    sm_ok = bytearray(total)
    sm_dir = [0] * total
    # Real component instances at degree 1: training is degree-independent,
    # and a non-empty emission directly yields (ok, stride/direction).
    stride_pf = StridePrefetcher(degree=1, num_trackers=num_stride_trackers)
    stream_pf = StreamPrefetcher(degree=1, num_trackers=num_stream_trackers)
    stride_observe = stride_pf.observe
    stream_observe = stream_pf.observe
    stores = 0

    for t in range(total):
        block = blocks[t]
        is_write = flags_l[t] & 1
        if is_write:
            stores += 1
        cache_set = l1_sets[block % l1_num_sets]
        dirty = cache_set.pop(block, None)
        if dirty is not None:
            cache_set[block] = True if is_write else dirty
            hit[t] = 1
            continue
        # L1 miss: train the shared tables, record the emission outcome.
        st = stride_observe(pcs[t], block, 0.0, False)
        if st:
            st_ok[t] = 1
            st_stride[t] = st[0] - block
        sm = stream_observe(pcs[t], block, 0.0, False)
        if sm:
            sm_ok[t] = 1
            sm_dir[t] = sm[0] - block
        if len(cache_set) >= l1_ways:
            for victim_block in cache_set:
                break
            l1_victim[t] = victim_block
            l1_victim_dirty[t] = 1 if cache_set.pop(victim_block) else 0
        cache_set[block] = bool(is_write)

    return {
        "total": total,
        "pcs": pcs,
        "blocks": blocks,
        "flags": flags_l,
        "gaps": gaps_l,
        "idx": idx.tolist(),
        "anchor_row": anchor_l,
        "anchor_gidx": anchor_row + 1,
        "boost_arr": boost,
        "floor_blocks": floor_blocks,
        "gap_retire": (gaps_arr.astype(np.float64) * commit_cost).tolist(),
        "gap_dispatch": (gaps_arr.astype(np.float64) * dispatch_cost).tolist(),
        "hit": hit,
        "l1_victim": l1_victim,
        "l1_victim_dirty": l1_victim_dirty,
        "st_ok": st_ok,
        "st_stride": st_stride,
        "sm_ok": sm_ok,
        "sm_dir": sm_dir,
        "loads": total - stores,
        "stores": stores,
        "commit_cost": commit_cost,
        "dispatch_cost": dispatch_cost,
    }


# ================================================================ the kernel


def _lane_checkpoint(
    checkpoint_logs: List[List[StepRecord]],
    t: int,
    instructions: int,
    retire: np.ndarray,
    l2da: int,
) -> None:
    """Record one sanitizer checkpoint row for every lane."""
    retire_l = retire.tolist()
    for i, log in enumerate(checkpoint_logs):
        retire_i = retire_l[i]
        log.append(StepRecord(
            step=t + 1,
            instructions=instructions,
            cycles=retire_i,
            ipc=instructions / retire_i if retire_i else 0.0,
            l2_demand_accesses=l2da,
        ))


def _lane_kernel(
    trace: CompiledTrace,
    lanes: List[LaneSpec],
    hierarchy_config: HierarchyConfig,
    core_config: CoreConfig,
    params: "PrefetchBanditParams",
    collect_logs: bool = False,
) -> Tuple[
    List["PrefetchRunResult"],
    List[List[StepRecord]],
    Dict[int, List[StepRecord]],
]:
    """Advance every lane through the trace in one fused pass.

    Returns ``(results, checkpoint_logs, bandit_step_logs)``; the logs are
    only populated when ``collect_logs`` (the sanitizer's capture).
    """
    from repro.experiments.prefetch import PrefetchRunResult

    num_lanes = len(lanes)
    has_bandit = any(lane.kind == "bandit" for lane in lanes)
    tracker_pair = (
        (params.num_stride_trackers, params.num_stream_trackers)
        if has_bandit
        else (NUM_STRIDE_TRACKERS, NUM_STREAM_TRACKERS)
    )
    pre = _shared_prepass(
        trace, hierarchy_config, core_config, *tracker_pair
    )
    total = pre["total"]
    blocks = pre["blocks"]
    flags_l = pre["flags"]
    gaps_l = pre["gaps"]
    idx_l = pre["idx"]
    anchor_gidx = pre["anchor_gidx"]
    boost_arr = pre["boost_arr"]
    floor_blocks = pre["floor_blocks"]
    gap_retire = pre["gap_retire"]
    gap_dispatch = pre["gap_dispatch"]
    hit = pre["hit"]
    l1_victim = pre["l1_victim"]
    l1_victim_dirty = pre["l1_victim_dirty"]
    st_ok = pre["st_ok"]
    st_stride_l = pre["st_stride"]
    sm_ok = pre["sm_ok"]
    sm_dir_l = pre["sm_dir"]
    commit_cost = pre["commit_cost"]

    config = hierarchy_config
    l1_latency = config.l1_latency
    l2_latency = config.l2_latency
    llc_latency = config.llc_latency
    max_inflight_prefetches = config.max_inflight_prefetches
    mshr_capacity = config.mshr_entries
    block_bytes = config.block_bytes
    l2_num_sets = config.l2_size_bytes // (config.l2_ways * block_bytes)
    llc_num_sets = config.llc_size_bytes // (config.llc_ways * block_bytes)
    l2_ways = config.l2_ways
    llc_ways = config.llc_ways
    # DRAM channel constants (mirrors DRAMModel.access/writeback).
    transfers_per_cycle = config.dram_mtps * 1e6 / (
        config.core_frequency_ghz * 1e9
    )
    dram_line_cost = 8 / transfers_per_cycle
    dram_latency = config.dram_latency

    # ---- per-lane memory-side state (plain Python; victim choice is dict
    # order, so recency stamps are never consulted and are dropped).  L2
    # lines are packed small ints (bit0 prefetched, bit1 used, bit2 dirty)
    # and LLC lines a bare dirty bool (its other flags are never read), so
    # cache fills allocate nothing ----
    l2_sets = [
        [{} for _ in range(l2_num_sets)] for _ in range(num_lanes)
    ]  # type: List[List[Dict[int, int]]]
    llc_sets = [
        [{} for _ in range(llc_num_sets)] for _ in range(num_lanes)
    ]  # type: List[List[Dict[int, bool]]]
    # In-flight fills: block -> ready cycle, negated for prefetch fills
    # (ready cycles are strictly positive, so the sign carries is_pf).
    inflight: List[Dict[int, float]] = [dict() for _ in range(num_lanes)]
    heaps: List[list] = [[] for _ in range(num_lanes)]
    nfr = [_INF] * num_lanes  # next MSHR fill-ready cycle, per lane
    ipf = [0] * num_lanes  # in-flight prefetch count
    dram_free = [0.0] * num_lanes  # DRAM channel-free cycle

    # Every lane misses L1 together, so L2 demand accesses are a single
    # shared counter, not a per-lane column.
    l2da = 0
    l2dh = [0] * num_lanes
    llcda = [0] * num_lanes
    llcdh = [0] * num_lanes
    dram_fills = [0] * num_lanes
    writebacks = [0] * num_lanes
    pf_issued = [0] * num_lanes
    pf_timely = [0] * num_lanes
    pf_late = [0] * num_lanes
    pf_wrong = [0] * num_lanes
    pf_dropped = [0] * num_lanes

    # ---- per-lane prefetcher configuration (EnsemblePrefetcher.set_arm
    # collapses to one packed (next_line, stride_deg, stream_deg) register
    # tuple; "none" lanes carry None and never observe) ----
    lane_arm: List[Optional[Tuple[bool, int, int]]] = [
        None if lane.kind == "none" else (False, 0, 0) for lane in lanes
    ]

    def apply_arm(i: int, arm_id: int) -> None:
        spec = TABLE7_ARMS[arm_id]
        lane_arm[i] = (
            spec.next_line, spec.stride_degree, spec.stream_degree
        )

    # ---- bandit lanes (real MicroArmedBandit + DUCB objects per lane;
    # only the ensemble's degree registers are virtualized) ----
    is_bandit = [lane.kind == "bandit" for lane in lanes]
    bandit_lanes = [i for i, flag in enumerate(is_bandit) if flag]
    bandits: List[Optional[MicroArmedBandit]] = [None] * num_lanes
    algorithms: List[object] = [None] * num_lanes
    pending = [0] * num_lanes
    applied = [0] * num_lanes
    next_boundary = [0] * num_lanes
    hook_l2 = [_INF] * num_lanes
    hook_cyc = [_INF] * num_lanes
    arm_traces: List[List[Tuple[float, int]]] = [[] for _ in range(num_lanes)]
    step_accesses = params.step_l2_accesses

    step_logs: Dict[int, List[StepRecord]] = {}
    checkpoint_logs: List[List[StepRecord]] = [[] for _ in range(num_lanes)]
    if collect_logs:
        from repro.core_model.sanitizer import _CHECKPOINTS

        cp_stride = max(1, total // _CHECKPOINTS)
    else:
        cp_stride = 0

    def log_step(i: int, instructions: int, retire_i: float) -> None:
        log = step_logs[i]
        algorithm = algorithms[i]
        log.append(StepRecord(
            step=len(log),
            instructions=instructions,
            cycles=retire_i,
            ipc=instructions / retire_i if retire_i else 0.0,
            l2_demand_accesses=l2da,
            arm=pending[i],
            reward_estimates=tuple(algorithm.reward_estimates()),
            selection_counts=tuple(algorithm.selection_counts()),
        ))

    if has_bandit:
        from repro.experiments.configs import prefetch_bandit_algorithm

        for i, lane in enumerate(lanes):
            if not is_bandit[i]:
                continue
            algorithm = prefetch_bandit_algorithm(
                seed=lane.seed, params=params
            )
            bandit = MicroArmedBandit(
                algorithm,
                selection_latency_cycles=params.selection_latency_cycles,
            )
            # Mirrors run_bandit_prefetch's episode setup on a fresh core.
            bandit.reset_counters(PerformanceCounters(0, 0.0))
            arm = bandit.begin_step(0.0)
            pending[i] = arm
            applied[i] = arm
            apply_arm(i, arm)
            arm_traces[i] = [(0.0, arm)]
            next_boundary[i] = step_accesses
            algorithms[i] = algorithm
            bandits[i] = bandit
            # The scalar kernel's initial -inf thresholds fire the hook
            # after the first record just to install real thresholds; with
            # step_l2_accesses >= 1 (enforced by eligibility) anything that
            # first fire could do — at most ending a step when record 0 is
            # an L2 access and the step budget is 1 — is reproduced by the
            # ordinary end-of-miss-row threshold check, so the post-fire
            # state is installed directly: the l2 threshold is the first
            # boundary and no cycle threshold is armed.
            hook_l2[i] = next_boundary[i]
            if collect_logs:
                step_logs[i] = []
                log_step(i, 0, 0.0)

    for i, lane in enumerate(lanes):
        if lane.kind == "arm":
            apply_arm(i, lane.arm)  # type: ignore[arg-type]

    # repro: mirror[lane-bandit-step]
    def fire_hook(i: int, retire_i: float, instructions: int) -> None:
        """Per-lane transcription of run_bandit_prefetch's bandit_hook."""
        bandit = bandits[i]
        if pending[i] != applied[i] and retire_i >= bandit.selection_ready_cycle:
            apply_arm(i, pending[i])
            applied[i] = pending[i]
        if l2da >= next_boundary[i]:
            next_boundary[i] = l2da + step_accesses
            bandit.end_step(PerformanceCounters(instructions, retire_i))
            pending[i] = bandit.begin_step(retire_i)
            arm_traces[i].append((retire_i, pending[i]))
            if collect_logs:
                log_step(i, instructions, retire_i)
        hook_l2[i] = next_boundary[i]
        hook_cyc[i] = (
            bandit.selection_ready_cycle
            if pending[i] != applied[i] else _INF
        )

    # repro: mirror[lane-fill-llc]
    def fill_llc(i: int, block: int, dirty: bool) -> None:
        """Per-lane transcription of the scalar kernel's fill_llc closure."""
        cache_set = llc_sets[i][block % llc_num_sets]
        existing = cache_set.pop(block, None)
        if existing is not None:
            cache_set[block] = existing or dirty
            return
        if len(cache_set) >= llc_ways:
            for victim_block in cache_set:
                break
            victim_dirty = cache_set.pop(victim_block)
            cache_set[block] = dirty
            if victim_dirty:
                writebacks[i] += 1
                dram_free[i] += dram_line_cost
        else:
            cache_set[block] = dirty

    # repro: mirror[lane-fill-l2]
    def fill_l2(i: int, block: int, line: int) -> None:
        """Per-lane transcription of the scalar kernel's fill_l2 closure.

        ``line`` is the packed incoming flags (bit0 prefetched, bit2
        dirty); an existing line only absorbs the dirty bit, as the
        object path's fill does.
        """
        cache_set = l2_sets[i][block % l2_num_sets]
        existing = cache_set.pop(block, None)
        if existing is not None:
            cache_set[block] = existing | (line & 4)
            return
        if len(cache_set) >= l2_ways:
            for victim_block in cache_set:
                break
            victim = cache_set.pop(victim_block)
            if victim & 1 and not victim & 2:
                pf_wrong[i] += 1
            cache_set[block] = line
            if victim & 4:
                fill_llc(i, victim_block, True)
        else:
            cache_set[block] = line

    def drain_mshr(i: int, cycle_i: float) -> None:
        """MSHR drain for one lane: complete every fill now ready.

        The clean-fill ``fill_l2``/``fill_llc`` bodies are inlined — this
        is the hot fill path (roughly one fill per lane per miss row).
        """
        heap = heaps[i]
        inflight_i = inflight[i]
        l2_sets_i = l2_sets[i]
        llc_sets_i = llc_sets[i]
        while heap and heap[0][0] <= cycle_i:
            fill_block = heappop(heap)[1]
            entry = inflight_i.pop(fill_block, None)
            if entry is None:
                continue  # superseded entry
            if entry < 0:
                ipf[i] -= 1
                line = 1
            else:
                line = 0
            cache_set = l2_sets_i[fill_block % l2_num_sets]
            existing = cache_set.pop(fill_block, None)
            if existing is not None:
                cache_set[fill_block] = existing
            elif len(cache_set) >= l2_ways:
                for victim_block in cache_set:
                    break
                victim = cache_set.pop(victim_block)
                if victim & 1 and not victim & 2:
                    pf_wrong[i] += 1
                cache_set[fill_block] = line
                if victim & 4:
                    fill_llc(i, victim_block, True)
            else:
                cache_set[fill_block] = line
            cache_set = llc_sets_i[fill_block % llc_num_sets]
            existing = cache_set.pop(fill_block, None)
            if existing is not None:
                cache_set[fill_block] = existing
            elif len(cache_set) >= llc_ways:
                for victim_block in cache_set:
                    break
                victim_dirty = cache_set.pop(victim_block)
                cache_set[fill_block] = False
                if victim_dirty:
                    writebacks[i] += 1
                    dram_free[i] += dram_line_cost
            else:
                cache_set[fill_block] = False
        nfr[i] = heap[0][0] if heap else _INF

    # ---- per-lane core clocks as (N,) float64 columns; rlog[t + 1] is the
    # retire-time column after row t, and row 0 is a permanent zero row so
    # the no-anchor floor gathers 0.0 and every row takes the same maximum ----
    # repro: dtype[retire: float64]
    # repro: dtype[dispatch: float64]
    # repro: dtype[llr: float64]
    # repro: dtype[rlog: float64]
    # Packed L2 line flags: bit0 prefetched, bit1 used, bit2 dirty.
    # repro: dtype[line: int bits<=3]
    # repro: dtype[victim: int bits<=3]
    # repro: dtype[l2_line: int bits<=3]
    retire = np.zeros(num_lanes)
    dispatch = np.zeros(num_lanes)
    llr = np.zeros(num_lanes)  # last_load_ready
    rlog = np.zeros((total + 1, num_lanes))

    dispatch_cost = pre["dispatch_cost"]
    maximum = np.maximum
    num_blocks = len(floor_blocks)
    for b in range(num_blocks):
        blk_s = floor_blocks[b]
        blk_e = floor_blocks[b + 1] if b + 1 < num_blocks else total
        # Every anchor in the block precedes blk_s (the pre-pass block
        # builder guarantees it), so the gathered rlog rows are final and
        # the whole block's retire floors cost two vector ops.
        floors = rlog[anchor_gidx[blk_s:blk_e]]
        floors += boost_arr[blk_s:blk_e, None]
        for t in range(blk_s, blk_e):
            gap_d = gap_dispatch[t]
            if gap_d:
                retire += gap_retire[t]
                dispatch += gap_d
            dispatch += dispatch_cost
            maximum(dispatch, floors[t - blk_s], out=dispatch)

            rflags = flags_l[t]
            is_write = rflags & 1
            if hit[t]:
                if is_write:
                    retire += commit_cost
                else:
                    if rflags & 2:  # FLAG_DEPENDENT
                        cycle = maximum(dispatch, llr)
                    else:
                        cycle = dispatch
                    ready = cycle + l1_latency
                    llr = ready
                    retire += commit_cost
                    maximum(retire, ready, out=retire)
                rlog[t + 1] = retire
                if cp_stride and ((t + 1) % cp_stride == 0 or t + 1 == total):
                    _lane_checkpoint(
                        checkpoint_logs, t, idx_l[t], retire, l2da
                    )
                continue

            # L1 miss on every lane: per-lane memory-side transcription.
            if not is_write and rflags & 2:  # FLAG_DEPENDENT
                cycle = maximum(dispatch, llr)
            else:
                cycle = dispatch
            block = blocks[t]
            bs2 = block % l2_num_sets
            bsl = block % llc_num_sets
            cycle_l = cycle.tolist()
            retire_l = retire.tolist()
            ready_l = cycle_l  # overwritten per lane below (loads only)
            if not is_write:
                ready_l = [0.0] * num_lanes
            victim_block_t = l1_victim[t]
            victim_wb = victim_block_t >= 0 and l1_victim_dirty[t]
            nl_cand = block + 1
            st_d_row = st_stride_l[t]
            sm_d_row = sm_dir_l[t]
            st_hit_row = st_ok[t]
            sm_hit_row = sm_ok[t]
            cand_memo: Dict[Tuple[bool, int, int], List[int]] = {}
            # Every lane misses together: one shared demand-access bump.
            # Nothing between here and the end-of-row hook check reads it
            # except fire_hook, which only runs there.
            l2da += 1
            if bandit_lanes:
                # Deferred cycle-threshold hook: a selection that came
                # ready by the end of the previous record only swaps the
                # degree registers, which are first read below — l2
                # accesses cannot cross a step boundary on hit rows, so
                # applying the pending arm is the fire's only observable
                # effect.  The check uses retire as of the end of row t-1
                # (rlog row t): the scalar hook never sees this row's
                # ROB-gap retire increment.
                prev_retire_l = rlog[t].tolist()
                for i in bandit_lanes:
                    if prev_retire_l[i] >= hook_cyc[i]:
                        apply_arm(i, pending[i])
                        applied[i] = pending[i]
                        hook_cyc[i] = _INF
            # repro: mirror[lane-demand-path] begin
            for i in range(num_lanes):
                cycle_i = cycle_l[i]
                if nfr[i] <= cycle_i:
                    # Deferred MSHR drain: fills that came ready during the
                    # hit rows since this lane's last miss are unobservable
                    # until this probe, and the ready-heap preserves their
                    # completion order, so draining them here is exact.
                    drain_mshr(i, cycle_i)
                l2_cycle = cycle_i + l1_latency
                l2_sets_i = l2_sets[i]
                llc_sets_i = llc_sets[i]
                l2_set = l2_sets_i[bs2]
                l2_line = l2_set.pop(block, None)
                inflight_i = inflight[i]
                if l2_line is not None:
                    l2dh[i] += 1
                    if l2_line & 1:
                        pf_timely[i] += 1
                        l2_set[block] = (l2_line | 2) & ~1
                    else:
                        l2_set[block] = l2_line | 2
                    ready_i = l2_cycle + l2_latency
                else:
                    entry = inflight_i.get(block)
                    if entry is not None:
                        if entry < 0:
                            pf_late[i] += 1
                            entry = -entry
                            inflight_i[block] = entry
                            ipf[i] -= 1
                        l2_ready = l2_cycle + l2_latency
                        ready_i = entry if entry > l2_ready else l2_ready
                    else:
                        llc_cycle = l2_cycle + l2_latency
                        llcda[i] += 1
                        llc_set = llc_sets_i[bsl]
                        llc_line = llc_set.pop(block, None)
                        if llc_line is not None:
                            llc_set[block] = llc_line
                            llcdh[i] += 1
                            ready_i = llc_cycle + llc_latency
                            # fill_l2(block, 0): the block just missed
                            # this set, so no existing-line check.
                            if len(l2_set) >= l2_ways:
                                for victim_block in l2_set:
                                    break
                                victim = l2_set.pop(victim_block)
                                if victim & 1 and not victim & 2:
                                    pf_wrong[i] += 1
                                l2_set[block] = 0
                                if victim & 4:
                                    fill_llc(i, victim_block, True)
                            else:
                                l2_set[block] = 0
                        else:
                            request = llc_cycle + llc_latency
                            channel_free = dram_free[i]
                            start = (request if request > channel_free
                                     else channel_free)
                            dram_free[i] = start + dram_line_cost
                            ready_i = start + dram_latency
                            dram_fills[i] += 1
                            if len(inflight_i) < mshr_capacity:
                                inflight_i[block] = ready_i
                                heappush(heaps[i], (ready_i, block))
                                if ready_i < nfr[i]:
                                    nfr[i] = ready_i
                            else:
                                # MSHR pressure: untracked immediate fill.
                                fill_l2(i, block, 0)
                                fill_llc(i, block, False)
                # L1 fill is shared state (pre-pass); only a dirty victim's
                # L2 writeback diverges per lane.
                if victim_wb:
                    fill_l2(i, victim_block_t, 4)
                arm_t = lane_arm[i]
                if arm_t is not None:
                    nl_on, st_d, sm_d = arm_t
                    if not st_hit_row:
                        st_d = 0
                    if not sm_hit_row:
                        sm_d = 0
                    if nl_on or st_d or sm_d:
                        key = (nl_on, st_d, sm_d)
                        candidates = cand_memo.get(key)
                        if candidates is None:
                            # EnsemblePrefetcher.observe's emission order:
                            # next-line, then deduped stride, then stream.
                            nl = [nl_cand] if nl_on else []
                            st = ([block + st_d_row * k
                                   for k in range(1, st_d + 1)]
                                  if st_d else [])
                            sm = ([block + sm_d_row * k
                                   for k in range(1, sm_d + 1)]
                                  if sm_d else [])
                            if not st and not sm:
                                candidates = nl
                            else:
                                candidates = list(nl)
                                seen = set(nl)
                                for cand in st:
                                    if cand not in seen:
                                        seen.add(cand)
                                        candidates.append(cand)
                                for cand in sm:
                                    if cand not in seen:
                                        seen.add(cand)
                                        candidates.append(cand)
                            cand_memo[key] = candidates
                        for cand in candidates:
                            if cand < 0 or cand in l2_sets_i[
                                cand % l2_num_sets
                            ] or cand in inflight_i:
                                continue
                            if (ipf[i] >= max_inflight_prefetches
                                    or len(inflight_i) >= mshr_capacity):
                                pf_dropped[i] += 1
                                continue
                            pf_issued[i] += 1
                            if cand in llc_sets_i[cand % llc_num_sets]:
                                pf_ready = cycle_i + l2_latency + llc_latency
                            else:
                                request = cycle_i + l2_latency + llc_latency
                                channel_free = dram_free[i]
                                start = (request if request > channel_free
                                         else channel_free)
                                dram_free[i] = start + dram_line_cost
                                pf_ready = start + dram_latency
                            inflight_i[cand] = -pf_ready
                            heappush(heaps[i], (pf_ready, cand))
                            if pf_ready < nfr[i]:
                                nfr[i] = pf_ready
                            ipf[i] += 1
                # On write rows ready_l aliases cycle_l; cycle_l[i] was
                # already consumed, so the stray write is harmless.
                ready_l[i] = ready_i
            # repro: mirror[lane-demand-path] end
            if is_write:
                retire += commit_cost
            else:
                new_retire = [0.0] * num_lanes
                for i in range(num_lanes):
                    next_retire = retire_l[i] + commit_cost
                    ready_i = ready_l[i]
                    new_retire[i] = (ready_i if ready_i > next_retire
                                     else next_retire)
                retire = np.array(new_retire, dtype=np.float64)
                llr = np.array(ready_l, dtype=np.float64)
            rlog[t + 1] = retire

            # End-of-record hook thresholds, bandit lanes only: the retire
            # value is recomputed with the same scalar add the vector path
            # performed, so the comparison is bit-exact.
            for i in bandit_lanes:
                retire_i = (retire_l[i] + commit_cost if is_write
                            else new_retire[i])
                if l2da >= hook_l2[i] or retire_i >= hook_cyc[i]:
                    fire_hook(i, retire_i, idx_l[t])

            if cp_stride and ((t + 1) % cp_stride == 0 or t + 1 == total):
                _lane_checkpoint(checkpoint_logs, t, idx_l[t], retire, l2da)

    # ------------------------------------------------------------- episode end
    total_instructions = idx_l[-1] if total else 0
    retire_final = retire.tolist()

    for i in range(num_lanes):
        if is_bandit[i]:
            # Trailing partial step (run_bandit_prefetch's flush).
            bandits[i].flush_step(
                PerformanceCounters(total_instructions, retire_final[i])
            )
            if collect_logs:
                log_step(i, total_instructions, retire_final[i])
        # hierarchy.finalize(): flush in-flight fills (heap order at +inf),
        # then count never-used prefetched L2 lines as wrong.
        heap = heaps[i]
        inflight_i = inflight[i]
        while heap:
            fill_block = heappop(heap)[1]
            entry = inflight_i.pop(fill_block, None)
            if entry is None:
                continue
            if entry < 0:
                ipf[i] -= 1
                fill_l2(i, fill_block, 1)
            else:
                fill_l2(i, fill_block, 0)
            fill_llc(i, fill_block, False)
        for cache_set in l2_sets[i]:
            for line in cache_set.values():
                if line & 1 and not line & 2:
                    pf_wrong[i] += 1

    results: List[PrefetchRunResult] = []
    for i, lane in enumerate(lanes):
        retire_i = retire_final[i]
        stats = HierarchyStats(
            loads=pre["loads"],
            stores=pre["stores"],
            l2_demand_accesses=l2da,
            l2_demand_hits=l2dh[i],
            llc_demand_accesses=llcda[i],
            llc_demand_hits=llcdh[i],
            dram_demand_fills=dram_fills[i],
            writebacks=writebacks[i],
            prefetch=PrefetchOutcome(
                issued=pf_issued[i],
                timely=pf_timely[i],
                late=pf_late[i],
                wrong=pf_wrong[i],
                dropped=pf_dropped[i],
            ),
        )
        if lane.kind == "bandit":
            arm_history = list(algorithms[i].selection_history)
            arm_trace = arm_traces[i]
        elif lane.kind == "arm":
            arm_history = [lane.arm]
            arm_trace = []
        else:
            arm_history = []
            arm_trace = []
        results.append(PrefetchRunResult(
            ipc=total_instructions / retire_i if retire_i else 0.0,
            instructions=total_instructions,
            cycles=retire_i,
            stats=stats,
            arm_history=arm_history,
            arm_trace=arm_trace,
            records=total,
        ))
    return results, checkpoint_logs, step_logs
