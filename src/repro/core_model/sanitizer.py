"""Runtime equivalence sanitizer for the dual replay paths.

The replay engine keeps two implementations of the same semantics: the
allocation-free fused kernel (:mod:`repro.core_model.replay_kernel`) and
the object path (``TraceCore.execute`` + ``CacheHierarchy``). The static
side of that contract is rule R10 (mirror drift); this module is the
dynamic side: with ``REPRO_SANITIZE=1`` (or ``--sanitize`` on the
experiment CLI), every compiled-trace replay also runs the same trace
through the object path on a shadow copy of the stack and asserts
step-by-step equality — per-checkpoint instruction counts, cycles, IPC
and L2 demand accesses, and (for bandit runs) the per-step arm choices
and DUCB state. The first divergence aborts the run with a report naming
the step, the field, and both values.

This is a debugging/verification mode: it replays every trace twice and
checkpoints frequently, so expect roughly 2-3x the runtime. Run it after
touching any ``repro: mirror``-tagged region, then refresh the manifest
with ``python -m repro.analysis --update-mirrors``.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core_model.trace_core import TraceCore
    from repro.workloads.compiled import CompiledTrace

#: Environment variable that switches the sanitizer on globally.
SANITIZE_ENV = "REPRO_SANITIZE"

#: Target number of mid-run checkpoints per hook-free sanitized replay.
_CHECKPOINTS = 64


def sanitize_enabled() -> bool:
    """Is ``REPRO_SANITIZE`` set to a truthy value?"""
    # The sanitizer only *checks* dual-path equivalence (and raises on
    # divergence); it never changes what a task returns.
    # repro: cache-invariant[REPRO_SANITIZE]
    value = os.environ.get(SANITIZE_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


@dataclass(frozen=True)
class StepRecord:
    """One comparison checkpoint from either replay path.

    For hook-free replays ``step`` counts records; for bandit runs it
    counts bandit steps (with ``-1`` marking the post-flush final state).
    The bandit-only fields stay ``None`` in hook-free replays.
    """

    step: int
    instructions: int
    cycles: float
    ipc: float
    l2_demand_accesses: int
    arm: Optional[int] = None
    reward_estimates: Optional[Tuple[float, ...]] = None
    selection_counts: Optional[Tuple[float, ...]] = None


@dataclass(frozen=True)
class SMTStepRecord:
    """One comparison checkpoint from either SMT simulation path.

    For static runs ``step`` counts Hill-Climbing epochs. For bandit runs
    the log interleaves per-epoch records with one per-bandit-step record
    (the latter carries the chosen arm and, for algorithms that expose
    them, the estimator state, so DUCB estimates are compared
    bit-for-bit). The bandit-only fields stay ``None`` in static runs.
    """

    step: int
    committed0: int
    committed1: int
    cycles: float
    ipc: float
    arm: Optional[int] = None
    reward_estimates: Optional[Tuple[float, ...]] = None
    selection_counts: Optional[Tuple[float, ...]] = None


#: Any checkpoint record type :func:`compare_step_logs` accepts.
AnyStepRecord = Union[StepRecord, SMTStepRecord]


class SanitizeDivergence(AssertionError):
    """The two replay paths disagreed; carries the first divergence."""

    def __init__(
        self,
        context: str,
        step: int,
        field_name: str,
        kernel_value: object,
        object_value: object,
    ) -> None:
        self.context = context
        self.step = step
        self.field_name = field_name
        self.kernel_value = kernel_value
        self.object_value = object_value
        super().__init__(
            f"sanitize[{context}]: replay paths diverged at step {step}, "
            f"field {field_name!r}: kernel path produced "
            f"{kernel_value!r}, object path produced {object_value!r}"
        )


def compare_step_logs(
    kernel_log: Sequence[AnyStepRecord],
    object_log: Sequence[AnyStepRecord],
    context: str,
) -> None:
    """Raise :class:`SanitizeDivergence` at the first differing field.

    Works for any checkpoint record dataclass (prefetch ``StepRecord``,
    SMT ``SMTStepRecord``): fields are taken from the kernel-side record.
    """
    for kernel_step, object_step in zip(kernel_log, object_log):
        for record_field in fields(kernel_step):
            kernel_value = getattr(kernel_step, record_field.name)
            object_value = getattr(object_step, record_field.name)
            if kernel_value != object_value:
                raise SanitizeDivergence(
                    context, kernel_step.step, record_field.name,
                    kernel_value, object_value,
                )
    if len(kernel_log) != len(object_log):
        raise SanitizeDivergence(
            context, min(len(kernel_log), len(object_log)),
            "checkpoint count", len(kernel_log), len(object_log),
        )


def snapshot(step: int, core: "TraceCore") -> StepRecord:
    """Checkpoint the core-visible state both paths must agree on."""
    return StepRecord(
        step=step,
        instructions=core.instructions,
        cycles=core.retire_time,
        ipc=core.ipc,
        l2_demand_accesses=core.hierarchy.stats.l2_demand_accesses,
    )


def _compare_stats(
    kernel_core: "TraceCore", object_core: "TraceCore", context: str
) -> None:
    """Final hierarchy-stats comparison, field by field."""
    kernel_stats = kernel_core.hierarchy.stats
    object_stats = object_core.hierarchy.stats
    for stats_field in fields(kernel_stats):
        kernel_value = getattr(kernel_stats, stats_field.name)
        object_value = getattr(object_stats, stats_field.name)
        if kernel_value != object_value:
            raise SanitizeDivergence(
                context, -1, f"stats.{stats_field.name}",
                kernel_value, object_value,
            )


def verify_lane_batch(
    trace: "CompiledTrace",
    lanes: Sequence[object],
    results: Sequence[object],
    checkpoint_logs: Sequence[Sequence[StepRecord]],
    step_logs: dict,
    hierarchy_config: object,
    core_config: object,
    params: object,
    kernel_mode: str = "array",
) -> None:
    """Prove every batched-kernel lane equals the object path, lane by lane.

    The lane kernel (:mod:`repro.core_model.lane_kernel`) advances N
    independent replay lanes through one fused loop; this is its dynamic
    equivalence proof. Each lane is re-run through the object path
    (``TraceCore.execute`` on a fresh stack, plus the inline bandit loop
    for bandit lanes) and compared:

    - per-checkpoint instructions / cycles / IPC / L2 demand accesses
      (same record stride the kernel checkpoints at),
    - for bandit lanes, the per-step arm choices and DUCB estimator state
      (reward estimates and selection counts, bit for bit),
    - the final hierarchy stats, the result scalars, and the arm trace.

    ``kernel_mode`` names the kernel variant under test (``"array"`` or
    ``"dict"``) so a divergence report says which implementation failed.

    Raises :class:`SanitizeDivergence` naming the lane, step and field at
    the first disagreement.
    """
    # Function-local imports: sanitizer is imported by trace_core and the
    # experiment runners, so the experiment/uncore layers cannot be
    # imported at module scope without a cycle.
    from repro.bandit.hardware import MicroArmedBandit
    from repro.core_model.trace_core import TraceCore
    from repro.experiments.configs import prefetch_bandit_algorithm
    from repro.prefetch.ensemble import EnsemblePrefetcher
    from repro.uncore.hierarchy import CacheHierarchy

    records = trace.to_records()
    total = len(records)
    stride = max(1, total // _CHECKPOINTS)

    for lane_index, lane in enumerate(lanes):
        kind = lane.kind  # type: ignore[attr-defined]
        context = f"lane_kernel[{kernel_mode}][lane={lane_index}:{kind}]"
        bandit = None
        algorithm = None
        ensemble = None
        if kind == "none":
            hierarchy = CacheHierarchy(hierarchy_config)
        elif kind == "arm":
            ensemble = EnsemblePrefetcher()
            ensemble.set_arm(lane.arm)  # type: ignore[attr-defined]
            hierarchy = CacheHierarchy(hierarchy_config, l2_prefetcher=ensemble)
        else:
            ensemble = EnsemblePrefetcher(
                num_stride_trackers=params.num_stride_trackers,
                num_stream_trackers=params.num_stream_trackers,
            )
            hierarchy = CacheHierarchy(hierarchy_config, l2_prefetcher=ensemble)
        core = TraceCore(hierarchy, core_config)
        stats = hierarchy.stats

        object_steps: List[StepRecord] = []
        arm_trace: List[tuple] = []
        pending_arm = applied_arm = -1
        next_boundary = 0

        def log_step() -> None:
            object_steps.append(StepRecord(
                step=len(object_steps),
                instructions=core.instructions,
                cycles=core.retire_time,
                ipc=core.ipc,
                l2_demand_accesses=stats.l2_demand_accesses,
                arm=pending_arm,
                reward_estimates=tuple(algorithm.reward_estimates()),
                selection_counts=tuple(algorithm.selection_counts()),
            ))

        if kind == "bandit":
            algorithm = prefetch_bandit_algorithm(
                seed=lane.seed, params=params  # type: ignore[attr-defined]
            )
            bandit = MicroArmedBandit(
                algorithm,
                selection_latency_cycles=params.selection_latency_cycles,
            )
            bandit.reset_counters(core.counters())
            pending_arm = bandit.begin_step(core.retire_time)
            applied_arm = pending_arm
            ensemble.set_arm(pending_arm)
            arm_trace.append((0.0, pending_arm))
            next_boundary = params.step_l2_accesses
            log_step()

        object_checkpoints: List[StepRecord] = []
        replayed = 0
        for record in records:
            core.execute(record)
            replayed += 1
            if bandit is not None:
                if (pending_arm != applied_arm
                        and core.retire_time >= bandit.selection_ready_cycle):
                    ensemble.set_arm(pending_arm)
                    applied_arm = pending_arm
                if stats.l2_demand_accesses >= next_boundary:
                    next_boundary = (
                        stats.l2_demand_accesses + params.step_l2_accesses
                    )
                    bandit.end_step(core.counters())
                    pending_arm = bandit.begin_step(core.retire_time)
                    arm_trace.append((core.retire_time, pending_arm))
                    log_step()
            if replayed % stride == 0 or replayed == total:
                object_checkpoints.append(snapshot(replayed, core))

        if bandit is not None:
            bandit.flush_step(core.counters())
            log_step()
        hierarchy.finalize()

        compare_step_logs(
            checkpoint_logs[lane_index], object_checkpoints, context=context
        )
        if kind == "bandit":
            compare_step_logs(
                step_logs.get(lane_index, []), object_steps,
                context=f"{context}:bandit-step",
            )

        result = results[lane_index]
        for name, object_value in (
            ("ipc", core.ipc),
            ("instructions", core.instructions),
            ("cycles", core.cycles),
        ):
            kernel_value = getattr(result, name)
            if kernel_value != object_value:
                raise SanitizeDivergence(
                    context, -1, name, kernel_value, object_value
                )
        for stats_field in fields(stats):
            kernel_value = getattr(result.stats, stats_field.name)
            object_value = getattr(stats, stats_field.name)
            if kernel_value != object_value:
                raise SanitizeDivergence(
                    context, -1, f"stats.{stats_field.name}",
                    kernel_value, object_value,
                )
        if kind == "bandit":
            if result.arm_history != list(algorithm.selection_history):
                raise SanitizeDivergence(
                    context, -1, "arm_history",
                    result.arm_history, list(algorithm.selection_history),
                )
            if result.arm_trace != arm_trace:
                raise SanitizeDivergence(
                    context, -1, "arm_trace", result.arm_trace, arm_trace
                )


def run_sanitized_replay(
    core: "TraceCore",
    trace: "CompiledTrace",
    max_records: Optional[int] = None,
    shadow: Optional["TraceCore"] = None,
) -> None:
    """Replay ``trace`` on ``core`` (kernel) and ``shadow`` (object path).

    ``shadow`` must be an independent but identically configured stack;
    when ``None`` it is deep-copied from ``core`` before the replay (which
    is correct for self-contained stacks, but callers whose prefetchers
    close over external state — e.g. Pythia's bandwidth probe — must build
    and pass their own shadow).
    """
    if shadow is None:
        shadow = copy.deepcopy(core)

    total = len(trace)
    if max_records is not None and max_records < total:
        total = max_records
    stride = max(1, total // _CHECKPOINTS)

    kernel_log: List[StepRecord] = []
    seen = 0

    def checkpoint_hook(hook_core: "TraceCore") -> None:
        nonlocal seen
        seen += 1
        if seen % stride == 0 or seen == total:
            kernel_log.append(snapshot(seen, hook_core))

    core.run_compiled(
        trace, max_records=max_records, record_hook=checkpoint_hook,
        sanitize=False,
    )

    object_log: List[StepRecord] = []
    replayed = 0
    for record in trace.to_records():
        if replayed >= total:
            break
        shadow.execute(record)
        replayed += 1
        if replayed % stride == 0 or replayed == total:
            object_log.append(snapshot(replayed, shadow))

    compare_step_logs(kernel_log, object_log, context="run_compiled")
    _compare_stats(core, shadow, context="run_compiled")
