"""Trace-driven out-of-order core timing model (ChampSim-style substrate)."""

from repro.core_model.multicore import MulticoreSystem
from repro.core_model.trace_core import CoreConfig, TraceCore

__all__ = ["CoreConfig", "MulticoreSystem", "TraceCore"]
