"""Multi-core wrapper: N trace cores over a shared LLC and DRAM channel.

Cores advance in interleaved order — at every step the core whose local
clock is furthest behind executes its next record — so shared-resource
contention (LLC capacity, DRAM bandwidth) is resolved in approximately
global time order, which is what creates the inter-core interference the
§4.3 round-robin restart targets.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core_model.trace_core import CoreConfig, TraceCore
from repro.uncore.cache import Cache
from repro.uncore.dram import DRAMModel
from repro.uncore.hierarchy import CacheHierarchy, HierarchyConfig
from repro.prefetch.base import Prefetcher
from repro.workloads.trace import TraceRecord


class MulticoreSystem:
    """N private L1/L2 hierarchies sharing one LLC and one DRAM channel."""

    def __init__(
        self,
        num_cores: int,
        config: HierarchyConfig = HierarchyConfig(),
        core_config: CoreConfig = CoreConfig(),
        l2_prefetchers: Optional[Sequence[Optional[Prefetcher]]] = None,
    ) -> None:
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        if l2_prefetchers is None:
            l2_prefetchers = [None] * num_cores
        if len(l2_prefetchers) != num_cores:
            raise ValueError("need one prefetcher slot per core")
        self.num_cores = num_cores
        # The paper sizes the LLC per core (2 MB/core, Table 4).
        self.shared_llc = Cache(
            "LLC",
            config.llc_size_bytes * num_cores,
            config.llc_ways,
            config.block_bytes,
        )
        self.shared_dram = DRAMModel(
            latency_cycles=config.dram_latency,
            mtps=config.dram_mtps,
            core_frequency_ghz=config.core_frequency_ghz,
        )
        self.hierarchies: List[CacheHierarchy] = []
        self.cores: List[TraceCore] = []
        for index in range(num_cores):
            hierarchy = CacheHierarchy(
                config,
                l2_prefetcher=l2_prefetchers[index],
                shared_llc=self.shared_llc,
                shared_dram=self.shared_dram,
            )
            self.hierarchies.append(hierarchy)
            self.cores.append(TraceCore(hierarchy, core_config, f"core{index}"))

    def run(
        self,
        traces: Sequence[Sequence[TraceRecord]],
        per_record_hook: Optional[Callable[[int, TraceCore], None]] = None,
    ) -> None:
        """Interleave the traces across cores until all are consumed.

        ``per_record_hook(core_index, core)`` fires after each record —
        experiment runners use it to drive per-core Bandit agents.
        """
        if len(traces) != self.num_cores:
            raise ValueError(
                f"need {self.num_cores} traces, got {len(traces)}"
            )
        positions = [0] * self.num_cores
        lengths = [len(trace) for trace in traces]
        active = [length > 0 for length in lengths]
        while any(active):
            # Pick the laggard core so shared-resource access stays roughly
            # ordered in global time.
            core_index = min(
                (index for index in range(self.num_cores) if active[index]),
                key=lambda index: self.cores[index].retire_time,
            )
            record = traces[core_index][positions[core_index]]
            self.cores[core_index].execute(record)
            positions[core_index] += 1
            if positions[core_index] >= lengths[core_index]:
                active[core_index] = False
            if per_record_hook is not None:
                per_record_hook(core_index, self.cores[core_index])
        for hierarchy in self.hierarchies:
            hierarchy.finalize()

    def total_ipc(self) -> float:
        """Sum of per-core IPCs — the 4-core metric of §6.4."""
        return sum(core.ipc for core in self.cores)
