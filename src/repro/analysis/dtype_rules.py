"""R13: numpy dtype/overflow contracts on kernel arrays.

The batched kernels pack cache-line state into small integers (the lane
kernel's L2 lines budget three bits: prefetched/used/dirty) and accumulate
statistics in float64 columns. Nothing at runtime checks either invariant:
``line | 8`` silently grows a fourth bit, ``np.array(xs)`` silently picks
a dtype from its contents, and a float32 reduction quietly halves the
precision every figure depends on.

R13 makes the invariants declarable and statically checked. A comment

    # repro: dtype[retire: float64]
    # repro: dtype[l2_line: int bits<=3]

binds a contract to the innermost enclosing function (nested defs
included — closures share their parent's arrays) or to the module. Every
assignment to, element-store into, or bitwise op on a contracted name is
then checked for:

- **implicit dtype** — ``np.array``/``asarray``/``ascontiguousarray``
  without an explicit ``dtype=`` on a contracted name;
- **mismatch/downcast** — constructing or storing a value whose inferred
  dtype disagrees with the contract (``np.zeros`` defaults to float64;
  ``.astype``/``dtype=`` are read exactly; true division is float64);
- **mixed promotion** — a binary op between two contracted names of
  different dtype families;
- **bit budget** — ``bits<=N`` contracts reject set/test masks and stored
  constants at or above ``2**N``, and any constant left-shift (which can
  always exceed the budget on a nonzero value).

The checker never executes code and only fires where it can *prove* a
contract violation from the syntax tree; expressions it cannot type are
skipped, not guessed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.core import Finding, ParsedModule
from repro.analysis.rules import Rule

#: The ``repro: dtype`` contract marker — one contract per bracket pair.
_CONTRACT_RE = re.compile(
    r"#\s*repro:\s*dtype\[([A-Za-z_][A-Za-z0-9_]*)\s*:\s*([^\]]+)\]"
)

#: Known dtype tokens -> (family, item bits or None for unsized).
_DTYPES: Dict[str, Tuple[str, Optional[int]]] = {
    "float64": ("float", 64),
    "float32": ("float", 32),
    "float16": ("float", 16),
    "float": ("float", None),
    "int64": ("int", 64),
    "int32": ("int", 32),
    "int16": ("int", 16),
    "int8": ("int", 8),
    "uint64": ("uint", 64),
    "uint32": ("uint", 32),
    "uint16": ("uint", 16),
    "uint8": ("uint", 8),
    "int": ("int", None),
    "bool": ("bool", 8),
}

#: numpy constructors whose default dtype is float64.
_FLOAT_CTORS = frozenset({"zeros", "ones", "empty", "full"})
#: numpy constructors that infer their dtype from the data.
_ARRAY_CTORS = frozenset({"array", "asarray", "ascontiguousarray", "asanyarray"})

#: Sentinel for "array constructor with no explicit dtype".
_IMPLICIT = "<implicit>"
#: Sentinel for a plain Python int expression (fits any int family).
_PYINT = "<pyint>"


@dataclass(frozen=True)
class Contract:
    """One declared dtype invariant, scoped by source-line span."""

    name: str
    dtype: str  #: token from :data:`_DTYPES`
    bits: Optional[int]  #: packed-value bit budget, if declared
    start: int  #: first line of the owning scope
    end: int  #: last line of the owning scope
    comment_line: int


def _at(line: int) -> ast.AST:
    """A placeholder node so comment-line findings can use ``finding()``."""
    node = ast.Pass()
    node.lineno = line
    node.col_offset = 0
    return node


def _scope_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


def _module_int_constants(tree: ast.Module) -> Dict[str, int]:
    """Module-level ``NAME = <int>`` bindings, for mask folding."""
    consts: Dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
            value = node.value.value
            if isinstance(value, int) and not isinstance(value, bool):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        consts[target.id] = value
    return consts


def _fold_int(expr: ast.expr, consts: Dict[str, int]) -> Optional[int]:
    """Fold ``expr`` to an int where it is statically constant."""
    if isinstance(expr, ast.Constant):
        value = expr.value
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        return None
    if isinstance(expr, ast.Name):
        return consts.get(expr.id)
    if isinstance(expr, ast.UnaryOp):
        inner = _fold_int(expr.operand, consts)
        if inner is None:
            return None
        if isinstance(expr.op, ast.USub):
            return -inner
        if isinstance(expr.op, ast.Invert):
            return ~inner
        return None
    if isinstance(expr, ast.BinOp):
        left = _fold_int(expr.left, consts)
        right = _fold_int(expr.right, consts)
        if left is None or right is None:
            return None
        if isinstance(expr.op, ast.BitOr):
            return left | right
        if isinstance(expr.op, ast.BitAnd):
            return left & right
        if isinstance(expr.op, ast.BitXor):
            return left ^ right
        if isinstance(expr.op, ast.Add):
            return left + right
        if isinstance(expr.op, ast.Sub):
            return left - right
        if isinstance(expr.op, ast.Mult):
            return left * right
        if isinstance(expr.op, ast.LShift) and right >= 0:
            return left << right
        return None
    return None


class DtypeContractRule(Rule):
    """R13: check ``# repro: dtype[...]`` contracts on kernel arrays."""

    code = "R13"
    name = "dtype-contract"
    description = (
        "arrays annotated with '# repro: dtype[name: spec]' must keep their "
        "declared dtype; packed-int ops must stay inside the declared bit "
        "budget"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        contracts, errors = self._parse_contracts(module)
        yield from errors
        if not contracts:
            return
        consts = _module_int_constants(module.tree)
        for node in ast.walk(module.tree):
            yield from self._check_node(module, node, contracts, consts)

    # ------------------------------------------------------------ contracts

    def _parse_contracts(
        self, module: ParsedModule
    ) -> Tuple[List[Contract], List[Finding]]:
        spans = _scope_spans(module.tree)
        contracts: List[Contract] = []
        errors: List[Finding] = []
        # Match real comment tokens only — the contract syntax quoted in a
        # docstring (this module's own, say) must not bind anything.
        comments: List[Tuple[int, str]] = []
        try:
            for token in tokenize.generate_tokens(
                io.StringIO(module.source).readline
            ):
                if token.type == tokenize.COMMENT:
                    comments.append((token.start[0], token.string))
        except tokenize.TokenError:  # pragma: no cover - ast parsed already
            comments = list(enumerate(module.lines, start=1))
        for lineno, text in comments:
            for match in _CONTRACT_RE.finditer(text):
                name, spec = match.group(1), match.group(2)
                parsed = self._parse_spec(module, lineno, name, spec, errors)
                if parsed is None:
                    continue
                dtype, bits = parsed
                start, end = 1, len(module.lines)
                for span in spans:
                    if span[0] <= lineno <= span[1]:
                        if span[0] > start:
                            start, end = span
                contracts.append(
                    Contract(name, dtype, bits, start, end, lineno)
                )
        return contracts, errors

    def _parse_spec(
        self,
        module: ParsedModule,
        lineno: int,
        name: str,
        spec: str,
        errors: List[Finding],
    ) -> Optional[Tuple[str, Optional[int]]]:
        tokens = spec.split()
        if not tokens or tokens[0] not in _DTYPES:
            errors.append(module.finding(
                self.code, _at(lineno),
                f"unknown dtype '{tokens[0] if tokens else spec}' in "
                f"contract for '{name}'",
            ))
            return None
        dtype = tokens[0]
        family, item_bits = _DTYPES[dtype]
        bits: Optional[int] = None
        for token in tokens[1:]:
            budget = re.fullmatch(r"bits<=(\d+)", token)
            if budget is None:
                errors.append(module.finding(
                    self.code, _at(lineno),
                    f"unrecognized contract clause '{token}' for '{name}'",
                ))
                return None
            bits = int(budget.group(1))
        if bits is not None:
            if family not in ("int", "uint"):
                errors.append(module.finding(
                    self.code, _at(lineno),
                    f"bit budget on non-integer dtype '{dtype}' for '{name}'",
                ))
                return None
            if bits <= 0 or (item_bits is not None and bits > item_bits):
                errors.append(module.finding(
                    self.code, _at(lineno),
                    f"bit budget bits<={bits} exceeds {dtype} width for "
                    f"'{name}'",
                ))
                return None
        return dtype, bits

    # --------------------------------------------------------------- lookup

    @staticmethod
    def _contract_for(
        contracts: List[Contract], name: str, line: int
    ) -> Optional[Contract]:
        best: Optional[Contract] = None
        for contract in contracts:
            if contract.name == name and contract.start <= line <= contract.end:
                if best is None or contract.start >= best.start:
                    best = contract
        return best

    @staticmethod
    def _contracted_target(
        contracts: List[Contract], expr: ast.expr
    ) -> Optional[Tuple[Contract, bool]]:
        """(contract, is_element) for a Name or Subscript-of-Name."""
        if isinstance(expr, ast.Name):
            contract = DtypeContractRule._contract_for(
                contracts, expr.id, expr.lineno
            )
            return (contract, False) if contract is not None else None
        if isinstance(expr, ast.Subscript) and isinstance(
            expr.value, ast.Name
        ):
            contract = DtypeContractRule._contract_for(
                contracts, expr.value.id, expr.lineno
            )
            return (contract, True) if contract is not None else None
        return None

    # ------------------------------------------------------------ inference

    def _infer(
        self, expr: ast.expr, contracts: List[Contract]
    ) -> Optional[str]:
        """dtype token, :data:`_PYINT`, :data:`_IMPLICIT`, or ``None``."""
        if isinstance(expr, ast.Constant):
            value = expr.value
            if isinstance(value, bool):
                return "bool"
            if isinstance(value, int):
                return _PYINT
            if isinstance(value, float):
                return "float64"
            return None
        if isinstance(expr, ast.Name):
            contract = self._contract_for(contracts, expr.id, expr.lineno)
            return contract.dtype if contract is not None else None
        if isinstance(expr, ast.Subscript):
            if isinstance(expr.value, ast.Name):
                contract = self._contract_for(
                    contracts, expr.value.id, expr.lineno
                )
                return contract.dtype if contract is not None else None
            return None
        if isinstance(expr, ast.UnaryOp):
            return self._infer(expr.operand, contracts)
        if isinstance(expr, ast.IfExp):
            body = self._infer(expr.body, contracts)
            orelse = self._infer(expr.orelse, contracts)
            return body if body == orelse else None
        if isinstance(expr, ast.BinOp):
            if isinstance(expr.op, ast.Div):
                return "float64"
            left = self._infer(expr.left, contracts)
            right = self._infer(expr.right, contracts)
            if left == right:
                return left
            if left == _PYINT:
                return right
            if right == _PYINT:
                return left
            return None
        if isinstance(expr, ast.Call):
            return self._infer_call(expr, contracts)
        return None

    def _infer_call(
        self, call: ast.Call, contracts: List[Contract]
    ) -> Optional[str]:
        dtype_kw = next(
            (kw.value for kw in call.keywords if kw.arg == "dtype"), None
        )
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr == "astype":
                if call.args:
                    return self._dtype_token(call.args[0])
                return self._dtype_token(dtype_kw) if dtype_kw else None
            if attr in _FLOAT_CTORS:
                if dtype_kw is not None:
                    return self._dtype_token(dtype_kw)
                return "float64"
            if attr in _ARRAY_CTORS:
                if dtype_kw is not None:
                    return self._dtype_token(dtype_kw)
                return _IMPLICIT
        elif isinstance(call.func, ast.Name):
            if call.func.id in _FLOAT_CTORS:
                return (
                    self._dtype_token(dtype_kw)
                    if dtype_kw is not None else "float64"
                )
            if call.func.id in _ARRAY_CTORS:
                return (
                    self._dtype_token(dtype_kw)
                    if dtype_kw is not None else _IMPLICIT
                )
        return None

    @staticmethod
    def _dtype_token(expr: Optional[ast.expr]) -> Optional[str]:
        """``np.float64`` / ``"float64"`` / ``float`` -> a dtype token."""
        if expr is None:
            return None
        if isinstance(expr, ast.Attribute) and expr.attr in _DTYPES:
            return expr.attr
        if isinstance(expr, ast.Name) and expr.id in _DTYPES:
            return expr.id
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value if expr.value in _DTYPES else None
        return None

    # --------------------------------------------------------------- checks

    @staticmethod
    def _compatible(contract: Contract, inferred: str, element: bool) -> bool:
        if inferred == _PYINT:
            # Element stores widen a Python int into any numeric cell;
            # rebinding the whole name to a scalar int is only fine when
            # the contract is an integer family.
            if element:
                return True
            return _DTYPES[contract.dtype][0] in ("int", "uint", "bool")
        if inferred not in _DTYPES:
            return True  # unknown inference: never guess
        family, size = _DTYPES[inferred]
        want_family, want_size = _DTYPES[contract.dtype]
        if element:
            # Element stores cast implicitly; only cross-family stores
            # (float into int, int array into float accumulator is fine)
            # lose information we can prove.
            if want_family in ("int", "uint", "bool"):
                return family in ("int", "uint", "bool")
            return True
        if family != want_family and not (
            {family, want_family} <= {"int", "uint"}
        ):
            return False
        if want_size is not None and (size != want_size or family != want_family):
            return False
        return True

    def _check_node(
        self,
        module: ParsedModule,
        node: ast.AST,
        contracts: List[Contract],
        consts: Dict[str, int],
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                yield from self._check_store(
                    module, target, node.value, contracts, consts
                )
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            yield from self._check_store(
                module, node.target, node.value, contracts, consts
            )
        elif isinstance(node, ast.AugAssign):
            yield from self._check_aug(module, node, contracts, consts)
        elif isinstance(node, ast.BinOp):
            yield from self._check_binop(module, node, contracts, consts)

    def _check_store(
        self,
        module: ParsedModule,
        target: ast.expr,
        value: ast.expr,
        contracts: List[Contract],
        consts: Dict[str, int],
    ) -> Iterator[Finding]:
        bound = self._contracted_target(contracts, target)
        if bound is None:
            return
        contract, element = bound
        inferred = self._infer(value, contracts)
        if inferred == _IMPLICIT:
            yield module.finding(
                self.code, value,
                f"'{contract.name}' is contracted {contract.dtype} but this "
                "array constructor has no explicit dtype= (numpy will infer "
                "one from the data)",
            )
            return
        if inferred is not None and not self._compatible(
            contract, inferred, element
        ):
            kind = "element store" if element else "assignment"
            yield module.finding(
                self.code, value,
                f"{kind} of {inferred} value into '{contract.name}' "
                f"(contracted {contract.dtype})",
            )
        if contract.bits is not None:
            folded = _fold_int(value, consts)
            if folded is not None and not 0 <= folded < (1 << contract.bits):
                yield module.finding(
                    self.code, value,
                    f"constant {folded} stored into '{contract.name}' "
                    f"exceeds its {contract.bits}-bit budget",
                )

    def _check_aug(
        self,
        module: ParsedModule,
        node: ast.AugAssign,
        contracts: List[Contract],
        consts: Dict[str, int],
    ) -> Iterator[Finding]:
        bound = self._contracted_target(contracts, node.target)
        if bound is None:
            return
        contract, element = bound
        inferred = self._infer(node.value, contracts)
        if (
            inferred in _DTYPES
            and _DTYPES[inferred][0] == "float"
            and _DTYPES[contract.dtype][0] in ("int", "uint")
        ):
            yield module.finding(
                self.code, node,
                f"float operand folded into '{contract.name}' "
                f"(contracted {contract.dtype})",
            )
        if contract.bits is None:
            return
        if isinstance(node.op, ast.LShift):
            folded = _fold_int(node.value, consts)
            if folded is not None and folded > 0:
                yield module.finding(
                    self.code, node,
                    f"left shift by {folded} can push '{contract.name}' past "
                    f"its {contract.bits}-bit budget",
                )
            return
        if isinstance(node.op, (ast.BitOr, ast.Add)):
            folded = _fold_int(node.value, consts)
            if folded is not None and folded >= (1 << contract.bits):
                yield module.finding(
                    self.code, node,
                    f"constant {folded} exceeds the {contract.bits}-bit "
                    f"budget of '{contract.name}'",
                )

    def _check_binop(
        self,
        module: ParsedModule,
        node: ast.BinOp,
        contracts: List[Contract],
        consts: Dict[str, int],
    ) -> Iterator[Finding]:
        # Mixed-family promotion between two contracted arrays.
        if isinstance(node.left, ast.Name) and isinstance(node.right, ast.Name):
            left = self._contract_for(contracts, node.left.id, node.lineno)
            right = self._contract_for(contracts, node.right.id, node.lineno)
            if left is not None and right is not None:
                lf, rf = _DTYPES[left.dtype][0], _DTYPES[right.dtype][0]
                if lf != rf and not ({lf, rf} <= {"int", "uint"}):
                    yield module.finding(
                        self.code, node,
                        f"mixed-dtype op between '{left.name}' ({left.dtype}) "
                        f"and '{right.name}' ({right.dtype}) promotes "
                        "implicitly",
                    )
        # Bit-budget masks: <contracted> | C, <contracted> & C (either order).
        if not isinstance(node.op, (ast.BitOr, ast.BitAnd)):
            return
        for operand, other in (
            (node.left, node.right), (node.right, node.left)
        ):
            bound = self._contracted_target(contracts, operand)
            if bound is None or bound[0].bits is None:
                continue
            contract = bound[0]
            folded = _fold_int(other, consts)
            if folded is not None and folded >= (1 << contract.bits):
                op = "|" if isinstance(node.op, ast.BitOr) else "&"
                yield module.finding(
                    self.code, node,
                    f"mask {folded} in '{contract.name} {op} ...' addresses "
                    f"bits outside the declared {contract.bits}-bit budget",
                )
                break
