"""Fidelity & determinism static analysis for the reproduction.

A custom AST-based linter with repo-specific rules that check, *before any
simulation runs*, the invariants the runtime test suite can only exercise:

- **R1 determinism** — no ambient RNG (module-level ``random.*`` /
  ``np.random.*`` calls, unseeded ``random.Random()``), no wall-clock reads
  (``time.time()``, ``datetime.now()``), no salted ``hash()`` seeding, and
  no iteration over set expressions (unordered across ``PYTHONHASHSEED``).
- **R2 paper-constant provenance** — Table 6/7 values bound to their
  parameter names in ``repro/bandit``, ``repro/smt`` and
  ``repro/experiments`` must come from :mod:`repro.constants`, never be
  re-typed inline.
- **R3 pickle safety** — task functions handed to the parallel runner
  (``Task(...)`` / ``run_parallel``) must be module-level functions;
  lambdas, closures and locally defined functions fail inside a worker
  only once ``--jobs > 1``.
- **R4 step hygiene** — a replay loop that calls ``observe()`` /
  ``end_step()`` must also reach ``flush_step()`` or ``cancel_selection()``
  so the trailing partial bandit step is never silently dropped (the PR 1
  bug class).
- **R5 float equality** — ``==``/``!=`` against float literals.
- **R6 mutable default arguments**.
- **R7 hot-loop hygiene** — ``# repro: hot`` functions must not allocate
  record objects or re-walk long attribute chains per loop iteration.

The project-wide rules run over an inter-procedural symbol table and call
graph (:mod:`repro.analysis.symbols` / :mod:`repro.analysis.callgraph`)
built from all scanned files at once:

- **R8 seed provenance** — every RNG construction must trace, through
  assignments, parameters (followed to every caller) and wrappers, back
  to :func:`repro.util.rng.derive_seed` or an explicit config seed; any
  entropy source (``hash()``, wall clock, ``os.urandom``/``getpid``,
  uuid/secrets) in the flow is flagged.
- **R9 constant provenance** — distinctive Table 6/7 *values* (e.g.
  γ = 0.999) re-derived outside :mod:`repro.constants`, even via local
  aliasing or literal arithmetic.
- **R10 mirror drift** — ``# repro: mirror[name]``-tagged kernel/object-
  path region pairs must change together; fingerprints are compared
  against the checked-in ``mirror-manifest.json`` (refresh with
  ``--update-mirrors`` after verifying with ``REPRO_SANITIZE=1``).
- **R11 cache-key completeness** — every input a pool worker consumes
  must reach its ``task_key`` fingerprint: no ``*args``/``**kwargs``
  workers, no worker-reachable env-var reads (unless waived with
  ``# repro: cache-invariant[NAME]`` for provably path-equivalent gates),
  no ``None``-defaulted worker parameters substituted downstream with a
  module constant the key never saw.
- **R12 worker purity** — a fixpoint effect system
  (:mod:`repro.analysis.effects`) classifies every function as pure /
  reads-env / writes-global / does-IO / spawns-RNG; functions reachable
  from a pool submission site must not write module-level state or
  construct unseeded RNGs (deliberate per-process memos are acknowledged
  with ``# repro: ignore[R12]``).
- **R13 dtype contracts** — ``# repro: dtype[name: spec]`` annotations on
  kernel arrays (e.g. ``float64`` accumulators, ``int bits<=3`` packed
  cache-line state) are checked per module: implicit ``np.array`` dtypes,
  cross-family stores, mixed-dtype promotion, and masks or shifts outside
  the declared bit budget.

The vectorization-soundness rules (:mod:`repro.analysis.array_rules`,
backed by the index-provenance dataflow in
:mod:`repro.analysis.index_flow`) guard the numpy lane kernels against
the aliasing hazards that fancy indexing makes silent:

- **R14 scatter aliasing** — any fancy-indexed read-modify-write
  (``arr[idx] += rhs`` or its spelled-out form) where ``idx`` cannot be
  proven duplicate-free must use the unbuffered ``np.<ufunc>.at`` or carry
  a ``# repro: unique-index[reason]`` waiver; the proof follows the index
  through assignments, helper returns and call sites back to sources like
  ``arange``/``flatnonzero``/``nonzero()[0]`` or boolean masks.
- **R15 view aliasing** — in-place updates whose right-hand side reads the
  same base array through an overlapping slice view; the read must be
  hoisted into an explicit copy so evaluation order is visible.
- **R16 lane coupling** — inside R10 mirror-tagged regions, cross-lane
  reductions (``sum``/``any``/``max`` … without a lane-preserving axis)
  must not flow into per-lane state; genuinely shared scalars are
  acknowledged with ``# repro: shared-scalar[name]``.
- **R17 mirror coverage** — every ``def`` in a ``*_kernel.py`` module that
  mutates non-local lane/state columns must sit inside some R10 mirror
  tag, or explain itself with ``# repro: mirror-exempt[reason]``.

Findings can be suppressed per line with ``# repro: ignore`` or
``# repro: ignore[R1,R4]``, or burned down incrementally through a checked
in baseline file (``--baseline``; prune dead entries with ``--prune``).

Run it as ``python -m repro.analysis src/`` (add ``--jobs N`` to fan the
per-module pass out over a process pool; ``--format json`` emits a
machine-readable report for CI artifacts).
"""

from repro.analysis.array_rules import ARRAY_RULES
from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.core import Finding, ParsedModule, default_rules, run_analysis
from repro.analysis.project_rules import PROJECT_RULES, ProjectRule
from repro.analysis.rules import ALL_RULES, Rule
from repro.analysis.symbols import Project, build_project

__all__ = [
    "ALL_RULES",
    "ARRAY_RULES",
    "Finding",
    "ParsedModule",
    "PROJECT_RULES",
    "Project",
    "ProjectRule",
    "Rule",
    "build_project",
    "default_rules",
    "load_baseline",
    "run_analysis",
    "write_baseline",
]
