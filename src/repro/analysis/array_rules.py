"""Vectorization-soundness rules R14–R17 for the numpy kernels.

The batched kernels (:mod:`repro.core_model.lane_kernel`,
:mod:`repro.core_model.smt_kernel`, :mod:`repro.core_model.replay_kernel`,
:mod:`repro.workloads.compiled`) buy their speed with numpy-wide state
updates whose classic failure modes are *silent*: a fancy-index ``+=``
collapses duplicate positions, an in-place update can read the array it
is writing through an overlapping view, and a whole-batch reduction can
couple lanes that the scalar reference path treats independently. The
runtime sanitizer only catches these on inputs a test happens to replay;
these rules prove them absent statically:

- **R14 scatter-aliasing** — ``arr[idx] op= rhs`` (or the spelled-out
  ``arr[idx] = arr[idx] op rhs``) where ``idx`` is not provably
  duplicate-free under the index-provenance dataflow
  (:mod:`repro.analysis.index_flow`). Use ``np.<ufunc>.at`` or annotate
  ``# repro: unique-index[reason]``.
- **R15 view-aliasing** — an in-place update (``op=``, a ufunc ``out=``,
  or a slice store) whose RHS reads the same base array through a
  different basic-slice view that cannot be proven disjoint. Hoist the
  read into an explicit copy.
- **R16 lane-coupling** — inside R10 mirror-tagged code, a cross-lane
  reduction (``sum``/``any``/``max``/... with no axis, or an axis
  including the lane axis 0) flowing into mutated state. Documented
  shared scalars are allowlisted or annotated
  ``# repro: shared-scalar[name]``.
- **R17 mirror-coverage** — a ``def`` in a ``*_kernel.py`` module that
  mutates state it did not create while no ``# repro: mirror[...]`` tag
  covers it: a fast path outside twin-tracking. Acknowledge deliberate
  shared engines with ``# repro: mirror-exempt[reason]``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.core import Finding, ParsedModule
from repro.analysis.index_flow import (
    classify_index_expr,
    comment_block_match,
    is_duplicate_free,
    unique_index_waiver,
)
from repro.analysis.mirrors import _MIRROR_RE
from repro.analysis.project_rules import ProjectRule
from repro.analysis.symbols import FunctionInfo, Project, iter_scopes

#: File basenames treated as kernel modules (plus any ``*_kernel.py``).
_KERNEL_BASENAMES = ("compiled.py",)

#: ``# repro: shared-scalar[name]`` — R16 waiver for documented scalars.
SHARED_SCALAR_RE = re.compile(r"#\s*repro:\s*shared-scalar\[([^\]]+)\]")

#: ``# repro: mirror-exempt[reason]`` — R17 acknowledgement on a def.
MIRROR_EXEMPT_RE = re.compile(r"#\s*repro:\s*mirror-exempt\[([^\]]+)\]")

#: Shared counters the scalar path also accumulates across lanes.
DEFAULT_SHARED_SCALARS = frozenset({"l2_demand_accesses"})

#: Reduction callables that collapse the lane axis when axis is absent
#: or includes 0.
_REDUCTIONS = frozenset({
    "sum", "any", "all", "max", "min", "argmax", "argmin", "mean",
    "prod", "median", "average", "count_nonzero", "cumsum", "cumprod",
})


def _basename(path: str) -> str:
    return path.rsplit("/", 1)[-1]


def is_kernel_path(path: str) -> bool:
    """Is this display path one of the audited kernel modules?"""
    name = _basename(path)
    return name.endswith("_kernel.py") or name in _KERNEL_BASENAMES


def _kernel_modules(
    project: Project,
) -> List[Tuple[str, ParsedModule]]:
    out = [
        (module_name, module)
        for module_name, module in sorted(project.modules.items())
        if is_kernel_path(module.path)
    ]
    return out


def _scope_spans(
    project: Project, module_name: str, module: ParsedModule
) -> List[Tuple[int, int, FunctionInfo]]:
    """(start, end, info) for every def in the module, by line span."""
    spans: List[Tuple[int, int, FunctionInfo]] = []
    for node, qname, _cls in iter_scopes(module_name, module.tree):
        info = project.functions.get(qname)
        if info is None:
            continue
        spans.append((node.lineno, node.end_lineno or node.lineno, info))
    return spans


def _scope_chain(
    spans: Sequence[Tuple[int, int, FunctionInfo]], line: int
) -> Tuple[FunctionInfo, ...]:
    """Enclosing functions of ``line``, innermost first."""
    containing = [span for span in spans if span[0] <= line <= span[1]]
    containing.sort(key=lambda span: (-span[0], span[1]))
    return tuple(info for _s, _e, info in containing)


def _comment_match(
    module: ParsedModule, line: int, pattern: re.Pattern
) -> Optional[str]:
    """First group of ``pattern`` at ``line`` or the comment block above."""
    return comment_block_match(module, line, pattern)


def _root_name(expr: ast.expr) -> Optional[str]:
    """Leftmost ``Name`` of an attribute/subscript chain."""
    current = expr
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def _target_terminal(expr: ast.expr) -> Optional[str]:
    """Human name of a store target: last attribute / name component."""
    if isinstance(expr, ast.Subscript):
        return _target_terminal(expr.value)
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _walk_no_nested_defs(node: ast.AST) -> Iterator[ast.AST]:
    """Walk statements/expressions of a def without entering nested defs."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield child
        yield from _walk_no_nested_defs(child)


# ------------------------------------------------------------------ R14


class ScatterAliasingRule(ProjectRule):
    """R14: fancy-index read-modify-write needs a duplicate-free index.

    ``arr[idx] += rhs`` compiles to a gather, one add, and a scatter —
    when ``idx`` holds the same position twice, all but the last update
    are silently dropped, while the scalar reference path applies each
    one. Every such statement in a kernel module must have an index the
    provenance dataflow can prove duplicate-free (masks, ``np.arange``,
    the ``mask.nonzero()[0]`` idiom, slices, scalars, or subsets
    thereof), or switch to the unbuffered ``np.<ufunc>.at``, or carry a
    reviewed ``# repro: unique-index[reason]`` waiver.
    """

    code = "R14"
    name = "scatter-aliasing"
    description = "fancy-index RMW whose index is not provably duplicate-free"

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = build_callgraph(project)
        for module_name, module in _kernel_modules(project):
            spans = _scope_spans(project, module_name, module)
            for stmt in ast.walk(module.tree):
                target = self._rmw_target(stmt)
                if target is None:
                    continue
                yield from self._check_site(
                    project, graph, module_name, module, spans,
                    stmt, target,
                )

    @staticmethod
    def _rmw_target(stmt: ast.AST) -> Optional[ast.Subscript]:
        if isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.target, ast.Subscript
        ):
            return stmt.target
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Subscript)
        ):
            # The spelled-out RMW: ``arr[idx] = arr[idx] op rhs``.
            target = stmt.targets[0]
            base_dump = ast.dump(target.value)
            index_dump = ast.dump(target.slice)
            for node in ast.walk(stmt.value):
                if (
                    isinstance(node, ast.Subscript)
                    and ast.dump(node.value) == base_dump
                    and ast.dump(node.slice) == index_dump
                ):
                    return target
        return None

    def _check_site(
        self,
        project: Project,
        graph: CallGraph,
        module_name: str,
        module: ParsedModule,
        spans: Sequence[Tuple[int, int, FunctionInfo]],
        stmt: ast.AST,
        target: ast.Subscript,
    ) -> Iterator[Finding]:
        index = target.slice
        scopes = _scope_chain(spans, stmt.lineno)

        def labels_of(expr: ast.expr) -> Set[str]:
            return classify_index_expr(
                project, graph, module_name, scopes, expr
            )

        if isinstance(index, ast.Tuple):
            element_labels = [labels_of(element) for element in index.elts]
            if all(
                labels <= {"scalar", "slice"} for labels in element_labels
            ):
                return  # a single cell / rectangular basic region
            if any(labels == {"unique"} for labels in element_labels):
                return  # one duplicate-free component makes tuples distinct
            masks = [
                labels for labels in element_labels if labels == {"mask"}
            ]
            rest_basic = all(
                labels <= {"scalar", "slice", "mask"}
                for labels in element_labels
            )
            if len(masks) == 1 and rest_basic:
                return  # one boolean component, rest basic: duplicate-free
            origins = sorted(set().union(*element_labels))
        else:
            labels = labels_of(index)
            if is_duplicate_free(labels):
                return
            origins = sorted(labels)

        if unique_index_waiver(module, stmt.lineno) is not None:
            return
        base_name = _target_terminal(target) or "<array>"
        yield module.finding(
            self.code, stmt,
            f"fancy-index RMW on `{base_name}` with an index not provably "
            f"duplicate-free (origin: {', '.join(origins)}); duplicate "
            "positions silently collapse to one update — use "
            "`np.<ufunc>.at`, or annotate `# repro: unique-index[reason]` "
            "if duplicates are impossible",
        )


# ------------------------------------------------------------------ R15


def _const_slice_range(
    index: ast.expr,
) -> Optional[Tuple[Optional[int], Optional[int]]]:
    """``(lower, upper)`` of a slice with literal non-negative bounds."""
    if not isinstance(index, ast.Slice) or index.step is not None:
        return None
    bounds: List[Optional[int]] = []
    for bound in (index.lower, index.upper):
        if bound is None:
            bounds.append(None)
        elif isinstance(bound, ast.Constant) and isinstance(
            bound.value, int
        ) and bound.value >= 0:
            bounds.append(bound.value)
        else:
            return None
    return bounds[0], bounds[1]


def _provably_disjoint(a: ast.expr, b: ast.expr) -> bool:
    """Can two basic indices be proven to address disjoint regions?"""
    a_elements = a.elts if isinstance(a, ast.Tuple) else [a]
    b_elements = b.elts if isinstance(b, ast.Tuple) else [b]
    for dim_a, dim_b in zip(a_elements, b_elements):
        range_a = _const_slice_range(dim_a)
        range_b = _const_slice_range(dim_b)
        if range_a is not None and range_b is not None:
            low_a, up_a = range_a
            low_b, up_b = range_b
            if up_a is not None and low_b is not None and up_a <= low_b:
                return True
            if up_b is not None and low_a is not None and up_b <= low_a:
                return True
        if (
            isinstance(dim_a, ast.Constant)
            and isinstance(dim_b, ast.Constant)
            and dim_a.value != dim_b.value
        ):
            return True
    return False


class ViewAliasingRule(ProjectRule):
    """R15: in-place updates must not read their base through a view.

    ``x[1:] += x[:-1]`` (directly, through an alias name bound to a
    basic-slice view, or through a ufunc ``out=``) makes the update
    order-dependent in principle; numpy saves it only by detecting the
    overlap at runtime and buffering a hidden temporary. The kernels hoist
    such reads into explicit copies instead, so every remaining aliased
    read is a bug or an unbudgeted hidden copy. Fancy-indexed reads are
    copies by definition and never flagged.
    """

    code = "R15"
    name = "view-aliasing"
    description = "in-place update reading its own base through a view"

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = build_callgraph(project)
        for module_name, module in _kernel_modules(project):
            spans = _scope_spans(project, module_name, module)
            scopes = [info.node for _s, _e, info in spans]
            scopes.append(module.tree)
            for scope_node in scopes:
                yield from self._check_scope(
                    project, graph, module_name, module, spans, scope_node
                )

    def _check_scope(
        self,
        project: Project,
        graph: CallGraph,
        module_name: str,
        module: ParsedModule,
        spans: Sequence[Tuple[int, int, FunctionInfo]],
        scope_node: ast.AST,
    ) -> Iterator[Finding]:
        chain = (
            _scope_chain(spans, scope_node.lineno)
            if not isinstance(scope_node, ast.Module) else ()
        )

        def is_basic_index(index: ast.expr) -> bool:
            """Basic (view-producing) index: slices and scalars only."""
            elements = (
                index.elts if isinstance(index, ast.Tuple) else [index]
            )
            for element in elements:
                if isinstance(element, ast.Slice):
                    continue
                labels = classify_index_expr(
                    project, graph, module_name, chain, element
                )
                if labels != {"scalar"}:
                    return False
            return True

        # Alias map: name -> (base dump, index dump or None for the whole
        # array). Only provable views alias; fancy reads are copies.
        aliases: Dict[str, Tuple[str, Optional[str], Optional[ast.expr]]] = {}
        for node in _walk_no_nested_defs(scope_node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if isinstance(value, (ast.Name, ast.Attribute)):
                aliases[target.id] = (ast.dump(value), None, None)
            elif (
                isinstance(value, ast.Subscript)
                and is_basic_index(value.slice)
                and any(
                    isinstance(element, ast.Slice)
                    for element in (
                        value.slice.elts
                        if isinstance(value.slice, ast.Tuple)
                        else [value.slice]
                    )
                )
            ):
                # Only slice-bearing basic indices alias: an all-scalar
                # subscript of the kernels' 1-D columns is a value copy.
                aliases[target.id] = (
                    ast.dump(value.value), ast.dump(value.slice), value.slice
                )
            elif target.id in aliases:
                del aliases[target.id]  # rebound to a non-view

        def resolve_base(
            expr: ast.expr,
        ) -> Tuple[Set[str], Optional[ast.expr]]:
            """Base dumps ``expr`` may alias, plus its own index expr."""
            if isinstance(expr, ast.Subscript):
                bases = {ast.dump(expr.value)}
                if isinstance(expr.value, ast.Name):
                    alias = aliases.get(expr.value.id)
                    if alias is not None:
                        bases.add(alias[0])
                return bases, expr.slice
            bases = {ast.dump(expr)}
            index: Optional[ast.expr] = None
            if isinstance(expr, ast.Name):
                alias = aliases.get(expr.id)
                if alias is not None:
                    bases.add(alias[0])
                    index = alias[2]
            return bases, index

        for stmt in _walk_no_nested_defs(scope_node):
            if isinstance(stmt, ast.AugAssign):
                reads = [stmt.value]
                yield from self._check_update(
                    module, stmt, stmt.target, reads, resolve_base,
                    is_basic_index,
                )
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                if isinstance(stmt.targets[0], ast.Subscript):
                    yield from self._check_update(
                        module, stmt, stmt.targets[0], [stmt.value],
                        resolve_base, is_basic_index,
                    )
            elif isinstance(stmt, ast.Call):
                out = next(
                    (
                        kw.value for kw in stmt.keywords
                        if kw.arg == "out" and isinstance(
                            kw.value, (ast.Name, ast.Attribute, ast.Subscript)
                        )
                    ),
                    None,
                )
                if out is not None:
                    reads = [
                        *stmt.args,
                        *[kw.value for kw in stmt.keywords if kw.arg != "out"],
                    ]
                    yield from self._check_update(
                        module, stmt, out, reads, resolve_base,
                        is_basic_index,
                    )

    def _check_update(
        self,
        module: ParsedModule,
        stmt: ast.AST,
        target: ast.expr,
        reads: Sequence[ast.expr],
        resolve_base,
        is_basic_index,
    ) -> Iterator[Finding]:
        target_bases, target_index = resolve_base(target)
        target_dump = ast.dump(target)

        def has_slice(index: ast.expr) -> bool:
            elements = (
                index.elts if isinstance(index, ast.Tuple) else [index]
            )
            return any(
                isinstance(element, ast.Slice) for element in elements
            )

        for read_root in reads:
            for node in ast.walk(read_root):
                if ast.dump(node) == target_dump:
                    continue  # the exact same region: elementwise-aligned
                read_index: Optional[ast.expr]
                if isinstance(node, ast.Subscript):
                    read_bases, read_index = resolve_base(node)
                    if not (read_bases & target_bases):
                        continue
                    if not is_basic_index(node.slice):
                        continue  # fancy read: numpy copies, no aliasing
                    if not has_slice(node.slice):
                        continue  # scalar element read: a copied value
                elif isinstance(node, ast.Name):
                    read_bases, read_index = resolve_base(node)
                    if len(read_bases) < 2:
                        continue  # not an alias name
                    if not (read_bases & target_bases):
                        continue
                else:
                    continue
                if (
                    target_index is not None
                    and read_index is not None
                    and _provably_disjoint(target_index, read_index)
                ):
                    continue
                terminal = _target_terminal(target) or "<array>"
                yield module.finding(
                    self.code, stmt,
                    f"in-place update of `{terminal}` reads the same base "
                    "array through an overlapping view "
                    f"(`{ast.unparse(node)}`); hoist the read into an "
                    "explicit `.copy()` or prove the slices disjoint",
                )
                return


# ------------------------------------------------------------------ R16


def _mirror_covered_ranges(
    project: Project, module_name: str, module: ParsedModule
) -> List[Tuple[int, int]]:
    """Line ranges covered by R10 mirror tags (defs and regions)."""
    ranges: List[Tuple[int, int]] = []
    for node, _qname, _cls in iter_scopes(module_name, module.tree):
        for line in (node.lineno, node.lineno - 1):
            if not 1 <= line <= len(module.lines):
                continue
            match = _MIRROR_RE.search(module.lines[line - 1])
            if match is not None and match.group(2) is None:
                ranges.append((node.lineno, node.end_lineno or node.lineno))
                break
    open_regions: Dict[str, int] = {}
    for line_number, text in enumerate(module.lines, start=1):
        match = _MIRROR_RE.search(text)
        if match is None or match.group(2) is None:
            continue
        name, kind = match.group(1), match.group(2)
        if kind == "begin":
            open_regions[name] = line_number
        else:
            begin = open_regions.pop(name, None)
            if begin is not None:
                ranges.append((begin, line_number))
    return ranges


def _in_ranges(ranges: Sequence[Tuple[int, int]], line: int) -> bool:
    return any(start <= line <= end for start, end in ranges)


class LaneCouplingRule(ProjectRule):
    """R16: mirror-tagged kernel code must not couple lanes.

    Inside an R10 mirror region every lane is an independent transcription
    of the scalar path; a reduction over the lane axis (``.sum()``,
    ``.any()``, ``.max()``, ... with no ``axis=`` or an axis including 0)
    that flows into mutated state makes lane *i*'s value depend on lane
    *j* — a coupling the scalar path cannot express. Per-lane reductions
    (``axis=1`` and friends) are fine. Documented shared counters are
    allowlisted or annotated ``# repro: shared-scalar[name]``.
    """

    code = "R16"
    name = "lane-coupling"
    description = "cross-lane reduction mutating state in mirror-tagged code"

    def __init__(
        self, shared_scalars: Optional[Set[str]] = None
    ) -> None:
        self.shared_scalars = (
            set(DEFAULT_SHARED_SCALARS)
            if shared_scalars is None else set(shared_scalars)
        )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for module_name, module in _kernel_modules(project):
            ranges = _mirror_covered_ranges(project, module_name, module)
            if not ranges:
                continue
            for stmt in ast.walk(module.tree):
                if not isinstance(stmt, (ast.Assign, ast.AugAssign)):
                    continue
                if not _in_ranges(ranges, stmt.lineno):
                    continue
                target = self._state_target(stmt)
                if target is None:
                    continue
                reduction = self._cross_lane_reduction(stmt.value)
                if reduction is None:
                    continue
                terminal = _target_terminal(target) or "<state>"
                if terminal in self.shared_scalars:
                    continue
                waived = _comment_match(
                    module, stmt.lineno, SHARED_SCALAR_RE
                )
                if waived is not None and (
                    waived == "*" or terminal in {
                        part.strip() for part in waived.split(",")
                    }
                ):
                    continue
                yield module.finding(
                    self.code, stmt,
                    f"cross-lane reduction `{reduction}` flows into "
                    f"`{terminal}` inside a mirror-tagged region; per-lane "
                    "transcriptions must not couple lanes — reduce along "
                    "the per-lane axis (axis=1), or annotate a documented "
                    "shared counter with `# repro: shared-scalar[name]`",
                )

    @staticmethod
    def _state_target(stmt: ast.AST) -> Optional[ast.expr]:
        if isinstance(stmt, ast.AugAssign):
            return stmt.target
        assert isinstance(stmt, ast.Assign)
        for target in stmt.targets:
            if isinstance(target, ast.Subscript):
                return target
        return None

    @staticmethod
    def _cross_lane_reduction(value: ast.expr) -> Optional[str]:
        for node in ast.walk(value):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                terminal = node.func.attr
            elif isinstance(node.func, ast.Name):
                terminal = node.func.id
                if len(node.args) > 1:
                    continue  # builtin max(a, b) style: not a reduction
            else:
                continue
            if terminal not in _REDUCTIONS:
                continue
            axis = next(
                (kw.value for kw in node.keywords if kw.arg == "axis"),
                None,
            )
            if axis is None and isinstance(node.func, ast.Attribute):
                # positional axis: x.sum(1)
                if node.args and isinstance(node.args[0], ast.Constant):
                    axis = node.args[0]
            if axis is not None:
                if isinstance(axis, ast.Constant) and axis.value not in (
                    0, None
                ):
                    continue  # per-lane axis
                if isinstance(axis, ast.Tuple) and all(
                    isinstance(element, ast.Constant)
                    and element.value != 0
                    for element in axis.elts
                ):
                    continue
            return ast.unparse(node.func) + "(...)"
        return None


# ------------------------------------------------------------------ R17


#: Value expressions that construct a fresh object (mutating it is local).
_FRESH_VALUE_TYPES = (
    ast.Call, ast.List, ast.ListComp, ast.Dict, ast.DictComp,
    ast.Set, ast.SetComp, ast.Constant, ast.BinOp, ast.Compare,
)


class MirrorCoverageRule(ProjectRule):
    """R17: state-mutating kernel defs must sit under a mirror tag.

    R10 only protects code someone remembered to tag. This rule closes
    the gap: every ``def`` in a ``*_kernel.py`` module that mutates state
    it did not create (subscript stores, ``np.<ufunc>.at``, ufunc
    ``out=`` onto parameters, ``self``, closure names, or module
    globals) must be covered by a mirror tag — its own, an enclosing
    tagged def, or a begin/end region overlapping it — or carry a
    reviewed ``# repro: mirror-exempt[reason]`` acknowledgement.
    ``__init__`` constructors mutating only ``self`` are exempt (the
    object is being created).
    """

    code = "R17"
    name = "mirror-coverage"
    description = "kernel def mutates state outside every mirror tag"

    def check_project(self, project: Project) -> Iterator[Finding]:
        for module_name, module in _kernel_modules(project):
            name = _basename(module.path)
            # Only the twin-tracked kernels proper: compiled.py holds
            # trace preprocessing with no scalar-path mirror, and test
            # kernels have no twin by design.
            if not name.endswith("_kernel.py") or name.startswith("test_"):
                continue
            ranges = _mirror_covered_ranges(project, module_name, module)
            for node, qname, _cls in iter_scopes(module_name, module.tree):
                span = (node.lineno, node.end_lineno or node.lineno)
                if any(
                    start <= span[0] and span[1] <= end
                    or (start <= span[0] <= end)
                    or (span[0] <= start <= span[1])
                    for start, end in ranges
                ):
                    continue
                if _comment_match(
                    module, node.lineno, MIRROR_EXEMPT_RE
                ) is not None:
                    continue
                mutation = self._first_nonlocal_mutation(node)
                if mutation is None:
                    continue
                local = qname[len(module_name) + 1:]
                detail, line = mutation
                yield module.finding(
                    self.code, node,
                    f"`{local}` mutates kernel state (`{detail}` at line "
                    f"{line}) but no `# repro: mirror[...]` tag covers it; "
                    "twin-track the fast path or acknowledge it with "
                    "`# repro: mirror-exempt[reason]`",
                )

    @staticmethod
    def _first_nonlocal_mutation(
        node: ast.AST,
    ) -> Optional[Tuple[str, int]]:
        is_init = getattr(node, "name", "") == "__init__"
        local_names: Set[str] = set()
        tainted: Set[str] = set()
        for child in _walk_no_nested_defs(node):
            if isinstance(child, (ast.Assign, ast.AnnAssign)):
                targets = (
                    child.targets if isinstance(child, ast.Assign)
                    else [child.target]
                )
                value = child.value
                for target in targets:
                    if isinstance(target, ast.Name):
                        if value is not None and isinstance(
                            value, _FRESH_VALUE_TYPES
                        ):
                            local_names.add(target.id)
                        else:
                            tainted.add(target.id)
        local_names -= tainted

        def is_nonlocal_store(target: ast.expr) -> Optional[str]:
            root = _root_name(target)
            if root is None:
                return None
            if root == "self" and is_init:
                return None
            if root != "self" and root in local_names:
                return None
            return ast.unparse(target)

        for child in _walk_no_nested_defs(node):
            detail: Optional[str] = None
            if isinstance(child, ast.AugAssign) and isinstance(
                child.target, ast.Subscript
            ):
                detail = is_nonlocal_store(child.target)
            elif isinstance(child, ast.Assign):
                for target in child.targets:
                    if isinstance(target, ast.Subscript):
                        detail = is_nonlocal_store(target)
                        if detail is not None:
                            break
            elif isinstance(child, ast.Call):
                if (
                    isinstance(child.func, ast.Attribute)
                    and child.func.attr == "at"
                    and child.args
                ):
                    detail = is_nonlocal_store(child.args[0])
                else:
                    out = next(
                        (
                            kw.value for kw in child.keywords
                            if kw.arg == "out"
                        ),
                        None,
                    )
                    if out is not None:
                        detail = is_nonlocal_store(out)
            if detail is not None:
                return detail, child.lineno
        return None


#: R14–R17 instances, in code order (appended by ``default_rules``).
ARRAY_RULES: Tuple[ProjectRule, ...] = (
    ScatterAliasingRule(),
    ViewAliasingRule(),
    LaneCouplingRule(),
    MirrorCoverageRule(),
)
