"""Mirror tags and the drift manifest (R10's machinery).

The replay engine deliberately implements the same semantics twice: the
allocation-free kernel (:mod:`repro.core_model.replay_kernel`) re-states
the object path of :mod:`repro.uncore.hierarchy` and the bandit step loop
of :mod:`repro.experiments.prefetch`. Each such pair is declared in the
source with ``repro: mirror`` comment tags carrying the mirror's name in
square brackets:

- on (or directly above) a ``def`` line — the tagged region is that whole
  function, fingerprinted over its AST (whitespace/comment-insensitive);
- as a ``begin``/``end`` tag pair — the tagged region is the statements
  in between, fingerprinted over their token stream (comments and blank
  lines stripped).

``mirror-manifest.json`` records the fingerprint of both sides of every
mirror. R10 compares the current tree against the manifest: a mirror
whose sides drift *apart* (one fingerprint changed, the other did not) is
a hard finding — the paired edit was forgotten. A mirror whose sides both
changed asks for re-verification (``REPRO_SANITIZE=1``) and a manifest
refresh (``--update-mirrors``).
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import ParsedModule
from repro.analysis.symbols import Project, iter_scopes

MANIFEST_VERSION = 1

#: Default manifest file name, looked up next to the analysis root.
MANIFEST_NAME = "mirror-manifest.json"

_MIRROR_RE = re.compile(
    r"#\s*repro:\s*mirror\[([A-Za-z0-9_.\-]+)\]\s*(begin|end)?"
)


@dataclass(frozen=True)
class MirrorSide:
    """One tagged region of a mirror pair."""

    mirror: str  #: mirror name from the tag
    path: str  #: display path of the file
    anchor: str  #: stable identity of the region inside the file
    line: int  #: tag line (for findings)
    fingerprint: str


class MirrorTagError(ValueError):
    """A malformed tag set (unbalanced begin/end, duplicate anchors)."""


# ------------------------------------------------------------ fingerprints


def _function_fingerprint(node: ast.AST) -> str:
    """AST fingerprint of a def: robust to comments, formatting, docstrings."""
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    body = list(node.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]  # ignore the docstring
    payload = ast.dump(node.args) + "|" + "|".join(
        ast.dump(statement) for statement in body
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _region_fingerprint(source: str, first: int, last: int) -> str:
    """Token-stream fingerprint of lines ``first..last`` (inclusive).

    Comments and intra-line whitespace are dropped; INDENT/DEDENT and
    logical newlines are kept as structural markers so re-indentation or
    re-flowed statements *do* count as changes in meaning.
    """
    pieces: List[str] = []
    reader = io.StringIO(source).readline
    for token in tokenize.generate_tokens(reader):
        row = token.start[0]
        if row < first or row > last:
            continue
        if token.type in (tokenize.COMMENT, tokenize.NL):
            continue
        if token.type == tokenize.INDENT:
            pieces.append("<indent>")
        elif token.type == tokenize.DEDENT:
            pieces.append("<dedent>")
        elif token.type == tokenize.NEWLINE:
            pieces.append("<nl>")
        else:
            pieces.append(token.string)
    payload = " ".join(pieces)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# --------------------------------------------------------------- scanning


def _function_tags(
    module_name: str, module: ParsedModule
) -> List[MirrorSide]:
    sides: List[MirrorSide] = []
    for node, qname, _class_name in iter_scopes(module_name, module.tree):
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for line_number in (node.lineno, node.lineno - 1):
            if not 1 <= line_number <= len(module.lines):
                continue
            match = _MIRROR_RE.search(module.lines[line_number - 1])
            if match is None or match.group(2) is not None:
                continue
            local = qname[len(module_name) + 1:]
            sides.append(
                MirrorSide(
                    mirror=match.group(1),
                    path=module.path,
                    anchor=f"def:{local}",
                    line=node.lineno,
                    fingerprint=_function_fingerprint(node),
                )
            )
            break
    return sides


def _region_tags(
    module_name: str, module: ParsedModule
) -> List[MirrorSide]:
    spans = [
        (node.lineno, node.end_lineno or node.lineno,
         qname[len(module_name) + 1:])
        for node, qname, _cls in iter_scopes(module_name, module.tree)
    ]

    def enclosing(line: int) -> str:
        best: Optional[Tuple[int, int, str]] = None
        for span in spans:
            if span[0] <= line <= span[1]:
                if best is None or span[0] >= best[0]:
                    best = span
        return best[2] if best is not None else "<module>"

    sides: List[MirrorSide] = []
    open_regions: Dict[str, int] = {}
    for line_number, text in enumerate(module.lines, start=1):
        match = _MIRROR_RE.search(text)
        if match is None or match.group(2) is None:
            continue
        name, kind = match.group(1), match.group(2)
        if kind == "begin":
            if name in open_regions:
                raise MirrorTagError(
                    f"{module.path}:{line_number}: nested/duplicate "
                    f"`mirror[{name}] begin`"
                )
            open_regions[name] = line_number
        else:
            begin = open_regions.pop(name, None)
            if begin is None:
                raise MirrorTagError(
                    f"{module.path}:{line_number}: `mirror[{name}] end` "
                    "without begin"
                )
            sides.append(
                MirrorSide(
                    mirror=name,
                    path=module.path,
                    anchor=f"region:{enclosing(begin)}",
                    line=begin,
                    fingerprint=_region_fingerprint(
                        module.source, begin + 1, line_number - 1
                    ),
                )
            )
    for name, line_number in open_regions.items():
        raise MirrorTagError(
            f"{module.path}:{line_number}: `mirror[{name}] begin` "
            "without end"
        )
    return sides


def scan_mirrors(project: Project) -> Dict[str, List[MirrorSide]]:
    """All mirror tags in the project, grouped by mirror name.

    Sides are sorted by (path, anchor); duplicate (path, anchor) pairs
    within one mirror are a :class:`MirrorTagError`.
    """
    grouped: Dict[str, List[MirrorSide]] = {}
    for module_name, module in sorted(project.modules.items()):
        for side in (
            *_function_tags(module_name, module),
            *_region_tags(module_name, module),
        ):
            grouped.setdefault(side.mirror, []).append(side)
    for name, sides in grouped.items():
        sides.sort(key=lambda side: (side.path, side.anchor))
        keys = [(side.path, side.anchor) for side in sides]
        if len(set(keys)) != len(keys):
            raise MirrorTagError(
                f"mirror[{name}] has two tags with the same anchor; "
                "move one side into its own function or region"
            )
    return grouped


# --------------------------------------------------------------- manifest


def load_manifest(path: Path) -> Dict[str, List[Dict[str, str]]]:
    """Read the recorded mirror sides; raises ValueError on bad documents."""
    document = json.loads(path.read_text(encoding="utf-8"))
    if (
        not isinstance(document, dict)
        or document.get("version") != MANIFEST_VERSION
        or not isinstance(document.get("mirrors"), dict)
    ):
        raise ValueError(
            f"mirror manifest {path} is not a version-{MANIFEST_VERSION} "
            "{version, mirrors} document"
        )
    return document["mirrors"]


def write_manifest(path: Path, tags: Dict[str, List[MirrorSide]]) -> None:
    """Record the current fingerprints of every tagged mirror."""
    document = {
        "version": MANIFEST_VERSION,
        "mirrors": {
            name: [
                {
                    "path": side.path,
                    "anchor": side.anchor,
                    "fingerprint": side.fingerprint,
                }
                for side in sides
            ]
            for name, sides in sorted(tags.items())
        },
    }
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
