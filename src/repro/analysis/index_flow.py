"""Index-provenance dataflow over the call graph (R14's engine).

:func:`classify_index_expr` answers one question about an expression used
as a fancy index in a kernel scatter update: *can this index carry
duplicate positions?* It walks assignments inside the enclosing function
chain (closures included), follows parameters backwards through every
recorded call site (depth-limited, cycle-guarded), chases module
constants, and looks through thin project helpers via their ``return``
expressions — the same machinery shape as R8's seed classifier
(:mod:`repro.analysis.dataflow`). The result is a set of :data:`Label`
values:

- ``unique`` — a provably duplicate-free integer array:
  ``np.arange``/``np.flatnonzero``/``np.unique``/``np.argsort``, the
  ``[0]`` component of a single-target ``mask.nonzero()`` /
  ``np.where(mask)``, or any subset of such an array taken through a
  mask, a slice, or another unique index;
- ``mask`` — a boolean array (comparisons, ``~``/``&``/``|``/``^`` of
  masks, ``np.isin``/``np.logical_*``); a mask can never address the
  same element twice;
- ``scalar`` — a single position: literals, loop variables,
  ``int``-annotated parameters, ``int()``/``len()``/shape elements, and
  arithmetic over those;
- ``slice`` — a basic slice (duplicate-free by construction);
- ``unknown`` — the analysis cannot see further.

Only ``a, b = m.nonzero()`` style tuple unpacking is deliberately *not*
labelled unique: on a 2-D mask each component alone can repeat (only the
pairs are distinct), and the single-target ``m.nonzero()[0]`` spelling is
the project's 1-D idiom.

A helper whose return value is duplicate-free for reasons the dataflow
cannot prove (e.g. a memo dict holding ``np.arange`` results) can assert
it with ``# repro: unique-index[reason]`` on (or directly above) its
``def`` line; :func:`classify_index_expr` then trusts every call to it.
The same comment on a scatter statement is the *site-level* waiver that
:class:`repro.analysis.array_rules.ScatterAliasingRule` honours.
"""

from __future__ import annotations

import ast
import re
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph, argument_for_param
from repro.analysis.core import ParsedModule
from repro.analysis.symbols import FunctionInfo, Project

Label = str

# Kernel index chains are long (r3 = r2[lm], r2 = mrows[rem], mrows =
# all_rows[...], ...), so the budget is deeper than R8's seed flows.
_MAX_DEPTH = 10

#: ``# repro: unique-index[reason]`` — site waiver / helper assertion.
UNIQUE_INDEX_RE = re.compile(r"#\s*repro:\s*unique-index\[([^\]]+)\]")

#: numpy constructors whose result is a duplicate-free integer array.
#: ``argmax``/``argmin``/``searchsorted`` are deliberately absent — their
#: per-slot results can repeat across slots.
_UNIQUE_CALLS = frozenset({
    "arange", "flatnonzero", "unique", "argsort", "argpartition",
})

#: calls returning the ``np.nonzero``-style tuple of index arrays.
_NONZERO_CALLS = frozenset({"nonzero"})

#: numpy calls whose result is a boolean mask.
_MASK_CALLS = frozenset({
    "isin", "isnan", "isfinite", "isinf", "isclose",
    "logical_and", "logical_or", "logical_not", "logical_xor",
    "greater", "greater_equal", "less", "less_equal",
    "equal", "not_equal", "in1d",
})

#: builtins/conversions whose result is a scalar position.
_SCALAR_CALLS = frozenset({"int", "len", "round", "ord", "bool", "float"})

#: methods that preserve the value multiset (and hence uniqueness /
#: boolean-ness) of their receiver.
_PASSTHROUGH_METHODS = frozenset({"astype", "copy", "ravel", "reshape"})

_SCALAR_ANNOTATIONS = frozenset({"int", "bool", "float", "np.intp"})


def comment_block_match(
    module: ParsedModule, line: int, pattern: "re.Pattern[str]"
) -> Optional[str]:
    """First group of ``pattern`` on ``line`` or the comment block above.

    The upward scan walks contiguous full-line comments (and decorator
    lines, so a tag above ``@dataclass`` still binds), bounded to a few
    lines, which lets several ``# repro: ...`` annotations stack above
    one ``def``.
    """
    candidates = [line]
    for above in range(line - 1, max(0, line - 6), -1):
        if above < 1 or above > len(module.lines):
            break
        stripped = module.lines[above - 1].lstrip()
        candidates.append(above)
        if not stripped.startswith(("#", "@")):
            break
    for candidate in candidates:
        if 1 <= candidate <= len(module.lines):
            match = pattern.search(module.lines[candidate - 1])
            if match is not None:
                return match.group(1).strip()
    return None


def unique_index_waiver(
    module: ParsedModule, line: int
) -> Optional[str]:
    """Reason text of a ``# repro: unique-index[...]`` at/above ``line``."""
    return comment_block_match(module, line, UNIQUE_INDEX_RE)


def is_duplicate_free(labels: Set[Label]) -> bool:
    """Every possible origin of the index is provably duplicate-free."""
    return bool(labels) and labels <= {"unique", "mask", "scalar", "slice"}


def classify_index_expr(
    project: Project,
    graph: CallGraph,
    module: str,
    scopes: Sequence[FunctionInfo],
    expr: ast.expr,
    depth: int = _MAX_DEPTH,
    stack: FrozenSet[Tuple[str, str]] = frozenset(),
) -> Set[Label]:
    """Provenance labels for ``expr`` used as an index.

    ``scopes`` is the chain of enclosing functions, innermost first, so
    closure reads resolve against the defining scope (the array kernel is
    one large function with nested helpers).
    """
    if depth <= 0:
        return {"unknown"}

    if isinstance(expr, ast.Constant):
        # Any literal (int position, dict key string, bool) addresses a
        # single element.
        return {"scalar"}

    if isinstance(expr, ast.Slice):
        return {"slice"}

    if isinstance(expr, ast.Name):
        return _classify_name(
            project, graph, module, scopes, expr.id, depth, stack
        )

    if isinstance(expr, ast.Compare):
        return {"mask"}

    if isinstance(expr, ast.Subscript):
        return _classify_subscript(
            project, graph, module, scopes, expr, depth, stack
        )

    if isinstance(expr, ast.Call):
        return _classify_call(
            project, graph, module, scopes, expr, depth, stack
        )

    if isinstance(expr, ast.UnaryOp):
        inner = classify_index_expr(
            project, graph, module, scopes, expr.operand, depth - 1, stack
        )
        if isinstance(expr.op, ast.Invert) and inner == {"mask"}:
            return {"mask"}
        if isinstance(expr.op, (ast.USub, ast.UAdd)) and inner == {"scalar"}:
            return {"scalar"}
        return {"unknown"}

    if isinstance(expr, ast.BinOp):
        return _classify_binop(
            project, graph, module, scopes, expr, depth, stack
        )

    if isinstance(expr, ast.IfExp):
        return classify_index_expr(
            project, graph, module, scopes, expr.body, depth - 1, stack
        ) | classify_index_expr(
            project, graph, module, scopes, expr.orelse, depth - 1, stack
        )

    if isinstance(expr, ast.Attribute):
        if expr.attr in ("size", "ndim", "hi", "capacity"):
            return {"scalar"}
        return {"unknown"}

    return {"unknown"}


# ------------------------------------------------------------------ helpers


def _attr_chain(expr: ast.expr) -> Optional[str]:
    parts: List[str] = []
    current = expr
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _loop_targets(scope: FunctionInfo) -> Set[str]:
    """Names bound as loop variables directly inside ``scope``.

    A loop variable indexes one element per iteration, so as a subscript
    it is a scalar position. Nested defs are separate scopes.
    """
    names: Set[str] = set()

    def collect_target(target: ast.expr) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.add(node.id)

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(child, ast.For):
                collect_target(child.target)
            elif isinstance(child, (ast.ListComp, ast.SetComp,
                                    ast.DictComp, ast.GeneratorExp)):
                for comp in child.generators:
                    collect_target(comp.target)
            visit(child)

    visit(scope.node)
    return names


def _assignments_to(
    scope: FunctionInfo, name: str
) -> Tuple[ast.expr, ...]:
    """Single-target value expressions assigned to ``name`` in ``scope``.

    Tuple-unpacking targets are *excluded* on purpose: ``a, b =
    m.nonzero()`` gives no per-component uniqueness guarantee on a 2-D
    mask, so those names stay ``unknown``.
    """
    values: List[ast.expr] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        values.append(child.value)
            elif isinstance(child, ast.AnnAssign):
                if (
                    isinstance(child.target, ast.Name)
                    and child.target.id == name
                    and child.value is not None
                ):
                    values.append(child.value)
            elif isinstance(child, ast.AugAssign):
                if isinstance(child.target, ast.Name) and child.target.id == name:
                    # ``idx += k`` keeps whatever provenance both sides
                    # prove; model it as a fresh BinOp assignment.
                    values.append(
                        ast.BinOp(
                            left=ast.Name(id=name, ctx=ast.Load()),
                            op=child.op,
                            right=child.value,
                        )
                    )
            visit(child)

    visit(scope.node)
    return tuple(values)


def _param_annotation(scope: FunctionInfo, name: str) -> Optional[str]:
    args = scope.node.args
    for arg in (
        *args.posonlyargs, *args.args, *args.kwonlyargs,
        args.vararg, args.kwarg,
    ):
        if arg is not None and arg.arg == name and arg.annotation is not None:
            if isinstance(arg.annotation, ast.Name):
                return arg.annotation.id
            if isinstance(arg.annotation, ast.Constant) and isinstance(
                arg.annotation.value, str
            ):
                return arg.annotation.value
            return _attr_chain(arg.annotation)
    return None


def _classify_name(
    project: Project,
    graph: CallGraph,
    module: str,
    scopes: Sequence[FunctionInfo],
    name: str,
    depth: int,
    stack: FrozenSet[Tuple[str, str]],
) -> Set[Label]:
    for position, scope in enumerate(scopes):
        # ``for name in ...`` rebinding wins: the subscript sees one
        # element per iteration even if the name is also assigned.
        if name in _loop_targets(scope):
            return {"scalar"}
        values = _assignments_to(scope, name)
        if values:
            out: Set[Label] = set()
            chain = scopes[position:]
            for value in values:
                out |= classify_index_expr(
                    project, graph, module, chain, value, depth - 1, stack
                )
            return out
        if name in scope.params:
            annotation = _param_annotation(scope, name)
            if annotation in _SCALAR_ANNOTATIONS:
                return {"scalar"}
            key = (scope.qname, name)
            if key in stack:
                return {"unknown"}
            sites = graph.callers_of.get(scope.qname, [])
            if not sites:
                return {"unknown"}
            from_callers: Set[Label] = set()
            for site in sites:
                argument = argument_for_param(site, scope, name)
                if argument is None:
                    from_callers |= {"unknown"}
                    continue
                caller_scope = project.functions.get(site.caller)
                caller_chain = (
                    (caller_scope,) if caller_scope is not None else ()
                )
                from_callers |= classify_index_expr(
                    project, graph, site.module, caller_chain, argument,
                    depth - 1, stack | {key},
                )
            return from_callers
    resolved = project.resolve(module, name)
    if resolved is not None and resolved in project.constants:
        return classify_index_expr(
            project, graph, resolved.rsplit(".", 1)[0], (),
            project.constants[resolved], depth - 1, stack,
        )
    return {"unknown"}


def _call_terminal(call: ast.Call) -> Optional[str]:
    """Final name component of the call target (``np.nonzero`` -> nonzero)."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _is_nonzero_tuple(
    project: Project,
    graph: CallGraph,
    module: str,
    scopes: Sequence[FunctionInfo],
    expr: ast.expr,
    depth: int,
    stack: FrozenSet[Tuple[str, str]],
) -> bool:
    """Is ``expr`` the tuple result of ``nonzero()`` / 1-arg ``where()``?"""
    if not isinstance(expr, ast.Call):
        return False
    terminal = _call_terminal(expr)
    if terminal in _NONZERO_CALLS:
        return True
    if terminal == "where" and len(expr.args) == 1 and not expr.keywords:
        return True
    return False


def _classify_subscript(
    project: Project,
    graph: CallGraph,
    module: str,
    scopes: Sequence[FunctionInfo],
    expr: ast.Subscript,
    depth: int,
    stack: FrozenSet[Tuple[str, str]],
) -> Set[Label]:
    # ``x.shape[k]`` is a dimension length: a scalar.
    if (
        isinstance(expr.value, ast.Attribute)
        and expr.value.attr == "shape"
    ):
        return {"scalar"}
    # ``mask.nonzero()[0]`` / ``np.where(mask)[0]``: the single-target
    # 1-D idiom — duplicate-free row indices.
    if _is_nonzero_tuple(
        project, graph, module, scopes, expr.value, depth, stack
    ) and isinstance(expr.slice, ast.Constant):
        return {"unique"}

    base = classify_index_expr(
        project, graph, module, scopes, expr.value, depth - 1, stack
    )
    index = classify_index_expr(
        project, graph, module, scopes, expr.slice, depth - 1, stack
    )
    if base == {"mask"}:
        # Subsetting a boolean array yields a boolean array.
        return {"mask"}
    if base == {"unique"}:
        if index == {"scalar"}:
            return {"scalar"}
        if index and index <= {"unique", "mask", "slice"}:
            # A subset of distinct values stays distinct.
            return {"unique"}
    return {"unknown"}


def _classify_call(
    project: Project,
    graph: CallGraph,
    module: str,
    scopes: Sequence[FunctionInfo],
    call: ast.Call,
    depth: int,
    stack: FrozenSet[Tuple[str, str]],
) -> Set[Label]:
    terminal = _call_terminal(call)
    if terminal in _SCALAR_CALLS:
        return {"scalar"}
    if terminal in _UNIQUE_CALLS:
        return {"unique"}
    if terminal in _MASK_CALLS:
        return {"mask"}
    if terminal in _PASSTHROUGH_METHODS and isinstance(
        call.func, ast.Attribute
    ):
        inner = classify_index_expr(
            project, graph, module, scopes, call.func.value, depth - 1, stack
        )
        if inner <= {"unique", "mask", "scalar"} and inner:
            return inner
        return {"unknown"}
    if terminal in ("asarray", "ascontiguousarray") and call.args:
        return classify_index_expr(
            project, graph, module, scopes, call.args[0], depth - 1, stack
        )

    scope = scopes[0] if scopes else None
    self_class = scope.class_name if scope is not None else None
    callee = project.resolve_call(module, call.func, self_class)
    if callee is None:
        return {"unknown"}
    target = project.functions.get(callee)
    if target is None:
        return {"unknown"}
    target_module = project.modules.get(target.module)
    if target_module is not None:
        # A helper can assert duplicate-freedom the dataflow cannot see
        # (e.g. a memo of np.arange results) on its def line.
        if unique_index_waiver(target_module, target.node.lineno) is not None:
            return {"unique"}
    key = (callee, "<return>")
    if key in stack:
        return {"unknown"}
    returns = [
        node.value
        for node in ast.walk(target.node)
        if isinstance(node, ast.Return) and node.value is not None
    ]
    if not returns:
        return {"unknown"}
    out: Set[Label] = set()
    for value in returns:
        out |= classify_index_expr(
            project, graph, target.module, (target,), value,
            depth - 1, stack | {key},
        )
    return out


def _classify_binop(
    project: Project,
    graph: CallGraph,
    module: str,
    scopes: Sequence[FunctionInfo],
    expr: ast.BinOp,
    depth: int,
    stack: FrozenSet[Tuple[str, str]],
) -> Set[Label]:
    left = classify_index_expr(
        project, graph, module, scopes, expr.left, depth - 1, stack
    )
    right = classify_index_expr(
        project, graph, module, scopes, expr.right, depth - 1, stack
    )
    if isinstance(expr.op, (ast.BitAnd, ast.BitOr, ast.BitXor)):
        if left == {"mask"} and right == {"mask"}:
            return {"mask"}
        return {"unknown"}
    if left == {"scalar"} and right == {"scalar"}:
        return {"scalar"}
    if isinstance(expr.op, (ast.Add, ast.Sub)):
        # Adding a scalar offset to distinct values keeps them distinct.
        if left == {"unique"} and right == {"scalar"}:
            return {"unique"}
        if left == {"scalar"} and right == {"unique"}:
            return {"unique"}
    if isinstance(expr.op, ast.Mult):
        # Scaling by a non-zero literal keeps distinct values distinct.
        for unique_side, scalar_side in (
            (left, expr.right), (right, expr.left)
        ):
            if (
                unique_side == {"unique"}
                and isinstance(scalar_side, ast.Constant)
                and isinstance(scalar_side.value, (int, float))
                and scalar_side.value != 0
            ):
                return {"unique"}
    return {"unknown"}
