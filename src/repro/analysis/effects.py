"""Inter-procedural effect and provenance inference (R11/R12's engine).

Built on the symbol table and call graph, this layer answers two questions
about the functions the experiment runner ships to pool workers:

- *What does this function (and everything it can reach) touch besides its
  arguments?* :func:`direct_effects` extracts per-function effect sites —
  environment-variable reads, module-global writes, unseeded RNG
  construction, and I/O — and :func:`classify_effects` propagates them to
  a fixpoint over the call graph, classifying every function as ``pure``
  or some combination of ``reads-env`` / ``writes-global`` / ``does-io`` /
  ``spawns-rng``.
- *Which functions are workers at all?* :func:`find_worker_roots` collects
  every function submitted to the parallel engine — the first argument of
  a ``Task(...)`` construction or of an executor ``.submit(...)`` call —
  so the rules can restrict themselves to code that actually crosses a
  process boundary.

An effect that is *known* not to influence a task's result can be waived
at the site with ``# repro: cache-invariant[NAME]`` (on the reading line
or the line above); ``NAME`` is the environment variable or global being
read, or ``*`` for everything on that line. The canonical examples are the
``REPRO_LANE_KERNEL``/``REPRO_SMT_KERNEL``/``REPRO_SANITIZE`` gates, whose
two implementation paths are bit-identical by construction (sanitizer-
verified), and ``REPRO_TRACE_CACHE_DIR``, which only relocates a
content-keyed store.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.core import ParsedModule
from repro.analysis.symbols import FunctionInfo, Project

#: Waiver marker for effects that provably cannot change a task's result.
_WAIVER_RE = re.compile(
    r"#\s*repro:\s*cache-invariant\[([A-Za-z0-9_.\-*,\s]+)\]"
)

#: Effect-site kinds (``EffectSite.kind``).
ENV_READ = "env-read"
GLOBAL_WRITE = "global-write"
RNG_UNSEEDED = "rng-unseeded"
IO = "io"

#: Classification labels produced by :func:`classify_effects`.
LABELS = {
    ENV_READ: "reads-env",
    GLOBAL_WRITE: "writes-global",
    RNG_UNSEEDED: "spawns-rng",
    IO: "does-io",
}
PURE = "pure"

#: Builtin / pathlib calls treated as I/O (informational classification).
_IO_NAMES = frozenset({"open", "print", "input"})
_IO_ATTRS = frozenset({
    "write_text", "write_bytes", "read_text", "read_bytes", "unlink",
})

#: RNG constructors whose *argument-less* form draws a nondeterministic
#: per-process seed (matched on the resolved qualified name).
_RNG_CTORS = ("random.Random",)
_RNG_CTOR_SUFFIXES = (".default_rng",)


@dataclass(frozen=True)
class EffectSite:
    """One effectful operation, attributed to its enclosing function."""

    kind: str  #: :data:`ENV_READ` / :data:`GLOBAL_WRITE` / ...
    module: str  #: dotted module name the site appears in
    function: str  #: qualified name of the enclosing function
    node: ast.AST
    detail: str  #: env var name, global qname, or callee — for messages


@dataclass(frozen=True)
class WorkerRoot:
    """One function handed to the parallel engine at one submission site."""

    qname: str  #: qualified name of the submitted function
    via: str  #: ``"Task"`` or ``"submit"``
    module: str  #: module of the submission site
    node: ast.Call


# -------------------------------------------------------------- waivers


def waived_invariants(module: ParsedModule, line: int) -> Set[str]:
    """Names waived by ``# repro: cache-invariant[...]`` at ``line``.

    Both the site line and the line directly above it are honoured, so the
    waiver survives line-length limits on long reading expressions.
    """
    names: Set[str] = set()
    for candidate in (line, line - 1):
        if 1 <= candidate <= len(module.lines):
            for match in _WAIVER_RE.finditer(module.lines[candidate - 1]):
                names |= {n.strip() for n in match.group(1).split(",")}
    return {n for n in names if n}


# -------------------------------------------------------- worker discovery


def _first_callable_argument(call: ast.Call) -> Optional[ast.expr]:
    if call.args and not isinstance(call.args[0], ast.Starred):
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "fn":
            return keyword.value
    return None


def find_worker_roots(project: Project, graph: CallGraph) -> List[WorkerRoot]:
    """Every project function submitted to the parallel engine.

    Two submission shapes are recognized: ``Task(fn, ...)`` where the call
    target resolves to a project class named ``Task``, and
    ``<executor>.submit(fn, ...)`` — the raw ``ProcessPoolExecutor``
    protocol the engine itself (and the analyzer's own parallel driver)
    uses. The submitted expression must resolve to a project function.
    """
    roots: List[WorkerRoot] = []
    for site in graph.sites:
        via: Optional[str] = None
        if site.callee is not None and (
            site.callee in project.classes
            and site.callee.rsplit(".", 1)[-1] == "Task"
        ):
            via = "Task"
        elif (
            isinstance(site.node.func, ast.Attribute)
            and site.node.func.attr == "submit"
        ):
            via = "submit"
        if via is None:
            continue
        argument = _first_callable_argument(site.node)
        if argument is None:
            continue
        info = project.functions.get(site.caller)
        self_class = info.class_name if info is not None else None
        target = None
        if isinstance(argument, (ast.Name, ast.Attribute)):
            target = project.resolve_call(site.module, argument, self_class)
        if target is not None and target in project.functions:
            roots.append(WorkerRoot(target, via, site.module, site.node))
    return roots


# ------------------------------------------------------------ reachability


def reachable_functions(
    project: Project, graph: CallGraph, root: str
) -> Set[str]:
    """Qualified names of every function ``root`` can reach.

    Follows resolved call edges, class constructions (``Cls(...)`` reaches
    ``Cls.__init__``), and nesting: a function's nested defs (closures)
    execute within its dynamic extent, so ``f`` reaches every ``f.inner``.
    """
    nested: Dict[str, List[str]] = {}
    for qname in project.functions:
        parent = qname.rsplit(".", 1)[0]
        if parent in project.functions:
            nested.setdefault(parent, []).append(qname)

    seen: Set[str] = set()
    frontier = [root]
    while frontier:
        current = frontier.pop()
        if current in seen or current not in project.functions:
            continue
        seen.add(current)
        frontier.extend(nested.get(current, ()))
        for site in graph.by_caller.get(current, ()):
            callee = site.callee
            if callee is None:
                continue
            if callee in project.classes:
                callee = f"{callee}.__init__"
            if callee in project.functions and callee not in seen:
                frontier.append(callee)
    return seen


# ----------------------------------------------------------- direct effects


def _dotted(expr: ast.expr) -> Optional[str]:
    parts: List[str] = []
    current = expr
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _env_var_name(project: Project, module: str, arg: ast.expr) -> str:
    """Best-effort name of the environment variable being read."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.Name):
        resolved = project.resolve(module, arg.id)
        if resolved is not None and resolved in project.constants:
            value = project.constants[resolved]
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                return value.value
    dotted = _dotted(arg)
    if dotted is not None:
        resolved = project.resolve(module, dotted)
        if resolved is not None and resolved in project.constants:
            value = project.constants[resolved]
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                return value.value
    return "<dynamic>"


def _local_names(node: ast.AST) -> Set[str]:
    """Names bound locally in one function body (nested defs excluded)."""
    names: Set[str] = set()
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = node.args
    for arg in (
        *args.posonlyargs, *args.args, *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ):
        names.add(arg.arg)

    def visit(parent: ast.AST) -> None:
        for child in ast.iter_child_nodes(parent):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(child.name)
                continue
            if isinstance(child, ast.Name) and isinstance(
                child.ctx, ast.Store
            ):
                names.add(child.id)
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                for sub in ast.walk(child.target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
            visit(child)

    visit(node)
    return names


def _function_effects(
    project: Project, info: FunctionInfo
) -> List[EffectSite]:
    """Direct effect sites of one function body (nested defs excluded)."""
    sites: List[EffectSite] = []
    module = info.module
    declared_global: Set[str] = set()
    body_nodes: List[ast.AST] = []

    def collect(parent: ast.AST) -> None:
        for child in ast.iter_child_nodes(parent):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            body_nodes.append(child)
            collect(child)

    collect(info.node)
    for node in body_nodes:
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    locals_ = _local_names(info.node) - declared_global

    def add(kind: str, node: ast.AST, detail: str) -> None:
        sites.append(EffectSite(kind, module, info.qname, node, detail))

    for node in body_nodes:
        # ---- environment reads -------------------------------------
        if isinstance(node, ast.Call):
            target = _dotted(node.func)
            resolved = (
                project.resolve(module, target) or target
                if target is not None else None
            )
            if resolved is not None:
                if resolved == "os.getenv" or resolved.endswith(
                    "environ.get"
                ):
                    arg = node.args[0] if node.args else None
                    name = (
                        _env_var_name(project, module, arg)
                        if arg is not None else "<dynamic>"
                    )
                    add(ENV_READ, node, name)
                elif resolved in _RNG_CTORS or resolved.endswith(
                    _RNG_CTOR_SUFFIXES
                ):
                    if not node.args and not node.keywords:
                        add(RNG_UNSEEDED, node, resolved)
            if isinstance(node.func, ast.Name) and node.func.id in _IO_NAMES:
                add(IO, node, node.func.id)
            elif isinstance(node.func, ast.Attribute) and (
                node.func.attr in _IO_ATTRS
            ):
                add(IO, node, node.func.attr)
        elif isinstance(node, ast.Subscript) and isinstance(
            node.ctx, ast.Load
        ):
            base = _dotted(node.value)
            if base is not None and (
                base == "os.environ"
                or (project.resolve(module, base) or "") == "os.environ"
            ):
                add(ENV_READ, node,
                    _env_var_name(project, module, node.slice))

        # ---- module-global writes ----------------------------------
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and (
                    target.id in declared_global
                ):
                    add(GLOBAL_WRITE, node, f"{module}.{target.id}")
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    base = target.value
                    if isinstance(base, ast.Name) and (
                        base.id not in locals_
                    ):
                        qname = f"{module}.{base.id}"
                        if qname in project.constants:
                            add(GLOBAL_WRITE, node, qname)
    return sites


def direct_effects(project: Project) -> Dict[str, List[EffectSite]]:
    """Per-function direct effect sites for every project function."""
    return {
        qname: _function_effects(project, info)
        for qname, info in project.functions.items()
    }


# ---------------------------------------------------------------- fixpoint


def classify_effects(
    project: Project,
    graph: CallGraph,
    effects: Optional[Dict[str, List[EffectSite]]] = None,
) -> Dict[str, FrozenSet[str]]:
    """Transitive effect labels for every function, to a fixpoint.

    A function's label set is the union of its direct effects, its nested
    defs', and every resolved callee's — iterated until stable, so cycles
    (mutual recursion) converge instead of recursing. Functions with no
    label are classified :data:`PURE`.
    """
    if effects is None:
        effects = direct_effects(project)
    labels: Dict[str, Set[str]] = {
        qname: {LABELS[s.kind] for s in sites}
        for qname, sites in effects.items()
    }
    callees: Dict[str, Set[str]] = {qname: set() for qname in labels}
    for qname in labels:
        parent = qname.rsplit(".", 1)[0]
        if parent in callees:
            callees[parent].add(qname)
    for caller, sites in graph.by_caller.items():
        if caller not in callees:
            continue
        for site in sites:
            callee = site.callee
            if callee is None:
                continue
            if callee in project.classes:
                callee = f"{callee}.__init__"
            if callee in labels:
                callees[caller].add(callee)

    changed = True
    while changed:
        changed = False
        for qname, targets in callees.items():
            merged = labels[qname]
            before = len(merged)
            for target in targets:
                merged |= labels[target]
            if len(merged) != before:
                changed = True

    return {
        qname: frozenset(merged) if merged else frozenset({PURE})
        for qname, merged in labels.items()
    }


# -------------------------------------------- None-default substitutions


@dataclass(frozen=True)
class Substitution:
    """A ``None``-defaulted parameter replaced downstream by a constant."""

    parameter: str  #: parameter name on the worker root
    function: str  #: qualified name where the substitution happens
    constant: str  #: qualified name of the substituted module constant
    node: ast.AST  #: the substituting expression/statement


def _constant_reference(
    project: Project, module: str, expr: ast.expr
) -> Optional[str]:
    """A module-level constant referenced by ``expr``, if any."""
    for node in ast.walk(expr):
        dotted: Optional[str] = None
        if isinstance(node, ast.Name):
            dotted = node.id
        elif isinstance(node, ast.Attribute):
            dotted = _dotted(node)
        if dotted is None:
            continue
        resolved = project.resolve(module, dotted)
        if resolved is not None and resolved in project.constants:
            return resolved
    return None


def _substitutions_in(
    project: Project, info: FunctionInfo, param: str
) -> List[Tuple[ast.AST, str]]:
    """``(node, constant)`` pairs replacing ``param`` when it is None."""
    found: List[Tuple[ast.AST, str]] = []

    def is_param(expr: ast.expr) -> bool:
        return isinstance(expr, ast.Name) and expr.id == param

    def none_test(test: ast.expr) -> bool:
        return (
            isinstance(test, ast.Compare)
            and is_param(test.left)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        )

    for node in ast.walk(info.node):
        replacement: Optional[ast.expr] = None
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
            if node.values and is_param(node.values[0]):
                replacement = node.values[-1]
        elif isinstance(node, ast.IfExp) and none_test(node.test):
            replacement = node.body
        elif isinstance(node, ast.If) and none_test(node.test):
            for stmt in node.body:
                if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == param
                    for t in stmt.targets
                ):
                    replacement = stmt.value
        if replacement is None or is_param(replacement):
            continue
        constant = _constant_reference(project, info.module, replacement)
        if constant is not None:
            found.append((node, constant))
    return found


def none_default_substitutions(
    project: Project, graph: CallGraph, root: str
) -> List[Substitution]:
    """Substitutions of the root's ``None``-defaulted parameters.

    Each ``None``-defaulted parameter of ``root`` is threaded through call
    sites (an argument that is the bare parameter name aliases the
    callee's parameter) and every aliased function is searched for the
    ``x or DEFAULT`` / ``x if x is not None``-style substitution patterns
    that replace ``None`` with a module-level constant — the value the
    task actually consumed, invisible to a fingerprint that only ever saw
    ``None``.
    """
    info = project.functions.get(root)
    if info is None:
        return []
    none_params: List[str] = []
    args = info.node.args  # type: ignore[union-attr]
    positional = [*args.posonlyargs, *args.args]
    for arg, default in zip(
        positional[::-1], list(args.defaults)[::-1]
    ):
        if isinstance(default, ast.Constant) and default.value is None:
            none_params.append(arg.arg)
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if (
            kw_default is not None
            and isinstance(kw_default, ast.Constant)
            and kw_default.value is None
        ):
            none_params.append(arg.arg)

    found: List[Substitution] = []
    for param in none_params:
        worklist: List[Tuple[str, str]] = [(root, param)]
        visited: Set[Tuple[str, str]] = set()
        while worklist:
            qname, alias = worklist.pop()
            if (qname, alias) in visited:
                continue
            visited.add((qname, alias))
            fn = project.functions.get(qname)
            if fn is None:
                continue
            for node, constant in _substitutions_in(project, fn, alias):
                found.append(Substitution(param, qname, constant, node))
            for site in graph.by_caller.get(qname, ()):
                callee = site.callee
                if callee is None or callee not in project.functions:
                    continue
                callee_info = project.functions[callee]
                bound = _bound_parameter(site.node, callee_info, alias)
                if bound is not None:
                    worklist.append((callee, bound))
    return found


def _bound_parameter(
    call: ast.Call, callee: FunctionInfo, alias: str
) -> Optional[str]:
    """Callee parameter receiving the bare name ``alias`` at ``call``."""
    for keyword in call.keywords:
        if (
            keyword.arg is not None
            and isinstance(keyword.value, ast.Name)
            and keyword.value.id == alias
        ):
            return keyword.arg if keyword.arg in callee.params else None
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            return None
        if isinstance(arg, ast.Name) and arg.id == alias:
            if index < len(callee.params):
                return callee.params[index]
    return None


# ----------------------------------------------------------------- helpers


def roots_by_qname(roots: Iterable[WorkerRoot]) -> Dict[str, WorkerRoot]:
    """First submission site per distinct worker function."""
    unique: Dict[str, WorkerRoot] = {}
    for root in roots:
        unique.setdefault(root.qname, root)
    return unique
