"""Project-wide rules R8–R12, driven by the inter-procedural engine.

Unlike R1–R7 (one module at a time), these rules see the whole project:
the symbol table and call graph (:mod:`repro.analysis.symbols`,
:mod:`repro.analysis.callgraph`), the seed dataflow classifier
(:mod:`repro.analysis.dataflow`), the mirror manifest
(:mod:`repro.analysis.mirrors`), and the effect/provenance layer
(:mod:`repro.analysis.effects`).

The vectorization-soundness rules R14–R17 subclass :class:`ProjectRule`
too but live in :mod:`repro.analysis.array_rules` (with their index-
provenance dataflow in :mod:`repro.analysis.index_flow`);
:func:`repro.analysis.core.default_rules` appends them after
:data:`PROJECT_RULES`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.analysis.callgraph import build_callgraph
from repro.analysis.core import Finding, ParsedModule
from repro.analysis.dataflow import Origin, classify_seed_expr
from repro.analysis.mirrors import (
    MirrorSide,
    MirrorTagError,
    load_manifest,
    scan_mirrors,
)
from repro.analysis.rules import Rule
from repro.analysis.symbols import Project
from repro.constants import DISTINCTIVE_PAPER_VALUES


class ProjectRule(Rule):
    """A rule that checks the whole project instead of one module.

    ``check`` (the per-module entry point) is a no-op; the engine calls
    :meth:`check_project` once after the symbol table is built.
    """

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


def _finding(
    module: ParsedModule, rule: str, node: ast.AST, message: str
) -> Finding:
    return module.finding(rule, node, message)


# ------------------------------------------------------------------ R8


#: RNG constructors whose seed argument R8 traces. Matched on the resolved
#: qualified name.
_RNG_CONSTRUCTORS = ("random.Random",)
_RNG_CONSTRUCTOR_SUFFIXES = (".default_rng",)

#: Approved-root calls whose *arguments* are still checked for entropy.
_SEED_DERIVERS = ("derive_seed", "make_rng")


class SeedProvenanceRule(ProjectRule):
    """R8: every RNG seed must trace back to derive_seed or a config seed.

    For each ``random.Random(seed)`` / ``numpy.random.default_rng(seed)``
    construction — and each ``derive_seed``/``make_rng`` call — the seed
    expression is classified through assignments, parameters (followed to
    every caller through the call graph), module constants, and wrapper
    returns. Forbidden entropy (``hash()``, wall clock, ``os.urandom``,
    ``os.getpid``, ``id()``, uuid/secrets) anywhere in the flow is a
    finding, as is a flow with no approved origin at all.
    """

    code = "R8"
    name = "seed-provenance"
    description = "RNG seeds not traceable to derive_seed/config (dataflow)"

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = build_callgraph(project)
        for site in graph.sites:
            callee = site.callee
            if callee is None:
                continue
            module = project.modules[site.module]
            if callee == "random.SystemRandom" or callee.endswith(
                ".SystemRandom"
            ):
                yield _finding(
                    module, self.code, site.node,
                    "`random.SystemRandom` draws OS entropy; simulations "
                    "must use seeded `random.Random` streams",
                )
                continue
            is_ctor = callee in _RNG_CONSTRUCTORS or callee.endswith(
                _RNG_CONSTRUCTOR_SUFFIXES
            )
            is_deriver = callee.rsplit(".", 1)[-1] in _SEED_DERIVERS
            if not is_ctor and not is_deriver:
                continue
            seed_args = [
                *site.node.args,
                *[kw.value for kw in site.node.keywords],
            ]
            if is_ctor and not seed_args:
                continue  # unseeded construction is R1's finding
            scope = project.functions.get(site.caller)
            for argument in seed_args:
                origins = classify_seed_expr(
                    project, graph, site.module, scope, argument
                )
                yield from self._judge(
                    module, site.node, callee, origins, is_deriver
                )

    def _judge(
        self,
        module: ParsedModule,
        node: ast.Call,
        callee: str,
        origins: Set[Origin],
        is_deriver: bool,
    ) -> Iterator[Finding]:
        bad = sorted(o[4:] for o in origins if o.startswith("bad:"))
        target = callee.rsplit(".", 1)[-1]
        if bad:
            yield _finding(
                module, self.code, node,
                f"seed flowing into `{target}(...)` comes from "
                f"{'; '.join(bad)}; derive it via "
                "repro.util.rng.derive_seed from a config seed",
            )
            return
        if is_deriver:
            return  # approved root; only tainted arguments matter
        if not origins & {"derived", "literal", "config"}:
            yield _finding(
                module, self.code, node,
                f"seed of `{target}(...)` cannot be traced to "
                "repro.util.rng.derive_seed, a literal, or a config seed "
                "through any caller; thread an explicit seed through",
            )


# ------------------------------------------------------------------ R9


class ConstantProvenanceRule(ProjectRule):
    """R9: distinctive Table 6/7 values must come from repro.constants.

    Complements R2 (which matches ``name=value`` bindings): R9 flags the
    *value itself* — any numeric literal equal to a distinctive paper
    constant, anywhere outside ``repro/constants.py``, including values
    re-derived arithmetically from literals (``1 - 0.001``) or bound to a
    local alias first. Workload-generator modules are exempt: their small
    physical fractions (branch rates etc.) collide with the Table 6
    bandit constants without sharing their meaning.
    """

    code = "R9"
    name = "constant-provenance"
    description = "distinctive Table 6/7 literals re-derived outside constants"

    _EXEMPT_FRAGMENTS = ("constants.py", "workloads/")

    def __init__(
        self, registry: Optional[Dict[float, str]] = None
    ) -> None:
        self.registry = (
            DISTINCTIVE_PAPER_VALUES if registry is None else registry
        )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for module in project.modules.values():
            if any(f in module.path for f in self._EXEMPT_FRAGMENTS):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: ParsedModule) -> Iterator[Finding]:
        seen: Set[int] = set()

        def visit(node: ast.AST) -> Iterator[Finding]:
            for child in ast.iter_child_nodes(node):
                folded = _fold_numeric(child)
                if folded is not None:
                    name = self.registry.get(folded)
                    if name is not None and id(child) not in seen:
                        seen.add(id(child))
                        yield _finding(
                            module, self.code, child,
                            f"value {folded!r} re-derives paper constant "
                            f"{name}; import it from repro.constants",
                        )
                        continue  # the match covers its sub-expressions
                yield from visit(child)

        yield from visit(module.tree)


def _fold_numeric(node: ast.AST) -> Optional[Union[int, float]]:
    """Constant-fold a literal-only numeric expression, else ``None``."""
    if isinstance(node, ast.Constant):
        value = node.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return value
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        operand = _fold_numeric(node.operand)
        if operand is None:
            return None
        return -operand if isinstance(node.op, ast.USub) else operand
    if isinstance(node, ast.BinOp):
        left = _fold_numeric(node.left)
        right = _fold_numeric(node.right)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.Div):
                return left / right
            if isinstance(node.op, ast.Pow):
                return left ** right
        except (ZeroDivisionError, OverflowError, ValueError):
            return None
    return None


# ------------------------------------------------------------------ R10


class MirrorDriftRule(ProjectRule):
    """R10: mirrored kernel/object-path regions must change together.

    Tagged regions (see :mod:`repro.analysis.mirrors`) are fingerprinted
    and compared against ``mirror-manifest.json``. One side drifting from
    its recorded fingerprint while the other stays put means a paired
    edit was forgotten — the replay kernel and the object path no longer
    implement the same semantics.
    """

    code = "R10"
    name = "mirror-drift"
    description = "kernel/object-path mirror regions drifting apart"

    def check_project(self, project: Project) -> Iterator[Finding]:
        try:
            tags = scan_mirrors(project)
        except MirrorTagError as error:
            yield self._file_finding(
                project, str(error).split(":", 1)[0], 1,
                f"malformed mirror tags: {error}",
            )
            return
        for name, sides in sorted(tags.items()):
            if len(sides) != 2:
                yield self._side_finding(
                    project, sides[0],
                    f"mirror[{name}] is tagged on {len(sides)} region(s); "
                    "a mirror pairs exactly 2 (kernel side + object side)",
                )
        manifest = self._load(project)
        if manifest is None:
            for name, sides in sorted(tags.items()):
                yield self._side_finding(
                    project, sides[0],
                    f"mirror[{name}] has no recorded manifest; run "
                    "`python -m repro.analysis --update-mirrors`",
                )
            return
        yield from self._compare(project, tags, manifest)

    # ------------------------------------------------------------- helpers

    def _load(
        self, project: Project
    ) -> Optional[Dict[str, List[Dict[str, str]]]]:
        path = project.mirror_manifest_path
        if path is None or not path.is_file():
            return None
        return load_manifest(path)

    def _compare(
        self,
        project: Project,
        tags: Dict[str, List[MirrorSide]],
        manifest: Dict[str, List[Dict[str, str]]],
    ) -> Iterator[Finding]:
        for name in sorted(set(tags) | set(manifest)):
            sides = tags.get(name)
            recorded = manifest.get(name)
            if sides is None and recorded is not None:
                yield self._file_finding(
                    project, recorded[0].get("path", "<unknown>"), 1,
                    f"mirror[{name}] is recorded in the manifest but no "
                    "longer tagged in the source; re-tag it or run "
                    "--update-mirrors",
                )
                continue
            if sides is not None and recorded is None:
                yield self._side_finding(
                    project, sides[0],
                    f"mirror[{name}] is tagged but not recorded; run "
                    "`python -m repro.analysis --update-mirrors`",
                )
                continue
            assert sides is not None and recorded is not None
            by_anchor = {
                (entry["path"], entry["anchor"]): entry["fingerprint"]
                for entry in recorded
            }
            current = {(s.path, s.anchor): s for s in sides}
            if set(by_anchor) != set(current):
                yield self._side_finding(
                    project, sides[0],
                    f"mirror[{name}]'s tagged regions moved (anchors "
                    "changed); re-record with --update-mirrors",
                )
                continue
            changed = [
                side for key, side in sorted(current.items())
                if side.fingerprint != by_anchor[key]
            ]
            unchanged = [
                side for key, side in sorted(current.items())
                if side.fingerprint == by_anchor[key]
            ]
            if len(changed) == 1 and unchanged:
                other = unchanged[0]
                yield self._side_finding(
                    project, changed[0],
                    f"mirror[{name}] changed on one side only; its "
                    f"counterpart at {other.path} ({other.anchor}) is "
                    "untouched — apply the paired edit, verify with "
                    "REPRO_SANITIZE=1, then re-record with "
                    "--update-mirrors",
                )
            elif len(changed) >= 2:
                yield self._side_finding(
                    project, changed[0],
                    f"both sides of mirror[{name}] changed; verify "
                    "equivalence with REPRO_SANITIZE=1, then re-record "
                    "with --update-mirrors",
                )

    def _side_finding(
        self, project: Project, side: MirrorSide, message: str
    ) -> Finding:
        module = project.module_for_path(side.path)
        if module is not None:
            line = side.line
            text = (
                module.lines[line - 1].strip()
                if line <= len(module.lines) else ""
            )
            return Finding(self.code, side.path, line, 0, message, text)
        return Finding(self.code, side.path, side.line, 0, message, "")

    def _file_finding(
        self, project: Project, path: str, line: int, message: str
    ) -> Finding:
        module = project.module_for_path(path)
        text = ""
        if module is not None and line <= len(module.lines):
            text = module.lines[line - 1].strip()
        return Finding(self.code, path, line, 0, message, text)


# ------------------------------------------------------------------ R11


class CacheKeyCompletenessRule(ProjectRule):
    """R11: every input a pool worker consumes must reach its cache key.

    ``task_key`` fingerprints a worker function's qualified name plus the
    kwargs it was submitted with. Anything else that influences the
    result — an environment variable read somewhere down the worker's
    call tree, or a ``None``-defaulted parameter silently replaced by a
    module constant after the key was computed — makes two different
    computations share a fingerprint, and a cached figure goes stale
    without a single test failing. Three checks:

    - workers taking ``*args``/``**kwargs`` (the fingerprint cannot see
      through forwarding);
    - env-var reads reachable from a worker body, unless waived with
      ``# repro: cache-invariant[NAME]`` on or above the reading line
      (for gates whose paths are provably equivalent, e.g. the
      sanitizer-verified kernel toggles);
    - ``None``-defaulted worker parameters substituted downstream with a
      module-level constant (``x or DEFAULT`` and friends) — the value
      the task actually used never reached the key.
    """

    code = "R11"
    name = "cache-key-completeness"
    description = "worker inputs invisible to the task_key fingerprint"

    def check_project(self, project: Project) -> Iterator[Finding]:
        from repro.analysis.effects import (
            ENV_READ,
            direct_effects,
            find_worker_roots,
            none_default_substitutions,
            reachable_functions,
            roots_by_qname,
            waived_invariants,
        )

        graph = build_callgraph(project)
        roots = roots_by_qname(find_worker_roots(project, graph))
        if not roots:
            return
        effects = direct_effects(project)
        seen_env: Set[Tuple[str, int, int, str]] = set()
        seen_subs: Set[Tuple[str, str]] = set()
        for qname in sorted(roots):
            info = project.functions[qname]
            module = project.modules[info.module]
            args = info.node.args  # type: ignore[union-attr]
            for vararg, star in ((args.vararg, "*"), (args.kwarg, "**")):
                if vararg is not None:
                    yield _finding(
                        module, self.code, info.node,
                        f"worker `{qname}` takes {star}{vararg.arg}; the "
                        "task fingerprint cannot see through argument "
                        "forwarding — use explicit parameters",
                    )
            for sub in none_default_substitutions(project, graph, qname):
                key = (qname, sub.parameter)
                if key in seen_subs:
                    continue
                seen_subs.add(key)
                yield _finding(
                    module, self.code, info.node,
                    f"parameter `{sub.parameter}` of worker `{qname}` "
                    f"defaults to None and is replaced with "
                    f"`{sub.constant}` inside `{sub.function}`; the "
                    "substituted value never reaches the task fingerprint "
                    "— make the real default explicit at the worker",
                )
            for fn in sorted(reachable_functions(project, graph, qname)):
                for site in effects.get(fn, ()):
                    if site.kind != ENV_READ:
                        continue
                    site_module = project.modules[site.module]
                    waived = waived_invariants(
                        site_module, site.node.lineno
                    )
                    if site.detail in waived or "*" in waived:
                        continue
                    key = (
                        site.module, site.node.lineno,
                        site.node.col_offset, site.detail,
                    )
                    if key in seen_env:
                        continue
                    seen_env.add(key)
                    yield _finding(
                        site_module, self.code, site.node,
                        f"env var `{site.detail}` read by `{fn}` (reachable "
                        f"from worker `{qname}`) is not part of the task "
                        "fingerprint and can diverge between host and "
                        "worker; key it or waive with "
                        f"`# repro: cache-invariant[{site.detail}]`",
                    )


# ------------------------------------------------------------------ R12


class WorkerPurityRule(ProjectRule):
    """R12: pool workers must not mutate shared state or spawn ambient RNG.

    A fixpoint effect system (:mod:`repro.analysis.effects`) classifies
    every function as pure / reads-env / writes-global / does-IO /
    spawns-RNG; any function reachable from a pool submission site that
    *writes a module-level binding* is flagged — the write lands in the
    worker process and silently vanishes (or, under a fork start method,
    leaks between tasks). Unseeded RNG construction in a worker's call
    tree is likewise flagged: every stream must trace to ``derive_seed``
    (seeded constructions are already proven by R8, project-wide, so the
    worker case is subsumed). A deliberate per-process memo can be
    acknowledged with ``# repro: ignore[R12]`` on the writing line.
    """

    code = "R12"
    name = "worker-purity"
    description = "pool workers writing shared state or spawning ambient RNG"

    def check_project(self, project: Project) -> Iterator[Finding]:
        from repro.analysis.effects import (
            GLOBAL_WRITE,
            RNG_UNSEEDED,
            direct_effects,
            find_worker_roots,
            reachable_functions,
            roots_by_qname,
        )

        graph = build_callgraph(project)
        roots = roots_by_qname(find_worker_roots(project, graph))
        if not roots:
            return
        effects = direct_effects(project)
        reported: Set[Tuple[str, int, str]] = set()
        for qname in sorted(roots):
            for fn in sorted(reachable_functions(project, graph, qname)):
                for site in effects.get(fn, ()):
                    if site.kind not in (GLOBAL_WRITE, RNG_UNSEEDED):
                        continue
                    key = (site.module, site.node.lineno, site.detail)
                    if key in reported:
                        continue
                    reported.add(key)
                    site_module = project.modules[site.module]
                    if site.kind == GLOBAL_WRITE:
                        yield _finding(
                            site_module, self.code, site.node,
                            f"`{fn}` (reachable from worker `{qname}`) "
                            f"writes module global `{site.detail}`; pool "
                            "workers must not mutate shared state — return "
                            "the value instead, or mark a deliberate "
                            "per-process memo with `# repro: ignore[R12]`",
                        )
                    else:
                        yield _finding(
                            site_module, self.code, site.node,
                            f"`{fn}` (reachable from worker `{qname}`) "
                            f"constructs `{site.detail}` with no seed; "
                            "worker RNG streams must derive from "
                            "repro.util.rng.derive_seed",
                        )


#: Project-rule instances, in code order (appended to ALL_RULES).
PROJECT_RULES: Tuple[ProjectRule, ...] = (
    SeedProvenanceRule(),
    ConstantProvenanceRule(),
    MirrorDriftRule(),
    CacheKeyCompletenessRule(),
    WorkerPurityRule(),
)
