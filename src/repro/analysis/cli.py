"""Command-line front end: ``python -m repro.analysis [paths...]``.

Collects every finding in one pass, prints them with a per-rule summary
table (via :func:`repro.experiments.reporting.format_table`, the same
renderer the experiment tables use), and exits non-zero only when there
are findings not covered by the baseline — so CI output is actionable in
a single run instead of dying on the first hit.

``--format json`` swaps the human-readable report for one JSON document
on stdout (findings plus per-rule counts), so CI can archive the run as
an artifact and downstream tooling can diff reports without scraping the
table.  Exit codes are identical in both formats.

Exit codes: 0 clean (or fully baselined), 1 new findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.baseline import (
    load_baseline,
    prune_baseline,
    split_by_baseline,
    stale_entries,
    write_baseline,
)
from repro.analysis.core import Finding, default_rules, run_analysis
from repro.analysis.rules import Rule

#: Every rule the CLI knows: per-module R1–R7 and R13 plus project-wide
#: R8–R12 and the vectorization-soundness rules R14–R17.
ACTIVE_RULES: Tuple[Rule, ...] = default_rules()

RULES_BY_CODE: Dict[str, Rule] = {rule.code: rule for rule in ACTIVE_RULES}


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Fidelity & determinism static analysis (rules R1-R17).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="JSON baseline of accepted findings; new findings still fail",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record the current findings into --baseline and exit 0",
    )
    parser.add_argument(
        "--prune", action="store_true",
        help="drop baseline entries whose finding no longer exists, then lint",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (e.g. R1,R4); default: all",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--root", type=Path, default=Path.cwd(),
        help="paths in output/baseline keys are relative to this directory",
    )
    parser.add_argument(
        "--mirrors", type=Path, default=None, metavar="FILE",
        help="R10 mirror manifest (default: ROOT/mirror-manifest.json)",
    )
    parser.add_argument(
        "--update-mirrors", action="store_true",
        help="re-record every mirror fingerprint into the manifest and exit",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="on-disk symbol-table cache (default: $REPRO_ANALYSIS_CACHE_DIR)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parse/lint modules in a process pool of N workers",
    )
    parser.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="report format: human-readable table (default) or one JSON "
        "document suitable for CI artifacts",
    )
    return parser


def _select_rules(selection: Optional[str]) -> Sequence[Rule]:
    if selection is None:
        return ACTIVE_RULES
    rules: List[Rule] = []
    for code in selection.split(","):
        code = code.strip().upper()
        if code not in RULES_BY_CODE:
            known = ", ".join(sorted(RULES_BY_CODE))
            raise SystemExit(
                f"error: unknown rule {code!r} (known: {known})"
            )
        rules.append(RULES_BY_CODE[code])
    return rules


def _update_mirrors(paths: Sequence[Path], root: Path, manifest: Path) -> int:
    from repro.analysis.mirrors import MirrorTagError, scan_mirrors, write_manifest
    from repro.analysis.symbols import build_project

    project = build_project(paths, root=root)
    try:
        tags = scan_mirrors(project)
    except MirrorTagError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    write_manifest(manifest, tags)
    sides = sum(len(s) for s in tags.values())
    print(
        f"recorded {len(tags)} mirror(s) / {sides} side(s) to {manifest}"
    )
    return 0


def summarize(
    rules: Sequence[Rule],
    new: Sequence[Finding],
    baselined: Sequence[Finding],
) -> str:
    """Per-rule summary table rendered like the experiment tables."""
    from repro.experiments.reporting import format_table

    counts: Dict[str, Tuple[int, int]] = {}
    for rule in rules:
        counts[rule.code] = (0, 0)
    for finding in new:
        first, second = counts.get(finding.rule, (0, 0))
        counts[finding.rule] = (first + 1, second)
    for finding in baselined:
        first, second = counts.get(finding.rule, (0, 0))
        counts[finding.rule] = (first, second + 1)
    rows = [
        (
            rule.code,
            rule.name,
            counts[rule.code][0],
            counts[rule.code][1],
        )
        for rule in rules
    ]
    rows.append(("total", "", len(new), len(baselined)))
    return format_table(
        ["rule", "name", "new", "baselined"], rows,
        title="repro.analysis summary",
    )


def render_json(
    rules: Sequence[Rule],
    new: Sequence[Finding],
    baselined: Sequence[Finding],
) -> str:
    """One JSON document mirroring the table report.

    Every finding (new *and* baselined) appears under ``findings`` with a
    ``baselined`` flag, so an archived artifact records the full burn-down
    state of the run, not just what failed it.  Keys are sorted and the
    document ends in a newline so artifacts diff cleanly across runs.
    """

    def encode(finding: Finding, accepted: bool) -> Dict[str, object]:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
            "source_line": finding.source_line,
            "baselined": accepted,
        }

    counts: Dict[str, Dict[str, int]] = {
        rule.code: {"new": 0, "baselined": 0} for rule in rules
    }
    for finding in new:
        counts.setdefault(finding.rule, {"new": 0, "baselined": 0})
        counts[finding.rule]["new"] += 1
    for finding in baselined:
        counts.setdefault(finding.rule, {"new": 0, "baselined": 0})
        counts[finding.rule]["baselined"] += 1
    document = {
        "rules": [
            {"code": rule.code, "name": rule.name} for rule in rules
        ],
        "counts": counts,
        "findings": [
            *(encode(finding, False) for finding in new),
            *(encode(finding, True) for finding in baselined),
        ],
        "new": len(new),
        "baselined": len(baselined),
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ACTIVE_RULES:
            print(f"{rule.code}  {rule.name:<18} {rule.description}")
        return 0

    if args.write_baseline and args.baseline is None:
        parser.error("--write-baseline requires --baseline FILE")
    if args.prune and args.baseline is None:
        parser.error("--prune requires --baseline FILE")

    paths = [Path(p) for p in args.paths]

    if args.update_mirrors:
        manifest = args.mirrors
        if manifest is None:
            manifest = args.root / "mirror-manifest.json"
        return _update_mirrors(paths, args.root, manifest)

    if args.prune:
        removed = prune_baseline(args.baseline, args.root)
        if removed:
            print(
                f"pruned {len(removed)} stale baseline entr"
                f"{'y' if len(removed) == 1 else 'ies'} from {args.baseline}"
            )

    rules = _select_rules(args.select)
    try:
        findings = run_analysis(
            paths,
            rules=rules,
            root=args.root,
            mirrors=args.mirrors,
            cache_dir=args.cache_dir,
            jobs=max(1, args.jobs),
        )
    except (FileNotFoundError, SyntaxError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(
            f"wrote {len(findings)} finding(s) to baseline {args.baseline}"
        )
        return 0

    accepted = load_baseline(args.baseline) if args.baseline else set()
    if accepted and not args.prune:
        stale = stale_entries(accepted, args.root)
        if stale:
            print(
                f"warning: {len(stale)} baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'} no longer match any "
                "source line; run with --prune to drop them",
                file=sys.stderr,
            )
    new, baselined = split_by_baseline(findings, accepted)

    if args.format == "json":
        sys.stdout.write(render_json(rules, new, baselined))
        return 1 if new else 0

    for finding in new:
        print(finding.format())
    print(summarize(rules, new, baselined))
    if new:
        print(
            f"{len(new)} new finding(s); fix them, suppress with "
            "`# repro: ignore[CODE]`, or record them with --write-baseline",
        )
        return 1
    return 0
