"""Command-line front end: ``python -m repro.analysis [paths...]``.

Collects every finding in one pass, prints them with a per-rule summary
table (via :func:`repro.experiments.reporting.format_table`, the same
renderer the experiment tables use), and exits non-zero only when there
are findings not covered by the baseline — so CI output is actionable in
a single run instead of dying on the first hit.

Exit codes: 0 clean (or fully baselined), 1 new findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.baseline import load_baseline, split_by_baseline, write_baseline
from repro.analysis.core import Finding, run_analysis
from repro.analysis.rules import ALL_RULES, RULES_BY_CODE, Rule


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Fidelity & determinism static analysis (rules R1-R6).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="JSON baseline of accepted findings; new findings still fail",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record the current findings into --baseline and exit 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (e.g. R1,R4); default: all",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--root", type=Path, default=Path.cwd(),
        help="paths in output/baseline keys are relative to this directory",
    )
    return parser


def _select_rules(selection: Optional[str]) -> Sequence[Rule]:
    if selection is None:
        return ALL_RULES
    rules: List[Rule] = []
    for code in selection.split(","):
        code = code.strip().upper()
        if code not in RULES_BY_CODE:
            known = ", ".join(sorted(RULES_BY_CODE))
            raise SystemExit(
                f"error: unknown rule {code!r} (known: {known})"
            )
        rules.append(RULES_BY_CODE[code])
    return rules


def summarize(
    rules: Sequence[Rule],
    new: Sequence[Finding],
    baselined: Sequence[Finding],
) -> str:
    """Per-rule summary table rendered like the experiment tables."""
    from repro.experiments.reporting import format_table

    counts: Dict[str, Tuple[int, int]] = {}
    for rule in rules:
        counts[rule.code] = (0, 0)
    for finding in new:
        first, second = counts.get(finding.rule, (0, 0))
        counts[finding.rule] = (first + 1, second)
    for finding in baselined:
        first, second = counts.get(finding.rule, (0, 0))
        counts[finding.rule] = (first, second + 1)
    rows = [
        (
            rule.code,
            rule.name,
            counts[rule.code][0],
            counts[rule.code][1],
        )
        for rule in rules
    ]
    rows.append(("total", "", len(new), len(baselined)))
    return format_table(
        ["rule", "name", "new", "baselined"], rows,
        title="repro.analysis summary",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name:<18} {rule.description}")
        return 0

    if args.write_baseline and args.baseline is None:
        parser.error("--write-baseline requires --baseline FILE")

    rules = _select_rules(args.select)
    paths = [Path(p) for p in args.paths]
    try:
        findings = run_analysis(paths, rules=rules, root=args.root)
    except (FileNotFoundError, SyntaxError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(
            f"wrote {len(findings)} finding(s) to baseline {args.baseline}"
        )
        return 0

    accepted = load_baseline(args.baseline) if args.baseline else set()
    new, baselined = split_by_baseline(findings, accepted)

    for finding in new:
        print(finding.format())
    print(summarize(rules, new, baselined))
    if new:
        print(
            f"{len(new)} new finding(s); fix them, suppress with "
            "`# repro: ignore[CODE]`, or record them with --write-baseline",
        )
        return 1
    return 0
