"""Baseline file support: burn pre-existing findings down incrementally.

A baseline is a JSON document listing the :meth:`Finding.key` of every
accepted finding. ``python -m repro.analysis --baseline FILE`` subtracts
baselined findings from the exit status (they are still counted in the
summary), and ``--write-baseline`` records the current findings so a new
rule can land without blocking CI on perfection.

Keys are content-based (rule, file, offending line text), so unrelated
edits do not invalidate a baseline, while any change to a baselined line
resurfaces its finding.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Set, Tuple

from repro.analysis.core import Finding

BASELINE_VERSION = 1


def load_baseline(path: Path) -> Set[str]:
    """Read the accepted finding keys; a missing file is an empty baseline."""
    if not path.exists():
        return set()
    document = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "entries" not in document:
        raise ValueError(
            f"baseline {path} is not a {{version, entries}} document"
        )
    version = document.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {version!r}; "
            f"this tool writes version {BASELINE_VERSION}"
        )
    entries = document["entries"]
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path} entries must be a list")
    return set(entries)


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Record ``findings`` as the accepted baseline (sorted, stable)."""
    document = {
        "version": BASELINE_VERSION,
        "entries": sorted({finding.key() for finding in findings}),
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def split_by_baseline(
    findings: Sequence[Finding], accepted: Set[str]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (new, baselined)."""
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        if finding.key() in accepted:
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined
