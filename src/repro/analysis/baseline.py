"""Baseline file support: burn pre-existing findings down incrementally.

A baseline is a JSON document listing the :meth:`Finding.key` of every
accepted finding. ``python -m repro.analysis --baseline FILE`` subtracts
baselined findings from the exit status (they are still counted in the
summary), and ``--write-baseline`` records the current findings so a new
rule can land without blocking CI on perfection.

Keys are content-based (rule, file, offending line text), so unrelated
edits do not invalidate a baseline, while any change to a baselined line
resurfaces its finding.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Finding

BASELINE_VERSION = 1


def load_baseline(path: Path) -> Set[str]:
    """Read the accepted finding keys; a missing file is an empty baseline."""
    if not path.exists():
        return set()
    document = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "entries" not in document:
        raise ValueError(
            f"baseline {path} is not a {{version, entries}} document"
        )
    version = document.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {version!r}; "
            f"this tool writes version {BASELINE_VERSION}"
        )
    entries = document["entries"]
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path} entries must be a list")
    return set(entries)


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Record ``findings`` as the accepted baseline (sorted, stable)."""
    document = {
        "version": BASELINE_VERSION,
        "entries": sorted({finding.key() for finding in findings}),
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def split_by_baseline(
    findings: Sequence[Finding], accepted: Set[str]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (new, baselined)."""
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        if finding.key() in accepted:
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined


def stale_entries(accepted: Set[str], root: Path) -> Set[str]:
    """Baseline keys whose finding can no longer exist in the tree.

    An entry ``rule|path|line-text`` is stale when ``root/path`` is gone,
    or when the recorded line text no longer appears anywhere in that file
    — the code the entry grandfathered has been fixed or rewritten, so the
    entry is dead weight. The check is purely content-based, which keeps
    it safe under partial runs (linting a subset of paths never marks the
    rest of the baseline stale).
    """
    stale: Set[str] = set()
    contents: Dict[str, Optional[Set[str]]] = {}
    for entry in accepted:
        parts = entry.split("|", 2)
        if len(parts) != 3:
            stale.add(entry)
            continue
        _rule, rel_path, line_text = parts
        file_path = root / rel_path
        if rel_path not in contents:
            source: Optional[str]
            try:
                source = file_path.read_text(encoding="utf-8")
            except OSError:
                source = None
            contents[rel_path] = (
                None if source is None
                else {line.strip() for line in source.splitlines()}
            )
        lines = contents[rel_path]
        if lines is None or line_text not in lines:
            stale.add(entry)
    return stale


def prune_baseline(path: Path, root: Path) -> Set[str]:
    """Drop stale entries from the baseline file; returns what was removed."""
    accepted = load_baseline(path)
    stale = stale_entries(accepted, root)
    if stale:
        document = {
            "version": BASELINE_VERSION,
            "entries": sorted(accepted - stale),
        }
        path.write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )
    return stale
