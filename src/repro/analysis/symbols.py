"""Pass 1 of the inter-procedural engine: the project symbol table.

:func:`build_project` parses every module under the scanned paths once and
resolves *names to definitions* across module boundaries: functions,
classes, methods, module-level constants, and the import aliases that
connect them. The resulting :class:`Project` is what the project-wide
rules (R8–R10) and the call graph (:mod:`repro.analysis.callgraph`)
consume — no rule re-parses or re-resolves anything.

Building the table is the dominant cost of a project-wide lint, so it can
be memoized on disk (``cache_dir`` / ``$REPRO_ANALYSIS_CACHE_DIR``) keyed
on the content hash of every source file: any edit anywhere invalidates
the entry, an untouched tree loads in one pickle read.
"""

from __future__ import annotations

import ast
import hashlib
import os
import pickle
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import ParsedModule, parse_module

#: Environment variable naming the default symbol-table cache directory.
CACHE_ENV = "REPRO_ANALYSIS_CACHE_DIR"

#: Bump to invalidate every cached symbol table (schema change).
_CACHE_VERSION = 1


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition, addressable by qualified name."""

    qname: str  #: e.g. ``repro.util.rng.make_rng`` / ``pkg.mod.Class.method``
    module: str  #: dotted module name the definition lives in
    node: ast.AST  #: the ``FunctionDef`` / ``AsyncFunctionDef``
    class_name: Optional[str]  #: immediate enclosing class, if a method
    params: Tuple[str, ...]  #: parameter names, ``self``/``cls`` stripped


@dataclass
class Project:
    """The project-wide symbol table (pass 1 output)."""

    #: dotted module name -> parsed module
    modules: Dict[str, ParsedModule] = field(default_factory=dict)
    #: module names that are packages (``__init__.py``)
    packages: Set[str] = field(default_factory=set)
    #: qualified name -> function/method definition
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: qualified name -> class definition
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)
    #: qualified name of a module-level binding -> its value expression
    constants: Dict[str, ast.expr] = field(default_factory=dict)
    #: module -> local name -> qualified target (import aliases)
    imports: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: module -> modules it imports (project modules only)
    import_graph: Dict[str, Set[str]] = field(default_factory=dict)
    #: display path -> dotted module name (for suppression lookups)
    path_index: Dict[str, str] = field(default_factory=dict)
    #: set by the driver, not cached: R10's recorded manifest location
    mirror_manifest_path: Optional[Path] = None

    # ------------------------------------------------------------- lookups

    def module_for_path(self, display_path: str) -> Optional[ParsedModule]:
        name = self.path_index.get(display_path)
        return self.modules.get(name) if name is not None else None

    def is_known(self, qname: str) -> bool:
        return (
            qname in self.functions
            or qname in self.classes
            or qname in self.constants
            or qname in self.modules
        )

    def resolve(self, module: str, dotted: str) -> Optional[str]:
        """Resolve ``dotted`` as written in ``module`` to a qualified name.

        Handles import aliases (``import x.y as z``, ``from m import n``)
        and module-local definitions; returns ``None`` for names the
        project cannot see (builtins, third-party modules the scan does
        not cover, dynamic attributes).
        """
        parts = dotted.split(".")
        head = parts[0]
        table = self.imports.get(module, {})
        if head in table:
            target = table[head]
            rest = parts[1:]
            return ".".join([target, *rest]) if rest else target
        candidate = f"{module}.{dotted}"
        if self.is_known(candidate):
            return candidate
        if self.is_known(f"{module}.{head}"):
            return candidate
        if self.is_known(dotted):
            return dotted
        return None

    def resolve_call(
        self,
        module: str,
        func: ast.expr,
        self_class: Optional[str] = None,
    ) -> Optional[str]:
        """Qualified name of a call target expression, where resolvable.

        ``self_class`` names the enclosing class so ``self.method(...)``
        resolves to that class's method.
        """
        if isinstance(func, ast.Name):
            return self.resolve(module, func.id)
        if isinstance(func, ast.Attribute):
            parts: List[str] = []
            current: ast.expr = func
            while isinstance(current, ast.Attribute):
                parts.append(current.attr)
                current = current.value
            if not isinstance(current, ast.Name):
                return None
            parts.reverse()
            if current.id == "self" and self_class is not None:
                if len(parts) == 1:
                    candidate = f"{module}.{self_class}.{parts[0]}"
                    if self.is_known(candidate):
                        return candidate
                return None
            return self.resolve(module, ".".join([current.id, *parts]))
        return None


def iter_scopes(
    module_name: str, tree: ast.Module
) -> Iterator[Tuple[ast.AST, str, Optional[str]]]:
    """Yield every function/method def as ``(node, qname, class_name)``.

    ``qname`` is fully qualified (module included); nested defs carry
    their enclosing function names (``mod.outer.inner``).
    """

    def visit(
        node: ast.AST, scope: Tuple[str, ...], in_class: Optional[str]
    ) -> Iterator[Tuple[ast.AST, str, Optional[str]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = ".".join((module_name, *scope, child.name))
                yield child, qname, in_class
                yield from visit(child, (*scope, child.name), None)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, (*scope, child.name), child.name)
            else:
                yield from visit(child, scope, in_class)

    yield from visit(tree, (), None)


# ------------------------------------------------------------ construction


def _module_files(
    paths: Sequence[Path],
) -> List[Tuple[Path, str, bool]]:
    """Expand scan paths to ``(file, dotted module name, is_package)``.

    Module names are relative to the scanned directory (``src/repro/util/
    rng.py`` scanned at ``src`` becomes ``repro.util.rng``), mirroring how
    the code imports itself.
    """
    out: List[Tuple[Path, str, bool]] = []
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                parts = list(file.relative_to(path).with_suffix("").parts)
                is_package = parts[-1] == "__init__"
                if is_package:
                    parts = parts[:-1]
                name = ".".join(parts) if parts else path.name
                out.append((file, name, is_package))
        elif path.suffix == ".py":
            out.append((path, path.stem, False))
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return out


def _display_path(file_path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return file_path.as_posix()


def _collect_imports(
    module_name: str, is_package: bool, tree: ast.Module
) -> Dict[str, str]:
    """Local name -> qualified target for every import in the module."""
    table: Dict[str, str] = {}
    pkg_parts = module_name.split(".")
    if not is_package:
        pkg_parts = pkg_parts[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    table[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds ``a``; dotted uses resolve later.
                    head = alias.name.split(".")[0]
                    table.setdefault(head, head)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                kept = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                base = ".".join(
                    [*kept, node.module] if node.module else kept
                )
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


def _collect_definitions(project: Project, name: str, tree: ast.Module) -> None:
    """Record functions, classes, and module-level constants of one module."""
    for node, qname, in_class in iter_scopes(name, tree):
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        params = [
            a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]
        if in_class is not None and params and params[0] in ("self", "cls"):
            params = params[1:]
        project.functions[qname] = FunctionInfo(
            qname=qname,
            module=name,
            node=node,
            class_name=in_class,
            params=tuple(params),
        )

    def visit_classes(node: ast.AST, scope: Tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                project.classes[".".join((name, *scope, child.name))] = child
                visit_classes(child, (*scope, child.name))
            elif not isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                visit_classes(child, scope)

    visit_classes(tree, ())

    def visit_constants(node: ast.AST) -> None:
        # Module level only (including inside ``if``/``try`` blocks);
        # function and class bodies are scoped separately.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        project.constants[f"{name}.{target.id}"] = child.value
            elif isinstance(child, ast.AnnAssign):
                if isinstance(child.target, ast.Name) and child.value is not None:
                    project.constants[f"{name}.{child.target.id}"] = child.value
            elif isinstance(child, (ast.If, ast.Try, ast.With)):
                visit_constants(child)

    visit_constants(tree)


def _parse_worker(path_str: str, display: str) -> ParsedModule:
    """Parse one file for the symbol table (runs in a pool worker).

    Pure: reads exactly the named file, touches no environment and no
    module state — R12's own requirement, dogfooded on the analyzer.
    """
    return parse_module(Path(path_str), display)


def _build(
    files: Sequence[Tuple[Path, str, bool]],
    root: Optional[Path],
    jobs: int = 1,
) -> Project:
    project = Project()
    parsed: Dict[str, ParsedModule]
    if jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                name: pool.submit(
                    _parse_worker,
                    str(file_path),
                    _display_path(file_path, root),
                )
                for file_path, name, _ in files
            }
            parsed = {name: f.result() for name, f in futures.items()}
    else:
        parsed = {
            name: parse_module(file_path, _display_path(file_path, root))
            for file_path, name, _ in files
        }
    for file_path, name, is_package in files:
        module = parsed[name]
        project.modules[name] = module
        if is_package:
            project.packages.add(name)
        project.path_index[module.path] = name
        project.imports[name] = _collect_imports(name, is_package, module.tree)
        _collect_definitions(project, name, module.tree)
    # Project-internal import graph (targets restricted to scanned modules).
    for name, table in project.imports.items():
        edges: Set[str] = set()
        for target in table.values():
            if target in project.modules:
                edges.add(target)
            else:
                parent = target.rsplit(".", 1)[0]
                if parent in project.modules:
                    edges.add(parent)
        edges.discard(name)
        project.import_graph[name] = edges
    return project


# ----------------------------------------------------------------- caching


@lru_cache(maxsize=1)
def _engine_digest() -> str:
    """Content hash of the analyzer package itself.

    Folded into the cache key so upgrading the engine (new rules, symbol
    table schema changes, bug fixes in resolution) invalidates cached
    symbol tables instead of silently reusing ones built by older code.
    """
    digest = hashlib.sha256()
    for source in sorted(Path(__file__).parent.glob("*.py")):
        digest.update(source.name.encode())
        digest.update(hashlib.sha256(source.read_bytes()).digest())
    return digest.hexdigest()


def _cache_digest(files: Sequence[Tuple[Path, str, bool]]) -> str:
    digest = hashlib.sha256()
    digest.update(f"symtab-v{_CACHE_VERSION}-{_engine_digest()}".encode())
    for file_path, name, is_package in files:
        digest.update(f"|{name}|{int(is_package)}|".encode())
        digest.update(hashlib.sha256(file_path.read_bytes()).digest())
    return digest.hexdigest()


def build_project(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    cache_dir: Optional[Path] = None,
    jobs: int = 1,
) -> Project:
    """Build (or load from cache) the symbol table for ``paths``.

    ``cache_dir`` defaults to ``$REPRO_ANALYSIS_CACHE_DIR`` when set; the
    cache key hashes every source file *and the analyzer's own sources*,
    so it can never serve symbols that are stale — whether the project or
    the engine changed. ``jobs > 1`` parses files in a process pool.
    """
    files = _module_files(paths)
    if cache_dir is None:
        env = os.environ.get(CACHE_ENV)
        cache_dir = Path(env) if env else None
    cache_path: Optional[Path] = None
    if cache_dir is not None:
        cache_path = Path(cache_dir) / f"symtab-{_cache_digest(files)}.pkl"
        if cache_path.is_file():
            try:
                with cache_path.open("rb") as handle:
                    cached = pickle.load(handle)
                if isinstance(cached, Project):
                    return cached
            except Exception:
                pass  # corrupt/incompatible entry: rebuild below
    project = _build(files, root, jobs=jobs)
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = cache_path.with_suffix(".tmp")
        with tmp.open("wb") as handle:
            pickle.dump(project, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, cache_path)
    return project
