"""Seed-provenance dataflow over the call graph (R8's engine).

:func:`classify_seed_expr` answers one question about an expression that
feeds an RNG: *where does this value originate?* It walks assignments
inside the enclosing function, follows parameters backwards through every
recorded call site (depth-limited, cycle-guarded), chases module constants
across imports, and looks through thin wrapper functions via their
``return`` expressions. The result is a set of :data:`Origin` labels:

- ``derived`` — a ``derive_seed``/``make_rng`` call (the approved root),
- ``literal`` — an explicit numeric literal,
- ``config`` — a seed-named parameter/attribute with no visible caller
  (an explicit configuration seed, per the paper's determinism contract),
- ``bad:<source>`` — a forbidden entropy source (``hash()``, wall clock,
  OS entropy, ``id()``, uuid/secrets) anywhere in the flow,
- ``unknown`` — the analysis cannot see further.

The rule layer flags any ``bad:*`` origin, and flags flows whose origin
set contains *no* approved label at all.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, argument_for_param
from repro.analysis.symbols import FunctionInfo, Project

Origin = str

#: Functions whose result is an approved seed/RNG root, matched on the
#: final path component so the rule works on any package layout.
APPROVED_TERMINALS = frozenset({"derive_seed", "make_rng"})

#: Qualified names that must never feed a seed (label shown in findings).
FORBIDDEN_SOURCES = {
    "time.time": "wall clock (time.time)",
    "time.time_ns": "wall clock (time.time_ns)",
    "time.monotonic": "wall clock (time.monotonic)",
    "time.monotonic_ns": "wall clock (time.monotonic_ns)",
    "time.perf_counter": "wall clock (time.perf_counter)",
    "os.urandom": "OS entropy (os.urandom)",
    "os.getrandom": "OS entropy (os.getrandom)",
    "os.getpid": "process id (os.getpid)",
    "uuid.uuid1": "uuid.uuid1 (host/time entropy)",
    "uuid.uuid4": "uuid.uuid4 (OS entropy)",
    "secrets.token_bytes": "secrets (OS entropy)",
    "secrets.token_hex": "secrets (OS entropy)",
    "secrets.randbits": "secrets (OS entropy)",
    "random.SystemRandom": "os-entropy RNG (random.SystemRandom)",
}

#: Unresolvable bare names that are forbidden builtins.
_FORBIDDEN_BUILTINS = {
    "hash": "builtin hash() (salted per process by PYTHONHASHSEED)",
    "id": "builtin id() (address-dependent)",
}

_MAX_DEPTH = 6


def is_seed_name(name: str) -> bool:
    """Does ``name`` declare itself a seed (``seed``, ``base_seed``, ...)?"""
    lowered = name.lower()
    return (
        lowered == "seed"
        or lowered.endswith("_seed")
        or lowered.startswith("seed")
    )


def classify_seed_expr(
    project: Project,
    graph: CallGraph,
    module: str,
    scope: Optional[FunctionInfo],
    expr: ast.expr,
    depth: int = _MAX_DEPTH,
    stack: FrozenSet[Tuple[str, str]] = frozenset(),
) -> Set[Origin]:
    """Origin labels for ``expr`` evaluated in ``scope`` of ``module``."""
    if depth <= 0:
        return {"unknown"}

    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, bool):
            return {"unknown"}
        if isinstance(expr.value, (int, float, str, bytes)):
            return {"literal"}
        return {"unknown"}

    if isinstance(expr, ast.Name):
        return _classify_name(
            project, graph, module, scope, expr.id, depth, stack
        )

    if isinstance(expr, ast.Attribute):
        if is_seed_name(expr.attr):
            return {"config"}
        dotted = _dotted(expr)
        if dotted is not None:
            resolved = project.resolve(module, dotted)
            if resolved is not None and resolved in project.constants:
                return classify_seed_expr(
                    project, graph, _module_of(project, resolved), None,
                    project.constants[resolved], depth - 1, stack,
                )
        return {"unknown"}

    if isinstance(expr, ast.Call):
        return _classify_call(project, graph, module, scope, expr, depth, stack)

    if isinstance(expr, ast.BinOp):
        return classify_seed_expr(
            project, graph, module, scope, expr.left, depth - 1, stack
        ) | classify_seed_expr(
            project, graph, module, scope, expr.right, depth - 1, stack
        )
    if isinstance(expr, ast.UnaryOp):
        return classify_seed_expr(
            project, graph, module, scope, expr.operand, depth - 1, stack
        )
    if isinstance(expr, ast.IfExp):
        return classify_seed_expr(
            project, graph, module, scope, expr.body, depth - 1, stack
        ) | classify_seed_expr(
            project, graph, module, scope, expr.orelse, depth - 1, stack
        )
    if isinstance(expr, (ast.BoolOp, ast.JoinedStr)):
        out: Set[Origin] = set()
        values = expr.values
        for value in values:
            out |= classify_seed_expr(
                project, graph, module, scope, value, depth - 1, stack
            )
        return out or {"unknown"}

    return {"unknown"}


# ------------------------------------------------------------------ helpers


def _dotted(expr: ast.expr) -> Optional[str]:
    parts: List[str] = []
    current = expr
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _module_of(project: Project, qname: str) -> str:
    """Module a qualified constant/function name belongs to."""
    candidate = qname
    while candidate and candidate not in project.modules:
        if "." not in candidate:
            return qname.rsplit(".", 1)[0]
        candidate = candidate.rsplit(".", 1)[0]
    return candidate or qname


def _assignments_to(
    scope: FunctionInfo, name: str
) -> Tuple[ast.expr, ...]:
    """Value expressions assigned to ``name`` inside ``scope`` itself.

    Nested function bodies are excluded — they are separate scopes.
    """
    values: List[ast.expr] = []
    root = scope.node

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        values.append(child.value)
            elif isinstance(child, ast.AnnAssign):
                if (
                    isinstance(child.target, ast.Name)
                    and child.target.id == name
                    and child.value is not None
                ):
                    values.append(child.value)
            visit(child)

    visit(root)
    return tuple(values)


def _classify_name(
    project: Project,
    graph: CallGraph,
    module: str,
    scope: Optional[FunctionInfo],
    name: str,
    depth: int,
    stack: FrozenSet[Tuple[str, str]],
) -> Set[Origin]:
    if scope is not None:
        values = _assignments_to(scope, name)
        if values:
            out: Set[Origin] = set()
            for value in values:
                out |= classify_seed_expr(
                    project, graph, module, scope, value, depth - 1, stack
                )
            return out
        if name in scope.params:
            key = (scope.qname, name)
            if key in stack:
                return {"unknown"}
            sites = graph.callers_of.get(scope.qname, [])
            if not sites:
                return {"config"} if is_seed_name(name) else {"unknown"}
            from_callers: Set[Origin] = set()
            for site in sites:
                argument = argument_for_param(site, scope, name)
                if argument is None:
                    # Default value / forwarded binding: approve seed-named
                    # defaults, otherwise opaque.
                    from_callers |= (
                        {"config"} if is_seed_name(name) else {"unknown"}
                    )
                    continue
                caller_scope = project.functions.get(site.caller)
                from_callers |= classify_seed_expr(
                    project, graph, site.module, caller_scope, argument,
                    depth - 1, stack | {key},
                )
            return from_callers
    resolved = project.resolve(module, name)
    if resolved is not None and resolved in project.constants:
        return classify_seed_expr(
            project, graph, _module_of(project, resolved), None,
            project.constants[resolved], depth - 1, stack,
        )
    return {"config"} if is_seed_name(name) else {"unknown"}


def _classify_call(
    project: Project,
    graph: CallGraph,
    module: str,
    scope: Optional[FunctionInfo],
    call: ast.Call,
    depth: int,
    stack: FrozenSet[Tuple[str, str]],
) -> Set[Origin]:
    info = scope
    self_class = info.class_name if info is not None else None
    callee = project.resolve_call(module, call.func, self_class)
    if callee is None:
        if isinstance(call.func, ast.Name):
            label = _FORBIDDEN_BUILTINS.get(call.func.id)
            if label is not None:
                return {f"bad:{label}"}
        # Opaque target (builtin like int(), or unscanned library): the
        # value is unknown, but entropy fed *into* it still taints it.
        return {"unknown"} | _bad_in_args(
            project, graph, module, scope, call, depth, stack
        )
    if callee in FORBIDDEN_SOURCES:
        return {f"bad:{FORBIDDEN_SOURCES[callee]}"}
    if callee.rsplit(".", 1)[-1] in APPROVED_TERMINALS:
        # Approved root — but entropy laundered *into* it still taints.
        derived: Set[Origin] = {"derived"}
        for argument in (*call.args, *[k.value for k in call.keywords]):
            origins = classify_seed_expr(
                project, graph, module, scope, argument, depth - 1, stack
            )
            derived |= {o for o in origins if o.startswith("bad:")}
        return derived
    if callee in project.classes:
        return {"unknown"}  # constructing a project class: opaque value
    target = project.functions.get(callee)
    if target is not None:
        returns = [
            node.value
            for node in ast.walk(target.node)
            if isinstance(node, ast.Return) and node.value is not None
        ]
        if not returns:
            return {"unknown"}
        out: Set[Origin] = set()
        for value in returns:
            out |= classify_seed_expr(
                project, graph, target.module, target, value, depth - 1, stack
            )
        return out
    return {"unknown"} | _bad_in_args(
        project, graph, module, scope, call, depth, stack
    )


def _bad_in_args(
    project: Project,
    graph: CallGraph,
    module: str,
    scope: Optional[FunctionInfo],
    call: ast.Call,
    depth: int,
    stack: FrozenSet[Tuple[str, str]],
) -> Set[Origin]:
    """``bad:*`` labels among a call's argument expressions."""
    tainted: Set[Origin] = set()
    for argument in (*call.args, *[k.value for k in call.keywords]):
        origins = classify_seed_expr(
            project, graph, module, scope, argument, depth - 1, stack
        )
        tainted |= {o for o in origins if o.startswith("bad:")}
    return tainted
