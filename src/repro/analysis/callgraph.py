"""Pass 2 of the inter-procedural engine: the project call graph.

Built on top of the symbol table (:mod:`repro.analysis.symbols`), the call
graph records every call site whose target resolves to a project (or
recognizably external) qualified name, indexed both ways: by caller (what
does this function invoke?) and by callee (who invokes this function, and
with which argument expressions?). The latter is what drives R8's
seed-provenance dataflow: a seed received as a parameter is classified by
classifying the matching argument at every recorded call site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.symbols import FunctionInfo, Project, iter_scopes

#: Scope pseudo-name for calls made at module level.
MODULE_SCOPE = "<module>"

#: (first line, last line, scope qname, enclosing class name).
_Span = Tuple[int, int, str, Optional[str]]


@dataclass(frozen=True)
class CallSite:
    """One call expression, attributed to its enclosing scope."""

    caller: str  #: qualified name of the enclosing scope (see MODULE_SCOPE)
    module: str  #: dotted module name the call appears in
    callee: Optional[str]  #: resolved qualified target, if resolvable
    node: ast.Call


@dataclass
class CallGraph:
    sites: List[CallSite] = field(default_factory=list)
    by_caller: Dict[str, List[CallSite]] = field(default_factory=dict)
    callers_of: Dict[str, List[CallSite]] = field(default_factory=dict)

    def add(self, site: CallSite) -> None:
        self.sites.append(site)
        self.by_caller.setdefault(site.caller, []).append(site)
        if site.callee is not None:
            self.callers_of.setdefault(site.callee, []).append(site)


def _scope_of(
    module: str, call: ast.Call, spans: List[_Span]
) -> Tuple[str, Optional[str]]:
    """Innermost function scope containing ``call``: (qname, class name)."""
    line = call.lineno
    best: Optional[_Span] = None
    for span in spans:
        if span[0] <= line <= span[1]:
            if best is None or span[0] >= best[0]:
                best = span
    if best is None:
        return f"{module}.{MODULE_SCOPE}", None
    return best[2], best[3]


def build_callgraph(project: Project) -> CallGraph:
    """Resolve every call site in every project module."""
    graph = CallGraph()
    for module_name, module in project.modules.items():
        spans: List[_Span] = [
            (node.lineno, node.end_lineno or node.lineno, qname, class_name)
            for node, qname, class_name in iter_scopes(module_name, module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            scope_qname, class_name = _scope_of(module_name, node, spans)
            # A method's ``self.x(...)`` resolves against the class the
            # *scope* is defined in, not where the call textually sits.
            info = project.functions.get(scope_qname)
            self_class = info.class_name if info is not None else class_name
            callee = project.resolve_call(module_name, node.func, self_class)
            graph.add(CallSite(scope_qname, module_name, callee, node))
    return graph


def argument_for_param(
    site: CallSite, info: FunctionInfo, param: str
) -> Optional[ast.expr]:
    """The argument expression bound to ``param`` at ``site``, if static.

    Returns ``None`` when the binding cannot be determined (``*args`` /
    ``**kwargs`` forwarding, or the parameter takes its default).
    """
    try:
        index = info.params.index(param)
    except ValueError:
        return None
    call = site.node
    for keyword in call.keywords:
        if keyword.arg is None:
            return None  # **kwargs forwarding hides the binding
        if keyword.arg == param:
            return keyword.value
    if any(isinstance(arg, ast.Starred) for arg in call.args):
        return None
    if index < len(call.args):
        return call.args[index]
    return None
