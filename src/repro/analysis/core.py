"""Engine of the fidelity linter: findings, module parsing, rule driving.

The engine is deliberately dependency-free (stdlib ``ast`` only) so that
``python -m repro.analysis`` works in any environment that can import the
package — CI, pre-commit, or a bare container.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.rules import Rule

#: Trailing-comment suppression marker: ``# repro: ignore`` silences every
#: rule on that line, ``# repro: ignore[R1,R4]`` only the listed rules.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    source_line: str

    def key(self) -> str:
        """Stable identity for baseline matching.

        Keyed on the rule, the file, and the *text* of the offending line
        (not its number), so unrelated edits above a baselined finding do
        not resurrect it.
        """
        return f"{self.rule}|{self.path}|{self.source_line}"

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class ParsedModule:
    """One parsed source file, as handed to every rule."""

    path: str
    source: str
    lines: Sequence[str]
    tree: ast.Module

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        text = self.lines[line - 1].strip() if line <= len(self.lines) else ""
        return Finding(rule, self.path, line, col, message, text)

    def is_suppressed(self, finding: Finding) -> bool:
        if finding.line > len(self.lines):
            return False
        match = _SUPPRESS_RE.search(self.lines[finding.line - 1])
        if match is None:
            return False
        listed = match.group(1)
        if listed is None:
            return True
        codes = {code.strip() for code in listed.split(",")}
        return finding.rule in codes


def parse_module(path: Path, display_path: Optional[str] = None) -> ParsedModule:
    """Parse one file into the form the rules consume."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return ParsedModule(
        path=display_path if display_path is not None else path.as_posix(),
        source=source,
        lines=source.splitlines(),
        tree=tree,
    )


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for path in paths:
        if path.is_dir():
            found.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            found.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return found


def check_module(module: ParsedModule, rules: Iterable["Rule"]) -> List[Finding]:
    """Run ``rules`` over one parsed module, honouring suppressions."""
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(module):
            if not module.is_suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def default_rules() -> tuple["Rule", ...]:
    """Fresh instances of the full default rule set, R1–R17 in order."""
    from repro.analysis.array_rules import ARRAY_RULES
    from repro.analysis.dtype_rules import DtypeContractRule
    from repro.analysis.project_rules import PROJECT_RULES
    from repro.analysis.rules import ALL_RULES

    return (*ALL_RULES, DtypeContractRule(), *PROJECT_RULES, *ARRAY_RULES)


def _module_pass_worker(
    path_str: str, display: str, codes: tuple[str, ...]
) -> List[Finding]:
    """Parse one file and run the named per-module rules over it.

    Runs in a pool worker, so it takes only picklable inputs: rule
    instances are reconstructed from their codes via
    :func:`default_rules`. Pure by construction — no environment reads,
    no module state — which is exactly what R12 demands of it.
    """
    from repro.analysis.project_rules import ProjectRule

    rules = [
        rule for rule in default_rules()
        if rule.code in codes and not isinstance(rule, ProjectRule)
    ]
    module = parse_module(Path(path_str), display)
    return check_module(module, rules)


def run_analysis(
    paths: Sequence[Path],
    rules: Optional[Sequence["Rule"]] = None,
    root: Optional[Path] = None,
    mirrors: Optional[Path] = None,
    cache_dir: Optional[Path] = None,
    jobs: int = 1,
) -> List[Finding]:
    """Lint every Python file under ``paths``; returns all findings.

    Runs in two passes: the per-module rules (R1–R7, R13) file by file,
    then — if any project rule is selected — the inter-procedural pass
    (R8–R12) over the whole file set at once, via the project symbol
    table.

    ``root`` controls how paths are displayed/keyed (relative to it when
    given), which keeps baseline keys machine-independent. ``mirrors`` is
    the R10 manifest; it defaults to ``root/mirror-manifest.json`` when
    that file exists. ``cache_dir`` enables the on-disk symbol-table cache
    (see :func:`repro.analysis.symbols.build_project`). ``jobs > 1``
    fans the parse/lint of the per-module pass (and the symbol-table
    parse) out over a process pool; results are order-stable either way.
    """
    from repro.analysis.project_rules import ProjectRule

    if rules is None:
        rules = default_rules()
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    displays: List[tuple[Path, str]] = []
    for file_path in iter_python_files(paths):
        display = file_path
        if root is not None:
            try:
                display = file_path.resolve().relative_to(root.resolve())
            except ValueError:
                display = file_path
        displays.append((file_path, display.as_posix()))

    findings: List[Finding] = []
    registry = {rule.code for rule in default_rules()}
    codes = tuple(rule.code for rule in module_rules)
    if jobs > 1 and all(code in registry for code in codes):
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_module_pass_worker, str(file_path), display, codes)
                for file_path, display in displays
            ]
            for future in futures:
                findings.extend(future.result())
    else:
        for file_path, display in displays:
            module = parse_module(file_path, display)
            findings.extend(check_module(module, module_rules))

    if project_rules:
        from repro.analysis.symbols import build_project

        project = build_project(
            paths, root=root, cache_dir=cache_dir, jobs=jobs
        )
        if mirrors is None and root is not None:
            default_manifest = root / "mirror-manifest.json"
            if default_manifest.is_file():
                mirrors = default_manifest
        project.mirror_manifest_path = mirrors
        for rule in project_rules:
            for finding in rule.check_project(project):
                owner = project.module_for_path(finding.path)
                if owner is not None and owner.is_suppressed(finding):
                    continue
                findings.append(finding)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
