"""The per-module rule set R1–R7 of the fidelity linter.

Each rule is a small AST pass over one :class:`~repro.analysis.core.ParsedModule`.
Rules never execute the code under analysis; everything here is derived
from the syntax tree plus the import table of the module.

The project-wide rules R8–R10 (seed provenance, constant provenance,
mirror drift) live in :mod:`repro.analysis.project_rules`; they subclass
:class:`Rule` but run over the whole project symbol table at once.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ParsedModule
from repro.constants import PAPER_CONSTANTS


class Rule:
    """One static check. Subclasses set the metadata and implement check()."""

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        raise NotImplementedError


# ---------------------------------------------------------- import tracking


class ImportTable:
    """Which local names refer to the modules/objects the rules care about."""

    def __init__(self, tree: ast.Module) -> None:
        self.module_aliases: Dict[str, str] = {}  # local name -> module path
        self.object_aliases: Dict[str, str] = {}  # local name -> "module.attr"
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.object_aliases[local] = f"{node.module}.{alias.name}"

    def resolves_to_module(self, name: str, module: str) -> bool:
        return self.module_aliases.get(name) == module

    def object_target(self, name: str) -> Optional[str]:
        return self.object_aliases.get(name)


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


# ------------------------------------------------------------------ R1


#: ``random`` module functions that draw from (or reseed) the *ambient*
#: module-level generator. ``random.Random`` is excluded: constructing an
#: explicitly seeded instance is exactly what this rule steers code toward.
_AMBIENT_RANDOM_FNS = {
    "random", "randrange", "randint", "randbytes", "uniform", "choice",
    "choices", "shuffle", "sample", "seed", "getrandbits", "expovariate",
    "gauss", "normalvariate", "betavariate", "triangular", "vonmisesvariate",
    "paretovariate", "weibullvariate", "lognormvariate", "gammavariate",
    "binomialvariate",
}

_WALL_CLOCK_TIME_FNS = {"time", "time_ns"}
_WALL_CLOCK_DT_FNS = {"now", "utcnow", "today"}


class DeterminismRule(Rule):
    """R1: simulation code must be a pure function of its seeds.

    Flags ambient ``random.*`` calls, unseeded ``random.Random()``,
    ``np.random`` usage, wall-clock reads (``time.time``,
    ``datetime.now``), salted ``hash()`` seeding, and iteration over set
    expressions (whose order varies with ``PYTHONHASHSEED``).
    """

    code = "R1"
    name = "determinism"
    description = "ambient RNG, wall clock, hash() seeding, set iteration"

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        imports = ImportTable(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, imports, node)
            elif isinstance(node, ast.Attribute):
                yield from self._check_np_random(module, imports, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_set_iteration(module, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_set_iteration(module, generator.iter)

    def _check_call(
        self, module: ParsedModule, imports: ImportTable, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        # random.<fn>(...) on the random module itself.
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if imports.resolves_to_module(base, "random"):
                if attr in _AMBIENT_RANDOM_FNS:
                    yield module.finding(
                        self.code, node,
                        f"call to ambient `random.{attr}()`; draw from an "
                        "explicitly seeded stream (repro.util.rng.make_rng)",
                    )
                elif attr in ("Random", "SystemRandom") and not node.args:
                    yield module.finding(
                        self.code, node,
                        f"`random.{attr}()` without a seed is "
                        "nondeterministic; seed it from config",
                    )
            if imports.resolves_to_module(base, "time") and (
                attr in _WALL_CLOCK_TIME_FNS
            ):
                yield module.finding(
                    self.code, node,
                    f"wall-clock `time.{attr}()` in simulation code; "
                    "simulated time must come from the simulator clock",
                )
            if attr in _WALL_CLOCK_DT_FNS:
                # datetime.now(...) via `from datetime import datetime`.
                if (
                    isinstance(func.value, ast.Name)
                    and imports.object_target(func.value.id)
                    in ("datetime.datetime", "datetime.date")
                ):
                    yield module.finding(
                        self.code, node,
                        f"wall-clock `{func.value.id}.{attr}()` in "
                        "simulation code",
                    )
        # datetime.datetime.now(...) via `import datetime`.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _WALL_CLOCK_DT_FNS
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and imports.resolves_to_module(func.value.value.id, "datetime")
            and func.value.attr in ("datetime", "date")
        ):
            yield module.finding(
                self.code, node,
                f"wall-clock `datetime.{func.value.attr}.{func.attr}()` "
                "in simulation code",
            )
        if isinstance(func, ast.Name):
            target = imports.object_target(func.id)
            # `from random import random/randrange/...` then bare call.
            if target is not None and target.startswith("random."):
                fn = target.split(".", 1)[1]
                if fn in _AMBIENT_RANDOM_FNS:
                    yield module.finding(
                        self.code, node,
                        f"call to ambient `random.{fn}()` (imported as "
                        f"`{func.id}`); use a seeded stream",
                    )
                elif fn in ("Random", "SystemRandom") and not node.args:
                    yield module.finding(
                        self.code, node,
                        f"`{func.id}()` (random.{fn}) without a seed is "
                        "nondeterministic; seed it from config",
                    )
            if target == "time.time" or target == "time.time_ns":
                yield module.finding(
                    self.code, node,
                    f"wall-clock `{target}()` in simulation code",
                )
            if func.id == "hash" and target is None:
                yield module.finding(
                    self.code, node,
                    "builtin hash() is salted per process "
                    "(PYTHONHASHSEED); derive seeds via "
                    "repro.util.rng.derive_seed instead",
                )

    def _check_np_random(
        self, module: ParsedModule, imports: ImportTable, node: ast.Attribute
    ) -> Iterator[Finding]:
        # np.random / numpy.random attribute chains.
        if (
            node.attr == "random"
            and isinstance(node.value, ast.Name)
            and imports.resolves_to_module(node.value.id, "numpy")
        ):
            yield module.finding(
                self.code, node,
                "`numpy.random` uses global state; use a seeded "
                "`numpy.random.Generator` created once from config",
            )

    def _check_set_iteration(
        self, module: ParsedModule, iterable: ast.expr
    ) -> Iterator[Finding]:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            yield module.finding(
                self.code, iterable,
                "iteration over a set expression: order varies with "
                "PYTHONHASHSEED; sort it or use a sequence",
            )
        elif (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("set", "frozenset")
        ):
            yield module.finding(
                self.code, iterable,
                f"iteration over `{iterable.func.id}(...)`: order varies "
                "with PYTHONHASHSEED; use sorted(...) instead",
            )


# ------------------------------------------------------------------ R2


#: Path fragments that scope R2: the modules that realize Tables 6/7.
_R2_SCOPE = ("bandit/", "smt/", "experiments/")


class PaperConstantRule(Rule):
    """R2: Table 6/7 values must be imported from :mod:`repro.constants`.

    Flags ``name=<literal>`` bindings (call keywords, annotated dataclass
    field defaults, plain assignments) where ``name`` is a registered
    parameter and the literal equals a registered paper value.
    """

    code = "R2"
    name = "paper-constants"
    description = "Table 6/7 literals re-typed instead of repro.constants"

    def __init__(
        self, registry: Optional[Dict[str, FrozenSet[float]]] = None
    ) -> None:
        self.registry = PAPER_CONSTANTS if registry is None else registry

    def _in_scope(self, path: str) -> bool:
        if path.endswith("constants.py"):
            return False
        return any(fragment in path for fragment in _R2_SCOPE)

    def _is_paper_literal(self, name: str, node: ast.expr) -> bool:
        if not isinstance(node, ast.Constant):
            return False
        value = node.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return False
        allowed = self.registry.get(name)
        return allowed is not None and value in allowed

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if not self._in_scope(module.path):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg and self._is_paper_literal(
                        keyword.arg, keyword.value
                    ):
                        yield self._finding(module, keyword.value, keyword.arg)
            elif isinstance(node, ast.AnnAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and node.value is not None
                    and self._is_paper_literal(node.target.id, node.value)
                ):
                    yield self._finding(module, node.value, node.target.id)
            elif isinstance(node, ast.Assign):
                if (
                    len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and self._is_paper_literal(node.targets[0].id, node.value)
                ):
                    yield self._finding(module, node.value, node.targets[0].id)
            elif isinstance(node, ast.arg):
                continue
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(module, node)

    def _check_defaults(
        self, module: ParsedModule, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        positional = node.args.posonlyargs + node.args.args
        for arg, default in zip(positional[::-1], node.args.defaults[::-1]):
            if default is not None and self._is_paper_literal(arg.arg, default):
                yield self._finding(module, default, arg.arg)
        for arg, kw_default in zip(node.args.kwonlyargs, node.args.kw_defaults):
            if kw_default is not None and self._is_paper_literal(
                arg.arg, kw_default
            ):
                yield self._finding(module, kw_default, arg.arg)

    def _finding(
        self, module: ParsedModule, node: ast.expr, name: str
    ) -> Finding:
        return module.finding(
            self.code, node,
            f"paper constant `{name}` re-typed inline; import the value "
            "from repro.constants (single source for Table 6/7)",
        )


# ------------------------------------------------------------------ R3


class PickleSafetyRule(Rule):
    """R3: parallel task functions must be module-level (picklable by ref).

    Flags lambdas, locally defined functions, and bound methods passed as
    the ``fn`` of ``Task(...)`` or inside ``run_parallel(...)`` calls.
    """

    code = "R3"
    name = "pickle-safety"
    description = "non-picklable task fns handed to the parallel runner"

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        local_defs = self._local_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _call_name(node)
            if callee == "Task":
                fn_arg = self._task_fn_argument(node)
                if fn_arg is not None:
                    yield from self._check_fn(module, fn_arg, local_defs)
            elif callee == "run_parallel":
                for arg in node.args:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Lambda):
                            yield module.finding(
                                self.code, sub,
                                "lambda inside a run_parallel task list "
                                "cannot be pickled into a worker",
                            )

    @staticmethod
    def _task_fn_argument(node: ast.Call) -> Optional[ast.expr]:
        if node.args:
            return node.args[0]
        for keyword in node.keywords:
            if keyword.arg == "fn":
                return keyword.value
        return None

    @staticmethod
    def _local_function_names(tree: ast.Module) -> Set[str]:
        """Names of defs/lambda-assignments nested inside another function."""
        local: Set[str] = set()

        def visit(node: ast.AST, inside_function: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if inside_function:
                        local.add(child.name)
                    visit(child, True)
                elif isinstance(child, ast.Assign) and isinstance(
                    child.value, ast.Lambda
                ):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            local.add(target.id)
                    visit(child, inside_function)
                else:
                    visit(child, inside_function)

        visit(tree, False)
        return local

    def _check_fn(
        self, module: ParsedModule, fn_arg: ast.expr, local_defs: Set[str]
    ) -> Iterator[Finding]:
        if isinstance(fn_arg, ast.Lambda):
            yield module.finding(
                self.code, fn_arg,
                "lambda task fn cannot be pickled into a worker; define a "
                "module-level function",
            )
        elif isinstance(fn_arg, ast.Name) and fn_arg.id in local_defs:
            yield module.finding(
                self.code, fn_arg,
                f"task fn `{fn_arg.id}` is defined inside a function; "
                "workers pickle task fns by reference, so it must be "
                "module-level",
            )
        elif isinstance(fn_arg, ast.Attribute):
            yield module.finding(
                self.code, fn_arg,
                "bound-method task fn; pass a module-level function and "
                "its inputs as picklable kwargs instead",
            )
        elif isinstance(fn_arg, ast.Call):
            yield module.finding(
                self.code, fn_arg,
                "task fn built by a call (closure/partial) is not "
                "picklable by reference; use a module-level function",
            )


# ------------------------------------------------------------------ R4


class StepHygieneRule(Rule):
    """R4: replay loops that train a bandit must flush the trailing step.

    A loop body that calls ``<agent>.observe(reward)`` (single-argument
    form) or ``<bandit>.end_step(...)`` leaves a selection awaiting its
    reward when the loop exits early or the trace runs out; the enclosing
    function must therefore also reach ``flush_step()`` or
    ``cancel_selection()`` on some path.
    """

    code = "R4"
    name = "step-hygiene"
    description = "replay loops with observe()/end_step() but no flush"

    _TRIGGERS = ("observe", "end_step")
    _RESOLUTIONS = ("flush_step", "cancel_selection")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _method_calls(self, node: ast.AST) -> Set[str]:
        calls: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                calls.add(sub.func.attr)
        return calls

    def _trigger_in_loop(self, loop: ast.AST) -> Optional[ast.Call]:
        for sub in ast.walk(loop):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                name = sub.func.attr
                if name == "end_step":
                    return sub
                if (
                    name == "observe"
                    and len(sub.args) == 1
                    and not sub.keywords
                ):
                    return sub
        return None

    def _check_function(
        self,
        module: ParsedModule,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        resolutions = self._method_calls(function)
        if any(name in resolutions for name in self._RESOLUTIONS):
            return
        for node in ast.walk(function):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                trigger = self._trigger_in_loop(node)
                if trigger is not None:
                    yield module.finding(
                        self.code, trigger,
                        f"replay loop in `{function.name}` trains the "
                        "bandit but the function never reaches "
                        "flush_step()/cancel_selection(); the trailing "
                        "partial step is dropped",
                    )
                    break


# ------------------------------------------------------------------ R5


class FloatEqualityRule(Rule):
    """R5: ``==``/``!=`` against float literals is a fidelity hazard."""

    code = "R5"
    name = "float-equality"
    description = "exact comparison against float literals"

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands: List[ast.expr] = [node.left, *node.comparators]
            for op, right in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if any(
                    isinstance(operand, ast.Constant)
                    and isinstance(operand.value, float)
                    for operand in operands
                ):
                    yield module.finding(
                        self.code, node,
                        "exact ==/!= against a float literal; use "
                        "math.isclose or an integer representation",
                    )
                    break


# ------------------------------------------------------------------ R6


class MutableDefaultRule(Rule):
    """R6: mutable default arguments are shared across calls."""

    code = "R6"
    name = "mutable-defaults"
    description = "list/dict/set default arguments"

    _MUTABLE_CALLS = ("list", "dict", "set", "bytearray", "deque")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if self._is_mutable(default):
                        yield module.finding(
                            self.code, default,
                            "mutable default argument is shared across "
                            "calls; default to None and build inside",
                        )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CALLS
        )


# ------------------------------------------------------------------ R7


class HotLoopRule(Rule):
    """R7: functions marked ``# repro: hot`` must keep their loops lean.

    The replay engine's throughput rests on a handful of functions (the
    fused kernel, the prefetcher ``observe`` paths, ``Cache.lookup``). They
    carry a ``# repro: hot`` marker on (or directly above) their ``def``
    line, and this rule holds their ``for``/``while`` bodies to the two
    hygiene properties the PR 3 optimisation pass established:

    - no per-iteration record-object construction — appending a
      freshly-constructed class instance (``xs.append(Record(...))``) inside
      a hot loop is the allocation pattern the compiled-trace path removed;
    - no repeated dotted attribute chains — the same ``a.b``/``a.b.c`` path
      occurring :data:`REPEAT_THRESHOLD` or more times in one loop body
      should be bound to a local before the loop.
    """

    code = "R7"
    name = "hot-loop-hygiene"
    description = "allocation / repeated attribute chains in # repro: hot loops"

    MARKER = "repro: hot"
    REPEAT_THRESHOLD = 4

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._is_hot(module, node):
                    yield from self._check_function(module, node)

    def _is_hot(
        self, module: ParsedModule, node: ast.FunctionDef
    ) -> bool:
        for line_number in (node.lineno, node.lineno - 1):
            if 1 <= line_number <= len(module.lines):
                if self.MARKER in module.lines[line_number - 1]:
                    return True
        return False

    def _check_function(
        self, module: ParsedModule, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        seen: Set[Tuple[int, str]] = set()
        for node in ast.walk(func):
            if not isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for finding in self._check_loop(module, node):
                key = (finding.line, finding.message)
                if key not in seen:
                    seen.add(key)
                    yield finding

    def _check_loop(
        self, module: ParsedModule, loop: ast.stmt
    ) -> Iterator[Finding]:
        body = list(loop.body) + list(getattr(loop, "orelse", []))  # type: ignore[attr-defined]
        paths: Dict[str, List[ast.Attribute]] = {}
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and self._is_append_of_ctor(node):
                    yield module.finding(
                        self.code, node,
                        "hot loop constructs and appends an object per "
                        "iteration; use parallel scalar lists (compiled-"
                        "trace style) or hoist the allocation",
                    )
                elif self._is_ctor_comprehension(node):
                    yield module.finding(
                        self.code, node,
                        "hot loop builds a comprehension of constructed "
                        "objects every iteration; hoist it out of the loop "
                        "or switch to parallel scalar lists",
                    )
        # A chain is only hoistable when its root name is loop-invariant:
        # names assigned inside the body (per-iteration objects like a
        # just-evicted line) are excluded.
        assigned = self._assigned_names(body)
        for path, nodes in self._attribute_paths(body).items():
            if path.split(".", 1)[0] in assigned:
                continue
            if len(nodes) >= self.REPEAT_THRESHOLD:
                yield module.finding(
                    self.code, nodes[0],
                    f"attribute chain '{path}' occurs {len(nodes)}x in a "
                    "hot loop body; bind it to a local before the loop",
                )

    @staticmethod
    def _assigned_names(body: List[ast.stmt]) -> Set[str]:
        assigned: Set[str] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    assigned.add(node.id)
        return assigned

    @staticmethod
    def _is_append_of_ctor(node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Attribute):
            is_append = func.attr == "append"
        elif isinstance(func, ast.Name):
            is_append = func.id == "append" or func.id.endswith("_append")
        else:
            return False
        if not is_append or len(node.args) != 1:
            return False
        arg = node.args[0]
        return (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Name)
            and arg.func.id[:1].isupper()
        )

    @staticmethod
    def _is_ctor_comprehension(node: ast.AST) -> bool:
        """A comprehension whose element is a class construction."""
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            element: ast.expr = node.elt
        elif isinstance(node, ast.DictComp):
            element = node.value
        else:
            return False
        return (
            isinstance(element, ast.Call)
            and isinstance(element.func, ast.Name)
            and element.func.id[:1].isupper()
        )

    def _attribute_paths(
        self, body: List[ast.stmt]
    ) -> Dict[str, List[ast.Attribute]]:
        paths: Dict[str, List[ast.Attribute]] = {}

        def visit(node: ast.AST) -> None:
            if isinstance(node, ast.Attribute):
                path = self._dotted_path(node)
                if path is not None:
                    paths.setdefault(path, []).append(node)
                    return  # maximal chain only; skip its sub-attributes
            for child in ast.iter_child_nodes(node):
                visit(child)

        for stmt in body:
            visit(stmt)
        return paths

    @staticmethod
    def _dotted_path(node: ast.Attribute) -> Optional[str]:
        parts: List[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
            return ".".join(reversed(parts))
        return None


#: The per-module rules, in code order. The engine and CLI append the
#: project-wide rules from :mod:`repro.analysis.project_rules`.
ALL_RULES: Tuple[Rule, ...] = (
    DeterminismRule(),
    PaperConstantRule(),
    PickleSafetyRule(),
    StepHygieneRule(),
    FloatEqualityRule(),
    MutableDefaultRule(),
    HotLoopRule(),
)

#: Rule metadata for `--list-rules` and the summary table.
RULES_BY_CODE: Dict[str, Rule] = {rule.code: rule for rule in ALL_RULES}
