"""Occupancy-threshold fetch gating (Choi & Yeung [17], generalized in §3.3).

A thread is fetch-gated when its occupancy of any *monitored* structure
exceeds its allowance. Allowances are expressed in IQ entries (the Hill
Climbing δ unit of [17]) and scaled proportionally to each structure's size,
so one per-thread threshold governs IQ, LSQ, ROB, and IRF alike — exactly the
"same threshold for all the structures" design of the original paper.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.smt.pg_policy import PGPolicy


# repro: mirror[smt-gating]
def gated_threads(
    policy: PGPolicy,
    allowances_iq_units: Sequence[float],
    iq_size: int,
    iq_occ: Sequence[int],
    lsq_occ: Sequence[int],
    rob_occ: Sequence[int],
    irf_occ: Sequence[int],
    lsq_size: int,
    rob_size: int,
    irf_size: int,
) -> List[bool]:
    """Per-thread gating decision under ``policy``.

    ``allowances_iq_units[t]`` is thread *t*'s allowance in IQ entries; the
    equivalent allowance for another structure scales by ``size/iq_size``.
    """
    num_threads = len(allowances_iq_units)
    gated = [False] * num_threads
    if not policy.gates_anything:
        return gated
    for thread in range(num_threads):
        fraction = allowances_iq_units[thread] / iq_size
        if policy.gate_iq and iq_occ[thread] > allowances_iq_units[thread]:
            gated[thread] = True
            continue
        if policy.gate_lsq and lsq_occ[thread] > fraction * lsq_size:
            gated[thread] = True
            continue
        if policy.gate_rob and rob_occ[thread] > fraction * rob_size:
            gated[thread] = True
            continue
        if policy.gate_irf and irf_occ[thread] > fraction * irf_size:
            gated[thread] = True
    return gated
