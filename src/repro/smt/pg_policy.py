"""Fetch Priority & Gating (PG) policies — the §3.3 design space.

A PG policy is written ``X_b3b2b1b0`` where ``X`` is the fetch priority
policy (BrC, IC, LSQC, or RR) and the bits say whether fetch gating monitors
the occupancy of the IQ, LSQ, ROB, and IRF respectively (Table 1). There are
4 × 2⁴ = 64 policies; the paper prunes the Bandit's arms to the six of
Table 1. ``IC_1011`` is the Choi policy and ``IC_0000`` plain ICount.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Fetch priority mnemonics, in the paper's order.
PRIORITY_NAMES: Tuple[str, ...] = ("BrC", "IC", "LSQC", "RR")


@dataclass(frozen=True)
class PGPolicy:
    """One fetch Priority & Gating policy."""

    priority: str
    gate_iq: bool
    gate_lsq: bool
    gate_rob: bool
    gate_irf: bool

    def __post_init__(self) -> None:
        if self.priority not in PRIORITY_NAMES:
            raise ValueError(
                f"unknown priority {self.priority!r}; known: {PRIORITY_NAMES}"
            )

    @property
    def mnemonic(self) -> str:
        bits = "".join(
            "1" if flag else "0"
            for flag in (self.gate_iq, self.gate_lsq, self.gate_rob, self.gate_irf)
        )
        return f"{self.priority}_{bits}"

    @property
    def gates_anything(self) -> bool:
        return self.gate_iq or self.gate_lsq or self.gate_rob or self.gate_irf

    @classmethod
    def from_mnemonic(cls, mnemonic: str) -> "PGPolicy":
        """Parse ``X_b3b2b1b0`` (e.g. ``IC_1011``)."""
        try:
            priority, bits = mnemonic.split("_")
        except ValueError:
            raise ValueError(f"malformed PG mnemonic {mnemonic!r}") from None
        if len(bits) != 4 or any(bit not in "01" for bit in bits):
            raise ValueError(f"malformed gating bits in {mnemonic!r}")
        return cls(
            priority=priority,
            gate_iq=bits[0] == "1",
            gate_lsq=bits[1] == "1",
            gate_rob=bits[2] == "1",
            gate_irf=bits[3] == "1",
        )

    def __str__(self) -> str:
        return self.mnemonic


def _all_policies() -> Tuple[PGPolicy, ...]:
    policies = []
    for priority in PRIORITY_NAMES:
        for mask in range(16):
            policies.append(
                PGPolicy(
                    priority=priority,
                    gate_iq=bool(mask & 0b1000),
                    gate_lsq=bool(mask & 0b0100),
                    gate_rob=bool(mask & 0b0010),
                    gate_irf=bool(mask & 0b0001),
                )
            )
    return tuple(policies)


#: All 64 PG policies of the §3.3 design space.
ALL_PG_POLICIES: Tuple[PGPolicy, ...] = _all_policies()

#: The Choi policy [17]: ICount priority, gate on IQ/ROB/IRF occupancy.
CHOI_POLICY = PGPolicy.from_mnemonic("IC_1011")

#: Plain ICount (Tullsen et al. [74]): no fetch gating at all.
ICOUNT_POLICY = PGPolicy.from_mnemonic("IC_0000")

#: The six pruned Bandit arms of Table 1 (§6.3).
BANDIT_PG_ARMS: Tuple[PGPolicy, ...] = (
    PGPolicy.from_mnemonic("IC_0000"),
    PGPolicy.from_mnemonic("BrC_1000"),
    PGPolicy.from_mnemonic("IC_1110"),
    PGPolicy.from_mnemonic("IC_1111"),
    PGPolicy.from_mnemonic("LSQC_1111"),
    PGPolicy.from_mnemonic("RR_1111"),
)
