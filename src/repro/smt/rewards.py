"""Alternative SMT reward metrics (§6.4).

The evaluation uses the *sum of per-thread IPCs* as the Bandit reward and
notes that other metrics drop in trivially "by simply changing the Bandit
reward": the average weighted IPC (weighted speedup, Snavely & Tullsen [65])
and the harmonic mean of weighted IPCs (fairness-aware, Luo et al. [44]).
This module provides all three as interchangeable callables consumed by
:class:`~repro.smt.bandit_control.BanditFetchController`.

A metric receives the per-thread committed-instruction deltas and the cycle
count of the step and returns the scalar reward.
"""

from __future__ import annotations

from typing import Callable, Sequence

#: Signature: (per_thread_committed, cycles) -> reward.
SMTRewardMetric = Callable[[Sequence[int], float], float]


def total_ipc() -> SMTRewardMetric:
    """Sum of per-thread IPCs — the paper's default metric."""

    def metric(committed: Sequence[int], cycles: float) -> float:
        if cycles <= 0:
            return 0.0
        return sum(committed) / cycles

    return metric


def weighted_ipc(single_thread_ipcs: Sequence[float]) -> SMTRewardMetric:
    """Average weighted IPC: mean of IPC_i / SingleThreadIPC_i [65]."""
    baselines = _validate_baselines(single_thread_ipcs)

    def metric(committed: Sequence[int], cycles: float) -> float:
        if cycles <= 0:
            return 0.0
        speedups = [
            (count / cycles) / baseline
            for count, baseline in zip(committed, baselines)
        ]
        return sum(speedups) / len(speedups)

    return metric


def harmonic_weighted_ipc(single_thread_ipcs: Sequence[float]) -> SMTRewardMetric:
    """Harmonic mean of weighted IPCs — balances throughput and fairness [44]."""
    baselines = _validate_baselines(single_thread_ipcs)

    def metric(committed: Sequence[int], cycles: float) -> float:
        if cycles <= 0:
            return 0.0
        inverse_sum = 0.0
        for count, baseline in zip(committed, baselines):
            if count == 0:
                return 0.0  # a starved thread zeroes the harmonic mean
            inverse_sum += baseline * cycles / count
        return len(baselines) / inverse_sum

    return metric


def _validate_baselines(single_thread_ipcs: Sequence[float]) -> Sequence[float]:
    if not single_thread_ipcs:
        raise ValueError("need at least one single-thread baseline IPC")
    for value in single_thread_ipcs:
        if value <= 0:
            raise ValueError(f"baseline IPCs must be positive, got {value}")
    return tuple(single_thread_ipcs)
