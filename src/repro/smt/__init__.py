"""SMT substrate: a cycle-level 2-thread pipeline with shared structures.

Stands in for gem5+SecSMT (§6.1): dynamically shared IQ/ROB/LQ/SQ/IRF, the
four fetch priority policies of §3.2, occupancy-threshold fetch gating, the
Choi Hill-Climbing algorithm [17], the 64-policy fetch Priority & Gating
design space of §3.3, and the Bandit controller of §5.3.
"""

from repro.smt.fetch_policy import FETCH_PRIORITIES, pick_thread
from repro.smt.gating import gated_threads
from repro.smt.hill_climbing import HillClimbing, HillClimbingConfig
from repro.smt.pg_policy import (
    ALL_PG_POLICIES,
    BANDIT_PG_ARMS,
    CHOI_POLICY,
    ICOUNT_POLICY,
    PGPolicy,
)
from repro.smt.pipeline import RenameActivity, SMTConfig, SMTPipeline
from repro.smt.bandit_control import BanditFetchController, SMTBanditConfig

__all__ = [
    "ALL_PG_POLICIES",
    "BANDIT_PG_ARMS",
    "BanditFetchController",
    "CHOI_POLICY",
    "FETCH_PRIORITIES",
    "HillClimbing",
    "HillClimbingConfig",
    "ICOUNT_POLICY",
    "PGPolicy",
    "RenameActivity",
    "SMTBanditConfig",
    "SMTConfig",
    "SMTPipeline",
    "gated_threads",
    "pick_thread",
]
