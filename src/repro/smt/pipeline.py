"""Cycle-level 2-thread SMT pipeline with dynamically shared structures.

The model follows the SecSMT-style configuration the paper uses (§6.1,
Table 5): every back-end structure — IQ, ROB, LQ, SQ, IRF — is dynamically
shared between threads, and the front end fetches from one thread per cycle,
selected by the active fetch Priority & Gating policy.

Stages modeled each cycle (in reverse pipeline order so same-cycle
structural hazards resolve naturally):

1. **Commit** — up to ``commit_width`` uops in total, in program order per
   thread, freeing ROB/IRF/LQ entries; stores free their SQ entry only after
   a post-commit drain whose latency is drawn from the thread's memory
   profile — which is how store-heavy, cache-missing threads (lbm) exhaust
   the SQ (§3.3).
2. **Issue** — up to ``issue_width`` ready uops from the shared IQ (oldest
   first); loads draw their service level (L1/L2/DRAM) from the profile.
3. **Rename/dispatch** — up to ``decode_width`` uops from the per-thread
   front-end queues into the shared structures; the stage's activity is
   classified as *running*, *idle*, or *stalled on <structure>* to reproduce
   Figure 15.
4. **Fetch** — the PG policy picks one non-gated, non-redirecting thread and
   fetches ``fetch_width`` uops into its front-end queue. A mispredicted
   branch blocks its thread's fetch until it resolves (front-end redirect).

The pipeline exposes ``set_policy`` and ``set_allowances`` so the Hill
Climbing algorithm and the Bandit controller can retune it at run time.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt.fetch_policy import pick_thread
from repro.smt.gating import gated_threads
from repro.smt.pg_policy import PGPolicy
from repro.smt.uop import (
    KIND_BRANCH,
    KIND_LOAD,
    KIND_LONG,
    KIND_STORE,
    REG_WRITING_KINDS,
    uop_stream,
)
from repro.util.rng import make_rng
from repro.workloads.smt import ThreadProfile


@dataclass(frozen=True)
class SMTConfig:
    """Pipeline parameters (defaults = Table 5, Skylake-like SMT core)."""

    fetch_width: int = 5
    decode_width: int = 5
    issue_width: int = 8
    commit_width: int = 8
    iq_size: int = 97
    rob_size: int = 224
    lq_size: int = 72
    sq_size: int = 56
    irf_size: int = 180
    fetchq_capacity: int = 16
    l1_latency: int = 4
    l2_latency: int = 14
    dram_latency: int = 220
    mispredict_penalty: int = 6
    #: Architectural registers reserved per thread out of the IRF.
    arch_regs_per_thread: int = 32

    def effective_irf(self, num_threads: int) -> int:
        return self.irf_size - self.arch_regs_per_thread * num_threads


@dataclass
class RenameActivity:
    """Figure 15 accounting: what the rename stage did each cycle."""

    cycles: int = 0
    running: int = 0
    idle: int = 0
    stalled: int = 0
    stalled_rob: int = 0
    stalled_iq: int = 0
    stalled_lq: int = 0
    stalled_sq: int = 0
    stalled_rf: int = 0

    def fractions(self) -> Dict[str, float]:
        total = self.cycles or 1
        return {
            "rob_full": self.stalled_rob / total,
            "iq_full": self.stalled_iq / total,
            "lq_full": self.stalled_lq / total,
            "sq_full": self.stalled_sq / total,
            "rf_full": self.stalled_rf / total,
            "stalled_any": self.stalled / total,
            "idle": self.idle / total,
            "running": self.running / total,
        }


class _ThreadState:
    """Per-thread pipeline state (flat attributes for speed)."""

    __slots__ = (
        "profile", "stream", "fetchq", "next_seq", "completion", "rob",
        "committed", "committed_seq", "blocked_seq", "iq_occ", "rob_occ",
        "lq_occ", "sq_occ", "irf_occ", "branches_in_rob",
    )

    def __init__(self, profile: ThreadProfile, seed: int) -> None:
        self.profile = profile
        self.stream = uop_stream(profile, seed)
        self.fetchq: deque = deque()
        self.next_seq = 1
        self.completion: Dict[int, float] = {}
        self.rob: deque = deque()  # (seq, kind)
        self.committed = 0
        self.committed_seq = 0
        self.blocked_seq: Optional[int] = None
        self.iq_occ = 0
        self.rob_occ = 0
        self.lq_occ = 0
        self.sq_occ = 0
        self.irf_occ = 0
        self.branches_in_rob = 0


class SMTPipeline:
    """The 2-thread SMT core, driven one cycle at a time."""

    def __init__(
        self,
        profiles: Sequence[ThreadProfile],
        policy: PGPolicy,
        config: SMTConfig = SMTConfig(),
        seed: int = 0,
    ) -> None:
        if len(profiles) != 2:
            raise ValueError("the SMT pipeline models exactly two threads")
        self.config = config
        self.policy = policy
        self.threads = [
            _ThreadState(profile, seed * 2 + index)
            for index, profile in enumerate(profiles)
        ]
        self._mem_rng = make_rng(seed, "smt-mem")
        self.cycle = 0
        # Shared IQ: entries [thread, seq, dep1, dep2, kind].
        self._iq: List[List[int]] = []
        # Store-drain releases: (release_cycle, thread_index).
        self._sq_releases: List[Tuple[float, int]] = []
        self._rr_counter = 0
        self.allowances: Tuple[float, float] = (
            config.iq_size / 2.0,
            config.iq_size / 2.0,
        )
        self.rename_activity = RenameActivity()
        self._effective_irf = config.effective_irf(2)

    # ------------------------------------------------------------------ API

    def set_policy(self, policy: PGPolicy) -> None:
        self.policy = policy

    def set_allowances(self, allowances: Tuple[float, float]) -> None:
        self.allowances = allowances

    @property
    def committed_total(self) -> int:
        return self.threads[0].committed + self.threads[1].committed

    def per_thread_committed(self) -> Tuple[int, int]:
        return (self.threads[0].committed, self.threads[1].committed)

    def run(self, cycles: int) -> float:
        """Run ``cycles`` cycles; returns the aggregate IPC over them."""
        start_committed = self.committed_total
        end_cycle = self.cycle + cycles
        while self.cycle < end_cycle:
            self.step()
        return (self.committed_total - start_committed) / cycles

    def step(self) -> None:
        """Advance the pipeline by one cycle."""
        cycle = self.cycle
        self._drain_stores(cycle)
        self._commit(cycle)
        self._issue(cycle)
        self._rename(cycle)
        self._fetch(cycle)
        self.cycle = cycle + 1
        self._rr_counter += 1
        if cycle % 4096 == 0:
            self._prune_completion()

    # ---------------------------------------------------------------- stages

    # repro: mirror[smt-drain-stores]
    def _drain_stores(self, cycle: int) -> None:
        releases = self._sq_releases
        while releases and releases[0][0] <= cycle:
            _, thread_index = heapq.heappop(releases)
            self.threads[thread_index].sq_occ -= 1

    # repro: mirror[smt-commit]
    def _commit(self, cycle: int) -> None:
        budget = self.config.commit_width
        for offset in range(2):
            thread_index = (self._rr_counter + offset) % 2
            thread = self.threads[thread_index]
            rob = thread.rob
            completion = thread.completion
            while budget and rob:
                seq, kind = rob[0]
                done_at = completion.get(seq)
                if done_at is None or done_at > cycle:
                    break
                rob.popleft()
                thread.rob_occ -= 1
                thread.committed += 1
                thread.committed_seq = seq
                budget -= 1
                if kind == KIND_BRANCH:
                    thread.branches_in_rob -= 1
                elif kind == KIND_LOAD:
                    thread.lq_occ -= 1
                elif kind == KIND_STORE:
                    # SQ entry is held until the store drains to memory.
                    drain = cycle + self._memory_latency(thread.profile)
                    heapq.heappush(self._sq_releases, (drain, thread_index))
                if kind in REG_WRITING_KINDS:
                    thread.irf_occ -= 1

    # repro: mirror[smt-issue]
    def _issue(self, cycle: int) -> None:
        budget = self.config.issue_width
        iq = self._iq
        if not iq:
            return
        issued_any = False
        for entry in iq:
            if budget == 0:
                break
            thread_index, seq, dep1, dep2, kind = entry
            thread = self.threads[thread_index]
            completion = thread.completion
            committed_seq = thread.committed_seq
            if dep1 > committed_seq:
                ready_at = completion.get(dep1)
                if ready_at is None or ready_at > cycle:
                    continue
            if dep2 > committed_seq:
                ready_at = completion.get(dep2)
                if ready_at is None or ready_at > cycle:
                    continue
            # Issue: draw the latency and record completion.
            if kind == KIND_LOAD:
                latency = self._memory_latency(thread.profile)
            elif kind == KIND_LONG:
                latency = thread.profile.long_op_latency
            else:
                latency = 1
            completion[seq] = cycle + latency
            thread.iq_occ -= 1
            entry[0] = -1  # mark consumed
            issued_any = True
            budget -= 1
        if issued_any:
            self._iq = [entry for entry in iq if entry[0] >= 0]

    # repro: mirror[smt-rename]
    def _rename(self, cycle: int) -> None:
        config = self.config
        budget = config.decode_width
        activity = self.rename_activity
        activity.cycles += 1
        renamed = 0
        stall_reasons = set()
        rob_total = self.threads[0].rob_occ + self.threads[1].rob_occ
        iq_total = self.threads[0].iq_occ + self.threads[1].iq_occ
        lq_total = self.threads[0].lq_occ + self.threads[1].lq_occ
        sq_total = self.threads[0].sq_occ + self.threads[1].sq_occ
        irf_total = self.threads[0].irf_occ + self.threads[1].irf_occ
        order = (self._rr_counter % 2, (self._rr_counter + 1) % 2)
        while budget:
            progressed = False
            for thread_index in order:
                if budget == 0:
                    break
                thread = self.threads[thread_index]
                if not thread.fetchq:
                    continue
                seq, kind, dep1, dep2, mispredict = thread.fetchq[0]
                reasons = []
                if rob_total >= config.rob_size:
                    reasons.append("rob")
                if iq_total >= config.iq_size:
                    reasons.append("iq")
                if kind == KIND_LOAD and lq_total >= config.lq_size:
                    reasons.append("lq")
                if kind == KIND_STORE and sq_total >= config.sq_size:
                    reasons.append("sq")
                if kind in REG_WRITING_KINDS and irf_total >= self._effective_irf:
                    reasons.append("rf")
                if reasons:
                    stall_reasons.update(reasons)
                    continue
                thread.fetchq.popleft()
                thread.rob.append((seq, kind))
                thread.rob_occ += 1
                rob_total += 1
                thread.iq_occ += 1
                iq_total += 1
                self._iq.append([thread_index, seq, dep1, dep2, kind])
                if kind == KIND_LOAD:
                    thread.lq_occ += 1
                    lq_total += 1
                elif kind == KIND_STORE:
                    thread.sq_occ += 1
                    sq_total += 1
                elif kind == KIND_BRANCH:
                    thread.branches_in_rob += 1
                if kind in REG_WRITING_KINDS:
                    thread.irf_occ += 1
                    irf_total += 1
                renamed += 1
                budget -= 1
                progressed = True
            if not progressed:
                break
        if renamed:
            activity.running += 1
        elif not self.threads[0].fetchq and not self.threads[1].fetchq:
            activity.idle += 1
        else:
            activity.stalled += 1
            if "rob" in stall_reasons:
                activity.stalled_rob += 1
            if "iq" in stall_reasons:
                activity.stalled_iq += 1
            if "lq" in stall_reasons:
                activity.stalled_lq += 1
            if "sq" in stall_reasons:
                activity.stalled_sq += 1
            if "rf" in stall_reasons:
                activity.stalled_rf += 1

    # repro: mirror[smt-fetch]
    def _fetch(self, cycle: int) -> None:
        config = self.config
        eligible = []
        icount = [0, 0]
        branch_count = [0, 0]
        lsq_count = [0, 0]
        gated = self._gating()
        for thread_index, thread in enumerate(self.threads):
            icount[thread_index] = thread.iq_occ + len(thread.fetchq)
            branch_count[thread_index] = thread.branches_in_rob
            lsq_count[thread_index] = thread.lq_occ + thread.sq_occ
            if thread.blocked_seq is not None:
                done_at = thread.completion.get(thread.blocked_seq)
                if done_at is not None and done_at + config.mispredict_penalty <= cycle:
                    thread.blocked_seq = None
                else:
                    continue
            if len(thread.fetchq) >= config.fetchq_capacity:
                continue
            if gated[thread_index]:
                continue
            eligible.append(thread_index)
        choice = pick_thread(
            self.policy.priority, eligible, icount, branch_count, lsq_count,
            self._rr_counter,
        )
        if choice is None:
            return
        thread = self.threads[choice]
        stream = thread.stream
        for _ in range(config.fetch_width):
            kind, dep1_off, dep2_off, mispredict = next(stream)
            seq = thread.next_seq
            thread.next_seq = seq + 1
            dep1 = seq - dep1_off if dep1_off else 0
            dep2 = seq - dep2_off if dep2_off else 0
            thread.fetchq.append((seq, kind, max(dep1, 0), max(dep2, 0), mispredict))
            if mispredict:
                # Front-end redirect: stop fetching this thread until the
                # branch resolves.
                thread.blocked_seq = seq
                break

    # ------------------------------------------------------------- internals

    def _gating(self) -> List[bool]:
        config = self.config
        threads = self.threads
        return gated_threads(
            self.policy,
            self.allowances,
            config.iq_size,
            [threads[0].iq_occ, threads[1].iq_occ],
            [threads[0].lq_occ + threads[0].sq_occ,
             threads[1].lq_occ + threads[1].sq_occ],
            [threads[0].rob_occ, threads[1].rob_occ],
            [threads[0].irf_occ, threads[1].irf_occ],
            config.lq_size + config.sq_size,
            config.rob_size,
            self._effective_irf,
        )

    # repro: mirror[smt-memory-latency]
    def _memory_latency(self, profile: ThreadProfile) -> int:
        draw = self._mem_rng.random()
        if draw < profile.l1_hit_rate:
            return self.config.l1_latency
        if draw < profile.l1_hit_rate + (1.0 - profile.l1_hit_rate) * profile.l2_hit_rate:
            return self.config.l2_latency
        return self.config.dram_latency

    # repro: mirror[smt-prune-completion]
    def _prune_completion(self) -> None:
        # Dependence offsets are bounded (≤ 256), so completion entries far
        # below the commit frontier can never be consulted again.
        for thread in self.threads:
            if len(thread.completion) > 2048:
                floor = thread.committed_seq - 512
                thread.completion = {
                    seq: done
                    for seq, done in thread.completion.items()
                    if seq >= floor
                }
