"""Bandit control of the SMT fetch PG policy (§5.3).

The Bandit sits *on top of* the Hill-Climbing algorithm: Hill Climbing keeps
tuning the per-thread occupancy allowance, while the Bandit switches the
whole PG policy between its six pruned arms (Table 1). The bandit step is a
number of Hill-Climbing epochs — longer during the initial round-robin phase
(``bandit step-RR``) so Hill Climbing has time to converge under each arm and
the observed reward reflects the arm's true capability. On every arm switch
the Hill-Climbing state of the outgoing arm is saved and the incoming arm's
state restored (§5.3, last paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bandit.base import BanditConfig, MABAlgorithm
from repro.bandit.ducb import DUCB
from repro.constants import (
    SMT_EXPLORATION_C,
    SMT_GAMMA,
    SMT_STEP_EPOCHS,
    SMT_STEP_EPOCHS_RR,
)
from repro.smt.hill_climbing import HillClimbing, HillClimbingConfig
from repro.smt.pg_policy import BANDIT_PG_ARMS, PGPolicy
from repro.smt.pipeline import SMTPipeline


@dataclass(frozen=True)
class SMTBanditConfig:
    """Table 6 (SMT column): DUCB with γ=0.975, c=0.01, 6 arms."""

    gamma: float = SMT_GAMMA
    exploration_c: float = SMT_EXPLORATION_C
    step_epochs: int = SMT_STEP_EPOCHS
    step_epochs_rr: int = SMT_STEP_EPOCHS_RR
    hill_climbing: HillClimbingConfig = field(default_factory=HillClimbingConfig)
    seed: int = 0


class BanditFetchController:
    """Drives an :class:`SMTPipeline` with Bandit-selected PG policies."""

    def __init__(
        self,
        pipeline: SMTPipeline,
        arms: Sequence[PGPolicy] = BANDIT_PG_ARMS,
        config: SMTBanditConfig = SMTBanditConfig(),
        algorithm: Optional[MABAlgorithm] = None,
        reward_metric=None,
    ) -> None:
        """``reward_metric`` is an :data:`repro.smt.rewards.SMTRewardMetric`;
        the default is the paper's sum-of-IPCs (§6.4)."""
        self.pipeline = pipeline
        self.arms: Tuple[PGPolicy, ...] = tuple(arms)
        self.config = config
        if reward_metric is None:
            from repro.smt.rewards import total_ipc

            reward_metric = total_ipc()
        self.reward_metric = reward_metric
        if algorithm is None:
            algorithm = DUCB(
                BanditConfig(
                    num_arms=len(self.arms),
                    gamma=config.gamma,
                    exploration_c=config.exploration_c,
                    seed=config.seed,
                )
            )
        if algorithm.num_arms != len(self.arms):
            raise ValueError("algorithm arm count must match PG arm count")
        self.algorithm = algorithm
        self.hill_climbing = HillClimbing(config.hill_climbing)
        self._saved_hc_state: Dict[int, tuple] = {}
        self._current_arm: Optional[int] = None
        self.arm_history: List[int] = []

    # ------------------------------------------------------------------ API

    def run_steps(self, num_steps: int) -> float:
        """Run ``num_steps`` bandit steps; returns overall IPC."""
        start_cycle = self.pipeline.cycle
        start_committed = self.pipeline.committed_total
        for _ in range(num_steps):
            self.run_one_step()
        cycles = self.pipeline.cycle - start_cycle
        committed = self.pipeline.committed_total - start_committed
        return committed / cycles if cycles else 0.0

    def run_one_step(self) -> float:
        """One bandit step: select arm, run its epochs, report the reward."""
        arm = self.algorithm.select_arm()
        self._apply_arm(arm)
        epochs = (
            self.config.step_epochs_rr
            if self.algorithm.in_round_robin_phase
            else self.config.step_epochs
        )
        step_ipc = self._run_epochs(epochs)
        self.algorithm.observe(step_ipc)
        self.arm_history.append(arm)
        return step_ipc

    # -------------------------------------------------------------- internals

    def _apply_arm(self, arm: int) -> None:
        if arm == self._current_arm:
            return
        if self._current_arm is not None:
            self._saved_hc_state[self._current_arm] = self.hill_climbing.state()
        saved = self._saved_hc_state.get(arm)
        if saved is not None:
            self.hill_climbing.restore(saved)
        else:
            self.hill_climbing = HillClimbing(self.config.hill_climbing)
        self._current_arm = arm
        self.pipeline.set_policy(self.arms[arm])

    def _run_epochs(self, epochs: int) -> float:
        epoch_cycles = self.config.hill_climbing.epoch_cycles
        start = self.pipeline.per_thread_committed()
        for _ in range(epochs):
            self.pipeline.set_allowances(self.hill_climbing.allowances)
            epoch_ipc = self.pipeline.run(epoch_cycles)
            self.hill_climbing.end_epoch(epoch_ipc)
        end = self.pipeline.per_thread_committed()
        deltas = [after - before for before, after in zip(start, end)]
        return self.reward_metric(deltas, epochs * epoch_cycles)


def run_static_policy(
    pipeline: SMTPipeline,
    policy: PGPolicy,
    epochs: int,
    hc_config: Optional[HillClimbingConfig] = None,
) -> float:
    """Run a fixed PG policy with Hill Climbing active; returns overall IPC.

    This is the harness behind the Choi baseline, plain ICount, and the
    best-static-arm oracle of Table 9 and Figures 5/13.
    """
    if hc_config is None:
        hc_config = HillClimbingConfig()
    hill_climbing = HillClimbing(hc_config)
    pipeline.set_policy(policy)
    start_cycle = pipeline.cycle
    start_committed = pipeline.committed_total
    for _ in range(epochs):
        pipeline.set_allowances(hill_climbing.allowances)
        epoch_ipc = pipeline.run(hc_config.epoch_cycles)
        hill_climbing.end_epoch(epoch_ipc)
    cycles = pipeline.cycle - start_cycle
    committed = pipeline.committed_total - start_committed
    return committed / cycles if cycles else 0.0
