"""Bandit control of the SMT fetch PG policy (§5.3).

The Bandit sits *on top of* the Hill-Climbing algorithm: Hill Climbing keeps
tuning the per-thread occupancy allowance, while the Bandit switches the
whole PG policy between its six pruned arms (Table 1). The bandit step is a
number of Hill-Climbing epochs — longer during the initial round-robin phase
(``bandit step-RR``) so Hill Climbing has time to converge under each arm and
the observed reward reflects the arm's true capability. On every arm switch
the Hill-Climbing state of the outgoing arm is saved and the incoming arm's
state restored (§5.3, last paragraph).

Epoch batches run through :func:`run_epochs`, which dispatches to the fused
cycle kernel (:mod:`repro.core_model.smt_kernel`) when the pipeline is
eligible, or to the per-object loop otherwise; both paths are bit-identical
and the runtime sanitizer (``REPRO_SANITIZE=1``) checks them against each
other per epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bandit.base import BanditConfig, MABAlgorithm
from repro.bandit.ducb import DUCB
from repro.constants import (
    SMT_EXPLORATION_C,
    SMT_GAMMA,
    SMT_STEP_EPOCHS,
    SMT_STEP_EPOCHS_RR,
)
from repro.core_model.sanitizer import SMTStepRecord
from repro.smt.hill_climbing import HillClimbing, HillClimbingConfig
from repro.smt.pg_policy import BANDIT_PG_ARMS, PGPolicy
from repro.smt.pipeline import SMTPipeline

#: Epoch-boundary callback: ``(pipeline, epoch_ipc)``, read-only pipeline.
EpochHook = Callable[[SMTPipeline, float], None]


# repro: mirror[smt-epoch-loop]
def _run_epochs_object(
    pipeline: SMTPipeline,
    hill_climbing: HillClimbing,
    epochs: int,
    epoch_cycles: int,
    epoch_hook: Optional[EpochHook] = None,
) -> None:
    """Object-path epoch loop (the kernel's semantic twin)."""
    for _ in range(epochs):
        pipeline.set_allowances(hill_climbing.allowances)
        epoch_ipc = pipeline.run(epoch_cycles)
        hill_climbing.end_epoch(epoch_ipc)
        if epoch_hook is not None:
            epoch_hook(pipeline, epoch_ipc)


def run_epochs(
    pipeline: SMTPipeline,
    hill_climbing: HillClimbing,
    epochs: int,
    epoch_cycles: int,
    epoch_hook: Optional[EpochHook] = None,
    use_kernel: Optional[bool] = None,
) -> None:
    """Run an epoch batch through the fused kernel or the object path.

    ``use_kernel=None`` auto-selects: the kernel runs when
    ``REPRO_SMT_KERNEL`` is not switched off and ``pipeline`` is a plain
    :class:`SMTPipeline` (subclasses always take the object path).
    """
    from repro.core_model.smt_kernel import kernel_eligible, run_smt_epochs_kernel

    if use_kernel is None:
        use_kernel = kernel_eligible(pipeline)
    if use_kernel:
        run_smt_epochs_kernel(
            pipeline, hill_climbing, epochs, epoch_cycles, epoch_hook
        )
    else:
        _run_epochs_object(
            pipeline, hill_climbing, epochs, epoch_cycles, epoch_hook
        )


@dataclass(frozen=True)
class SMTBanditConfig:
    """Table 6 (SMT column): DUCB with γ=0.975, c=0.01, 6 arms."""

    gamma: float = SMT_GAMMA
    exploration_c: float = SMT_EXPLORATION_C
    step_epochs: int = SMT_STEP_EPOCHS
    step_epochs_rr: int = SMT_STEP_EPOCHS_RR
    hill_climbing: HillClimbingConfig = field(default_factory=HillClimbingConfig)
    seed: int = 0


class BanditFetchController:
    """Drives an :class:`SMTPipeline` with Bandit-selected PG policies."""

    def __init__(
        self,
        pipeline: SMTPipeline,
        arms: Sequence[PGPolicy] = BANDIT_PG_ARMS,
        config: SMTBanditConfig = SMTBanditConfig(),
        algorithm: Optional[MABAlgorithm] = None,
        reward_metric=None,
        use_kernel: Optional[bool] = None,
        epoch_log: Optional[List[SMTStepRecord]] = None,
    ) -> None:
        """``reward_metric`` is an :data:`repro.smt.rewards.SMTRewardMetric`;
        the default is the paper's sum-of-IPCs (§6.4). ``use_kernel`` pins
        the simulation path (``None`` = auto); ``epoch_log`` collects
        sanitizer checkpoints (one per epoch, plus one per bandit step
        carrying the arm and estimator state)."""
        self.pipeline = pipeline
        self.arms: Tuple[PGPolicy, ...] = tuple(arms)
        self.config = config
        if reward_metric is None:
            from repro.smt.rewards import total_ipc

            reward_metric = total_ipc()
        self.reward_metric = reward_metric
        if algorithm is None:
            algorithm = DUCB(
                BanditConfig(
                    num_arms=len(self.arms),
                    gamma=config.gamma,
                    exploration_c=config.exploration_c,
                    seed=config.seed,
                )
            )
        if algorithm.num_arms != len(self.arms):
            raise ValueError("algorithm arm count must match PG arm count")
        self.algorithm = algorithm
        self.hill_climbing = HillClimbing(config.hill_climbing)
        self.use_kernel = use_kernel
        self.epoch_log = epoch_log
        self._saved_hc_state: Dict[int, tuple] = {}
        self._current_arm: Optional[int] = None
        self.arm_history: List[int] = []

    # ------------------------------------------------------------------ API

    def run_steps(self, num_steps: int) -> float:
        """Run ``num_steps`` bandit steps; returns overall IPC."""
        start_cycle = self.pipeline.cycle
        start_committed = self.pipeline.committed_total
        for _ in range(num_steps):
            self.run_one_step()
        cycles = self.pipeline.cycle - start_cycle
        committed = self.pipeline.committed_total - start_committed
        return committed / cycles if cycles else 0.0

    def run_epoch_budget(self, total_epochs: int) -> float:
        """Run bandit steps until exactly ``total_epochs`` epochs elapsed.

        Steps take their natural length (``step_epochs_rr`` during the
        algorithm's round-robin phase, ``step_epochs`` after), except that
        a trailing remainder is flushed as one short final step — its
        reward is still normalized by the epochs it actually ran, so the
        estimate is unbiased. Returns overall IPC over the whole span.
        """
        start_cycle = self.pipeline.cycle
        start_committed = self.pipeline.committed_total
        epochs_done = 0
        while epochs_done < total_epochs:
            planned = (
                self.config.step_epochs_rr
                if self.algorithm.in_round_robin_phase
                else self.config.step_epochs
            )
            epochs = min(planned, total_epochs - epochs_done)
            self.run_one_step(epochs=epochs)
            epochs_done += epochs
        cycles = self.pipeline.cycle - start_cycle
        committed = self.pipeline.committed_total - start_committed
        return committed / cycles if cycles else 0.0

    def run_one_step(self, epochs: Optional[int] = None) -> float:
        """One bandit step: select arm, run its epochs, report the reward.

        ``epochs`` overrides the step length (used by
        :meth:`run_epoch_budget` to flush a trailing remainder).
        """
        # The phase must be read *before* select_arm(): selecting the last
        # round-robin arm may end the phase, and that step still has to run
        # the long RR step so every arm's initial estimate is comparable.
        in_round_robin = self.algorithm.in_round_robin_phase
        arm = self.algorithm.select_arm()
        self._apply_arm(arm)
        if epochs is None:
            epochs = (
                self.config.step_epochs_rr
                if in_round_robin
                else self.config.step_epochs
            )
        step_ipc = self._run_epochs(epochs)
        self.algorithm.observe(step_ipc)
        self.arm_history.append(arm)
        log = self.epoch_log
        if log is not None:
            committed0, committed1 = self.pipeline.per_thread_committed()
            log.append(SMTStepRecord(
                step=len(log),
                committed0=committed0,
                committed1=committed1,
                cycles=float(self.pipeline.cycle),
                ipc=step_ipc,
                arm=arm,
                reward_estimates=tuple(self.algorithm.reward_estimates()),
                selection_counts=tuple(self.algorithm.selection_counts()),
            ))
        return step_ipc

    # -------------------------------------------------------------- internals

    def _apply_arm(self, arm: int) -> None:
        if arm == self._current_arm:
            return
        if self._current_arm is not None:
            self._saved_hc_state[self._current_arm] = self.hill_climbing.state()
        saved = self._saved_hc_state.get(arm)
        if saved is not None:
            self.hill_climbing.restore(saved)
        else:
            self.hill_climbing = HillClimbing(self.config.hill_climbing)
        self._current_arm = arm
        self.pipeline.set_policy(self.arms[arm])

    def _epoch_hook(self, pipeline: SMTPipeline, epoch_ipc: float) -> None:
        log = self.epoch_log
        if log is None:
            return
        committed0, committed1 = pipeline.per_thread_committed()
        log.append(SMTStepRecord(
            step=len(log),
            committed0=committed0,
            committed1=committed1,
            cycles=float(pipeline.cycle),
            ipc=epoch_ipc,
            arm=self._current_arm,
        ))

    def _run_epochs(self, epochs: int) -> float:
        epoch_cycles = self.config.hill_climbing.epoch_cycles
        start = self.pipeline.per_thread_committed()
        hook = self._epoch_hook if self.epoch_log is not None else None
        run_epochs(
            self.pipeline, self.hill_climbing, epochs, epoch_cycles,
            epoch_hook=hook, use_kernel=self.use_kernel,
        )
        end = self.pipeline.per_thread_committed()
        deltas = [after - before for before, after in zip(start, end)]
        return self.reward_metric(deltas, epochs * epoch_cycles)


def run_static_policy(
    pipeline: SMTPipeline,
    policy: PGPolicy,
    epochs: int,
    hc_config: Optional[HillClimbingConfig] = None,
    use_kernel: Optional[bool] = None,
    epoch_log: Optional[List[SMTStepRecord]] = None,
) -> float:
    """Run a fixed PG policy with Hill Climbing active; returns overall IPC.

    This is the harness behind the Choi baseline, plain ICount, and the
    best-static-arm oracle of Table 9 and Figures 5/13. ``use_kernel`` and
    ``epoch_log`` mirror :class:`BanditFetchController`'s parameters.
    """
    if hc_config is None:
        hc_config = HillClimbingConfig()
    hill_climbing = HillClimbing(hc_config)
    pipeline.set_policy(policy)
    start_cycle = pipeline.cycle
    start_committed = pipeline.committed_total
    epoch_hook: Optional[EpochHook] = None
    if epoch_log is not None:
        log = epoch_log

        def epoch_hook(hook_pipeline: SMTPipeline, epoch_ipc: float) -> None:
            committed0, committed1 = hook_pipeline.per_thread_committed()
            log.append(SMTStepRecord(
                step=len(log),
                committed0=committed0,
                committed1=committed1,
                cycles=float(hook_pipeline.cycle),
                ipc=epoch_ipc,
            ))

    run_epochs(
        pipeline, hill_climbing, epochs, hc_config.epoch_cycles,
        epoch_hook=epoch_hook, use_kernel=use_kernel,
    )
    cycles = pipeline.cycle - start_cycle
    committed = pipeline.committed_total - start_committed
    return committed / cycles if cycles else 0.0
