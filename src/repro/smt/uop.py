"""Micro-op stream generation from :class:`ThreadProfile` statistics.

Each thread is an endless, seeded stream of micro-ops. A micro-op is a plain
tuple (kept flat for simulation speed)::

    (kind, dep1_offset, dep2_offset, mispredict)

- ``kind`` — one of the ``KIND_*`` constants below.
- ``dep*_offset`` — distance (in uops, same thread) back to each producer;
  0 means no dependence. Drawn geometrically around the profile's
  ``mean_dep_distance``, which is what sets the thread's ILP.
- ``mispredict`` — for branches, whether this one will redirect the
  front end when it resolves.

Load/store service levels (L1/L2/DRAM) are drawn at issue time by the
pipeline using the same profile, so the uop tuple stays small.
"""

from __future__ import annotations

import random
from typing import Iterator, Tuple

from repro.util.rng import make_rng
from repro.workloads.smt import ThreadProfile

KIND_ALU = 0
KIND_LOAD = 1
KIND_STORE = 2
KIND_BRANCH = 3
KIND_LONG = 4

KIND_NAMES = ("alu", "load", "store", "branch", "long")

#: Kinds that allocate a physical register at rename (freed at commit).
REG_WRITING_KINDS = frozenset({KIND_ALU, KIND_LOAD, KIND_LONG})

Uop = Tuple[int, int, int, bool]


def uop_stream(profile: ThreadProfile, seed: int = 0) -> Iterator[Uop]:
    """Endless seeded stream of micro-ops matching ``profile``'s statistics."""
    rng = make_rng(seed, "uops", profile.name)
    load_cut = profile.load_fraction
    store_cut = load_cut + profile.store_fraction
    branch_cut = store_cut + profile.branch_fraction
    long_cut = branch_cut + profile.long_op_fraction * (1.0 - branch_cut)
    mean_dep = max(profile.mean_dep_distance, 1.0)
    mispredict_rate = profile.branch_mispredict_rate
    while True:
        draw = rng.random()
        if draw < load_cut:
            kind = KIND_LOAD
        elif draw < store_cut:
            kind = KIND_STORE
        elif draw < branch_cut:
            kind = KIND_BRANCH
        elif draw < long_cut:
            kind = KIND_LONG
        else:
            kind = KIND_ALU
        dep1 = _dep_offset(rng, mean_dep)
        dep2 = _dep_offset(rng, mean_dep) if rng.random() < 0.4 else 0
        mispredict = kind == KIND_BRANCH and rng.random() < mispredict_rate
        yield (kind, dep1, dep2, mispredict)


def _dep_offset(rng: random.Random, mean: float) -> int:
    """Geometric-ish producer distance; 0 = independent (~20% of operands)."""
    if rng.random() < 0.2:
        return 0
    return 1 + min(int(rng.expovariate(1.0 / mean)), 255)
