"""Hill-Climbing SMT resource distribution (Choi & Yeung, ISCA 2006 [17]).

The algorithm tunes the per-thread occupancy allowance used by fetch gating.
Time is divided into epochs; each learning round runs one *trial epoch* per
candidate setting — the current partition, and the partition shifted by ±δ
IQ entries toward each thread — measures the performance of each, and moves
to the best. Optimal thresholds are "mostly temporally stable" ([17], §3.2),
which is exactly the property that lets a bandit sit on top of this
algorithm and switch whole PG policies instead.

The implementation supports two threads (the paper's SMT evaluation is
2-threaded): the partition is fully described by thread 0's allowance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.constants import (
    HILL_CLIMBING_DELTA_IQ_ENTRIES,
    HILL_CLIMBING_EPOCH_CYCLES,
)


@dataclass(frozen=True)
class HillClimbingConfig:
    """Hill-Climbing parameters (Table 6: epoch 64k cycles, δ = 2 IQ entries).

    ``epoch_cycles`` is scaled down in most experiments to keep the Python
    simulation tractable; EXPERIMENTS.md records the scaling.
    """

    iq_size: int = 97
    delta: float = HILL_CLIMBING_DELTA_IQ_ENTRIES
    epoch_cycles: int = HILL_CLIMBING_EPOCH_CYCLES
    min_allowance: float = 8.0

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError(f"delta must be positive, got {self.delta}")
        if self.min_allowance * 2 > self.iq_size:
            raise ValueError("min_allowance leaves no room for two threads")


class HillClimbing:
    """Per-epoch trial search over the 2-thread occupancy partition."""

    def __init__(self, config: HillClimbingConfig = HillClimbingConfig()) -> None:
        self.config = config
        self._base = config.iq_size / 2.0
        # Trial schedule: offsets applied to the base partition.
        self._offsets: Tuple[float, ...] = (0.0, config.delta, -config.delta)
        self._trial_index = 0
        self._trial_scores: List[Optional[float]] = [None] * len(self._offsets)
        self.epochs_run = 0

    # ------------------------------------------------------------------ API

    @property
    def allowances(self) -> Tuple[float, float]:
        """Current per-thread allowance in IQ entries (thread0, thread1)."""
        candidate = self._clamp(self._base + self._offsets[self._trial_index])
        return (candidate, self.config.iq_size - candidate)

    def end_epoch(self, ipc: float) -> None:
        """Record the epoch's performance and advance the trial schedule."""
        self._trial_scores[self._trial_index] = ipc
        self.epochs_run += 1
        self._trial_index += 1
        if self._trial_index >= len(self._offsets):
            self._adopt_best()
            self._trial_index = 0
            self._trial_scores = [None] * len(self._offsets)

    def state(self) -> Tuple[float, int, Tuple[Optional[float], ...]]:
        """Snapshot for per-arm save/restore (§5.3)."""
        return (self._base, self._trial_index, tuple(self._trial_scores))

    def restore(self, state: Tuple[float, int, Tuple[Optional[float], ...]]) -> None:
        base, trial_index, scores = state
        self._base = self._clamp(base)
        self._trial_index = trial_index
        self._trial_scores = list(scores)

    # -------------------------------------------------------------- internals

    def _adopt_best(self) -> None:
        best_index = 0
        best_score = -1.0
        for index, score in enumerate(self._trial_scores):
            if score is not None and score > best_score:
                best_index = index
                best_score = score
        self._base = self._clamp(self._base + self._offsets[best_index])

    def _clamp(self, allowance: float) -> float:
        low = self.config.min_allowance
        high = self.config.iq_size - self.config.min_allowance
        return min(max(allowance, low), high)
