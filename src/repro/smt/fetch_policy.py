"""Fetch priority policies of §3.2 (Tullsen et al. [74]).

Given the per-thread occupancy metrics maintained by the pipeline, each
policy ranks the fetch-eligible threads and the pipeline fetches from the
winner this cycle:

- **IC (ICount)** — fewest instructions in the front end + instruction queue.
- **BrC (Branch Count)** — fewest branches in the ROB.
- **LSQC (LSQ Count)** — fewest load/store-queue entries.
- **RR (Round Robin)** — alternate regardless of occupancy.
"""

from __future__ import annotations

from typing import Optional, Sequence

FETCH_PRIORITIES = ("BrC", "IC", "LSQC", "RR")


# repro: mirror[smt-pick-thread]
def pick_thread(
    priority: str,
    eligible: Sequence[int],
    icount: Sequence[int],
    branch_count: Sequence[int],
    lsq_count: Sequence[int],
    rr_counter: int,
) -> Optional[int]:
    """Select the thread to fetch from this cycle (None if none eligible).

    ``rr_counter`` should increase every cycle; ties in the metric-based
    policies are broken round-robin as well so a symmetric pair of threads
    shares fetch bandwidth evenly.
    """
    if not eligible:
        return None
    if len(eligible) == 1:
        return eligible[0]
    if priority == "RR":
        return eligible[rr_counter % len(eligible)]
    if priority == "IC":
        metric = icount
    elif priority == "BrC":
        metric = branch_count
    elif priority == "LSQC":
        metric = lsq_count
    else:
        raise ValueError(f"unknown fetch priority {priority!r}")
    best_value = min(metric[thread] for thread in eligible)
    winners = [thread for thread in eligible if metric[thread] == best_value]
    return winners[rr_counter % len(winners)]
