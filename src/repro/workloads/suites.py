"""Workload suites mirroring the paper's trace collections (§6.2).

Each :class:`WorkloadSpec` names a synthetic application, assigns it to a
suite (SPEC06, SPEC17, PARSEC, Ligra, CloudSuite), and records the generator
and parameters that produce its trace. Names follow the real applications
whose access behaviour each spec emulates — e.g. ``mcf`` is a pointer-chasing
workload with a mid-trace phase change, matching its role in Figure 7.

The *tune set* (§6.3) contains only SPEC-like workloads; the non-SPEC suites
are reserved to test adaptability to unseen applications, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.util.rng import derive_seed
from repro.workloads.generators import GeneratorParams, generate_trace
from repro.workloads.trace import TraceRecord


@dataclass(frozen=True)
class WorkloadSpec:
    """A named synthetic workload: generator kind + parameters."""

    name: str
    suite: str
    kind: str
    generator_kwargs: dict = field(default_factory=dict)
    gap_mean: float = 3.0
    write_fraction: float = 0.25

    def trace(
        self, length: int, seed: int = 0, gap_scale: float = 1.0
    ) -> List[TraceRecord]:
        """Materialize this workload's trace with ``length`` accesses.

        ``gap_scale`` multiplies the mean non-memory instruction gap —
        multi-core experiments use it to model rate-mode co-runs whose
        per-core memory intensity is lower than a core running alone
        flat-out (otherwise four synthetic streams oversubscribe the single
        DRAM channel so completely that no prefetcher can matter).
        """
        params = GeneratorParams(
            length=length,
            seed=derive_seed(seed, self.suite, self.name),
            gap_mean=self.gap_mean * gap_scale,
            write_fraction=self.write_fraction,
        )
        return generate_trace(self.kind, params, **self.generator_kwargs)


def _spec(
    name: str,
    suite: str,
    kind: str,
    gap_mean: float = 3.0,
    write_fraction: float = 0.25,
    **kwargs: object,
) -> WorkloadSpec:
    return WorkloadSpec(name, suite, kind, kwargs, gap_mean, write_fraction)


#: SPEC06-like workloads. Streaming (libquantum/lbm), strided (milc/cactus),
#: pointer-chasing (mcf/omnetpp), footprint (soplex), compute-bound (hmmer).
SPEC06_SPECS: Tuple[WorkloadSpec, ...] = (
    _spec("bwaves06", "SPEC06", "stream", num_streams=6, gap_mean=2.0),
    _spec("libquantum06", "SPEC06", "stream", num_streams=1, gap_mean=1.5),
    _spec("lbm06", "SPEC06", "stream", num_streams=8, write_fraction=0.45,
          gap_mean=1.5),
    _spec("milc06", "SPEC06", "strided", strides_blocks=(4, 4, 8, 2),
          gap_mean=30.0),
    _spec("cactus06", "SPEC06", "strided", strides_blocks=(2, 3, 2, 5),
          gap_mean=35.0),
    _spec("mcf06", "SPEC06", "phased", gap_mean=4.0,
          phases=("pointer_chase", "region"),
          phase_params={"pointer_chase": {"footprint_blocks": 1 << 18,
                                          "hot_probability": 0.4},
                        "region": {"num_regions": 768}}),
    _spec("omnetpp06", "SPEC06", "pointer_chase", footprint_blocks=1 << 17,
          hot_probability=0.4),
    _spec("soplex06", "SPEC06", "region", num_regions=2048, region_blocks=32,
          gap_mean=10.0),
    _spec("gcc06", "SPEC06", "mixed", stream_weight=0.3, stride_weight=0.2,
          random_weight=0.5, gap_mean=4.0),
    _spec("hmmer06", "SPEC06", "region", num_regions=64, region_blocks=32,
          gap_mean=6.0),
)

#: SPEC17-like workloads.
SPEC17_SPECS: Tuple[WorkloadSpec, ...] = (
    _spec("bwaves17", "SPEC17", "stream", num_streams=4, gap_mean=2.0),
    _spec("lbm17", "SPEC17", "stream", num_streams=8, write_fraction=0.5,
          gap_mean=1.5),
    _spec("cactuBSSN17", "SPEC17", "strided", strides_blocks=(2, 6, 3, 2),
          gap_mean=30.0),
    _spec("mcf17", "SPEC17", "phased", gap_mean=4.0,
          phases=("pointer_chase", "stream"),
          phase_params={"pointer_chase": {"footprint_blocks": 1 << 18},
                        "stream": {"num_streams": 2}}),
    _spec("xalancbmk17", "SPEC17", "pointer_chase", footprint_blocks=1 << 16,
          hot_probability=0.5, gap_mean=4.0),
    _spec("wrf17", "SPEC17", "strided", strides_blocks=(5, 7, 3, 9),
          gap_mean=35.0),
    _spec("pop217", "SPEC17", "stream", num_streams=12, gap_mean=2.5),
    _spec("x26417", "SPEC17", "region", num_regions=256, region_blocks=32,
          gap_mean=4.0),
    _spec("roms17", "SPEC17", "stream", num_streams=6, backwards_fraction=0.3,
          gap_mean=2.0),
    _spec("deepsjeng17", "SPEC17", "mixed", stream_weight=0.1,
          stride_weight=0.1, random_weight=0.8, gap_mean=6.0,
          footprint_blocks=1 << 13),
    _spec("gcc17", "SPEC17", "mixed", stream_weight=0.25, stride_weight=0.25,
          random_weight=0.5, gap_mean=4.5),
    _spec("xz17", "SPEC17", "phased", gap_mean=3.0,
          phases=("stream", "region"),
          phase_params={"stream": {"num_streams": 2},
                        "region": {"num_regions": 512}}),
)

#: PARSEC-like workloads.
PARSEC_SPECS: Tuple[WorkloadSpec, ...] = (
    _spec("blackscholes", "PARSEC", "stream", num_streams=3, gap_mean=5.0),
    _spec("canneal", "PARSEC", "pointer_chase", footprint_blocks=1 << 18,
          hot_probability=0.2, gap_mean=3.0),
    _spec("fluidanimate", "PARSEC", "region", num_regions=1536,
          region_blocks=32, gap_mean=8.0),
    _spec("freqmine", "PARSEC", "mixed", stream_weight=0.2, stride_weight=0.3,
          random_weight=0.5, gap_mean=4.0),
    _spec("streamcluster", "PARSEC", "stream", num_streams=2, gap_mean=1.5),
    _spec("swaptions", "PARSEC", "region", num_regions=96, region_blocks=16,
          gap_mean=6.0),
)

#: Ligra-like graph workloads: all share the CSR scan + irregular-load shape,
#: varying density and frontier size.
LIGRA_SPECS: Tuple[WorkloadSpec, ...] = (
    _spec("ligra_bfs", "Ligra", "graph", avg_degree=4, frontier_fraction=0.1,
          gap_mean=2.5),
    _spec("ligra_pagerank", "Ligra", "graph", avg_degree=16,
          frontier_fraction=0.9, gap_mean=2.0),
    _spec("ligra_components", "Ligra", "graph", avg_degree=8,
          frontier_fraction=0.5, gap_mean=2.5),
    _spec("ligra_triangle", "Ligra", "graph", avg_degree=24,
          frontier_fraction=0.3, gap_mean=2.0),
    _spec("ligra_radii", "Ligra", "graph", avg_degree=6,
          frontier_fraction=0.4, gap_mean=3.0),
    _spec("ligra_maxmatch", "Ligra", "graph", avg_degree=10,
          frontier_fraction=0.6, gap_mean=3.0),
)

#: CloudSuite-like workloads: blended patterns with large PC footprints.
CLOUDSUITE_SPECS: Tuple[WorkloadSpec, ...] = (
    _spec("cassandra", "CloudSuite", "mixed", stream_weight=0.2,
          stride_weight=0.1, random_weight=0.7, pc_footprint=256,
          gap_mean=4.0),
    _spec("classification", "CloudSuite", "mixed", stream_weight=0.5,
          stride_weight=0.1, random_weight=0.4, pc_footprint=128,
          gap_mean=3.0),
    _spec("cloud9", "CloudSuite", "mixed", stream_weight=0.1,
          stride_weight=0.2, random_weight=0.7, pc_footprint=256,
          gap_mean=5.0),
    _spec("nutch", "CloudSuite", "mixed", stream_weight=0.3,
          stride_weight=0.2, random_weight=0.5, pc_footprint=192,
          gap_mean=4.0),
)

ALL_SUITES: Dict[str, Tuple[WorkloadSpec, ...]] = {
    "SPEC06": SPEC06_SPECS,
    "SPEC17": SPEC17_SPECS,
    "PARSEC": PARSEC_SPECS,
    "Ligra": LIGRA_SPECS,
    "CloudSuite": CLOUDSUITE_SPECS,
}

_BY_NAME: Dict[str, WorkloadSpec] = {
    spec.name: spec for specs in ALL_SUITES.values() for spec in specs
}


def spec_by_name(name: str) -> WorkloadSpec:
    """Look up a workload spec by its application name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def suite_specs(suite: str) -> Tuple[WorkloadSpec, ...]:
    """All specs in one suite."""
    try:
        return ALL_SUITES[suite]
    except KeyError:
        raise ValueError(
            f"unknown suite {suite!r}; known: {sorted(ALL_SUITES)}"
        ) from None


def tune_specs() -> List[WorkloadSpec]:
    """The prefetching tune set: SPEC-like workloads only (§6.3)."""
    return list(SPEC06_SPECS) + list(SPEC17_SPECS)


def eval_specs() -> List[WorkloadSpec]:
    """The full evaluation set: every suite (§6.2)."""
    return [spec for specs in ALL_SUITES.values() for spec in specs]


def four_core_mixes(max_heterogeneous: int = 8) -> Dict[str, List[WorkloadSpec]]:
    """Four-core mixes: homogeneous (same app ×4) and heterogeneous (§6.2).

    Homogeneous mixes replicate each SPEC-like workload on all four cores;
    heterogeneous mixes rotate through the SPEC-like list in windows of four.
    """
    mixes: Dict[str, List[WorkloadSpec]] = {}
    spec_like = tune_specs()
    for spec in spec_like:
        mixes[f"homog-{spec.name}"] = [spec] * 4
    for start in range(min(max_heterogeneous, len(spec_like))):
        window = [spec_like[(start + offset) % len(spec_like)] for offset in range(4)]
        mixes[f"hetero-{start}"] = window
    return mixes
