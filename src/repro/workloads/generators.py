"""Synthetic memory-trace generators.

Each generator is a seeded, deterministic producer of :class:`TraceRecord`
lists emulating one access-pattern family observed in the paper's suites:

================  ==============================================================
Generator          Pattern family it stands in for
================  ==============================================================
``stream_trace``   sequential streaming over large arrays (libquantum, lbm,
                   streamcluster) — streamer-degree arms win
``strided_trace``  constant per-PC strides larger than a block (milc, wrf,
                   cactus) — PC-stride arms win
``pointer_chase``  dependent irregular pointer chasing (mcf, omnetpp, canneal)
                   — prefetching pollutes; the all-off arm wins
``region_trace``   recurring spatial footprints inside small regions (soplex,
                   x264, fluidanimate) — Bingo-style footprint prefetchers win
``graph_trace``    CSR-style frontier expansion mixing a sequential offset scan
                   with irregular neighbor loads (Ligra workloads)
``mixed_trace``    probabilistic blend with a large code/PC footprint
                   (CloudSuite workloads)
``phased_trace``   concatenation of segments whose optimal prefetch action
                   differs — exercises DUCB's phase adaptation (Figure 7, mcf)
================  ==============================================================

All addresses are byte addresses; generators confine each logical data
structure to its own region of the address space so that streams do not
accidentally alias.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.util.rng import make_rng
from repro.workloads.trace import BLOCK_BYTES, TraceRecord

#: Address-space layout: each data structure gets a 256 MB region.
_REGION_BYTES = 1 << 28


@dataclass(frozen=True)
class GeneratorParams:
    """Common knobs accepted by every generator.

    ``length`` counts memory accesses (records), not instructions.
    ``gap_mean`` is the average number of non-memory instructions between
    accesses; individual gaps are geometric-ish draws so the instruction
    stream has realistic burstiness.
    """

    length: int = 50_000
    seed: int = 0
    gap_mean: float = 3.0
    write_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError(f"length must be >= 1, got {self.length}")
        if self.gap_mean < 0:
            raise ValueError(f"gap_mean must be >= 0, got {self.gap_mean}")
        if not 0.0 <= self.write_fraction < 1.0:
            raise ValueError(
                f"write_fraction must be in [0, 1), got {self.write_fraction}"
            )


def _gap(rng: random.Random, mean: float) -> int:
    """Draw a non-memory instruction gap with the requested mean."""
    if mean <= 0:
        return 0
    # Geometric with success prob 1/(mean+1) has mean `mean`.
    return min(int(rng.expovariate(1.0 / mean)), 255) if mean > 0 else 0


def _region_base(index: int) -> int:
    return (index + 1) * _REGION_BYTES


def stream_trace(
    params: GeneratorParams,
    num_streams: int = 4,
    footprint_blocks: int = 1 << 16,
    backwards_fraction: float = 0.0,
    element_bytes: int = 8,
) -> List[TraceRecord]:
    """Interleaved sequential streams marching through large arrays.

    Streams advance element-by-element (``element_bytes``), so several
    consecutive accesses land in the same block and hit in the L1 — only
    block boundaries reach the L2, as in real streaming code.
    """
    rng = make_rng(params.seed, "stream")
    cursors = [0] * num_streams
    directions = [
        -1 if rng.random() < backwards_fraction else 1 for _ in range(num_streams)
    ]
    footprint_bytes = footprint_blocks * BLOCK_BYTES
    records: List[TraceRecord] = []
    for _ in range(params.length):
        stream = rng.randrange(num_streams)
        offset = (cursors[stream] * element_bytes) % footprint_bytes
        address = _region_base(stream) + offset
        cursors[stream] += directions[stream]
        if cursors[stream] < 0:
            cursors[stream] = footprint_bytes // element_bytes - 1
        pc = 0x400000 + stream * 0x40
        is_write = rng.random() < params.write_fraction
        records.append(TraceRecord(pc, address, is_write, _gap(rng, params.gap_mean)))
    return records


def strided_trace(
    params: GeneratorParams,
    strides_blocks: Sequence[int] = (3, 5, 7, 2),
    footprint_blocks: int = 1 << 16,
) -> List[TraceRecord]:
    """Per-PC constant strides (in blocks), larger than one line.

    A PC-based stride prefetcher captures each PC's stride independently;
    pure next-line or stream prefetchers mispredict most of these.
    """
    rng = make_rng(params.seed, "strided")
    num_pcs = len(strides_blocks)
    cursors = [rng.randrange(footprint_blocks) for _ in range(num_pcs)]
    records: List[TraceRecord] = []
    for _ in range(params.length):
        which = rng.randrange(num_pcs)
        block = cursors[which] % footprint_blocks
        address = _region_base(which) + block * BLOCK_BYTES
        cursors[which] += strides_blocks[which]
        pc = 0x500000 + which * 0x40
        is_write = rng.random() < params.write_fraction
        records.append(TraceRecord(pc, address, is_write, _gap(rng, params.gap_mean)))
    return records


def pointer_chase_trace(
    params: GeneratorParams,
    footprint_blocks: int = 1 << 18,
    hot_fraction: float = 0.1,
    hot_probability: float = 0.3,
    dependent_fraction: float = 0.6,
) -> List[TraceRecord]:
    """Dependent irregular accesses over a large footprint.

    A small hot set gives caches something to hit on, but there is no
    sequential or strided structure for prefetchers to learn — aggressive
    prefetching only burns bandwidth and pollutes the cache.
    ``dependent_fraction`` of the cold accesses form a serial pointer chain;
    the rest are independent walks (real linked-structure codes sustain a
    little MLP by chasing several lists at once).
    """
    rng = make_rng(params.seed, "pointer")
    hot_blocks = max(1, int(footprint_blocks * hot_fraction))
    records: List[TraceRecord] = []
    # Deterministic permutation walk for the cold accesses: a simple LCG over
    # the footprint gives reproducible, non-repeating "pointer" jumps.
    state = rng.randrange(footprint_blocks)
    multiplier = 6364136223846793005
    for _ in range(params.length):
        if rng.random() < hot_probability:
            block = rng.randrange(hot_blocks)
            dependent = False
        else:
            state = (state * multiplier + 1442695040888963407) & 0xFFFFFFFF
            block = state % footprint_blocks
            # The next pointer usually comes from the loaded line itself.
            dependent = rng.random() < dependent_fraction
        address = _region_base(0) + block * BLOCK_BYTES
        pc = 0x600000 + (block & 0x3) * 0x40
        is_write = rng.random() < params.write_fraction
        records.append(
            TraceRecord(
                pc, address, is_write, _gap(rng, params.gap_mean), dependent
            )
        )
    return records


def region_trace(
    params: GeneratorParams,
    num_regions: int = 512,
    region_blocks: int = 32,
    footprint_fraction: float = 0.5,
    revisit_probability: float = 0.85,
    accesses_per_block: int = 2,
) -> List[TraceRecord]:
    """Recurring spatial footprints inside 2 KB regions.

    Each region has a fixed footprint (a subset of its blocks) that repeats
    on every visit — the structure Bingo-style footprint prefetchers learn.
    Visits touch the footprint blocks in order (``accesses_per_block``
    consecutive touches per line, so the L1 absorbs the repeats), then jump
    to another region.
    """
    rng = make_rng(params.seed, "region")
    if accesses_per_block < 1:
        raise ValueError("accesses_per_block must be >= 1")
    footprints: List[List[int]] = []
    for region in range(num_regions):
        local = make_rng(params.seed, "region-fp", region)
        size = max(2, int(region_blocks * footprint_fraction))
        blocks = sorted(local.sample(range(region_blocks), size))
        footprints.append(blocks)
    records: List[TraceRecord] = []
    region = rng.randrange(num_regions)
    offset_index = 0
    touch = 0
    while len(records) < params.length:
        footprint = footprints[region]
        if offset_index >= len(footprint):
            offset_index = 0
            if rng.random() < revisit_probability:
                region = (region + 1) % num_regions
            else:
                region = rng.randrange(num_regions)
            footprint = footprints[region]
        block = region * region_blocks + footprint[offset_index]
        touch += 1
        if touch >= accesses_per_block:
            touch = 0
            offset_index += 1
        address = _region_base(0) + block * BLOCK_BYTES
        pc = 0x700000 + (offset_index & 0x7) * 0x40
        is_write = rng.random() < params.write_fraction
        records.append(TraceRecord(pc, address, is_write, _gap(rng, params.gap_mean)))
    return records


def graph_trace(
    params: GeneratorParams,
    num_vertices: int = 1 << 15,
    avg_degree: int = 8,
    frontier_fraction: float = 0.2,
) -> List[TraceRecord]:
    """CSR-style graph traversal: sequential offset scan + irregular loads.

    Alternates a streaming pass over the offsets/frontier arrays with
    data-dependent neighbor accesses — the Ligra pattern where a streamer
    helps the sequential part but cannot touch the irregular part.
    """
    rng = make_rng(params.seed, "graph")
    records: List[TraceRecord] = []
    offsets_region = _region_base(0)
    values_region = _region_base(1)
    vertex = 0
    while len(records) < params.length:
        # Sequential read of the vertex's offset entry.
        address = offsets_region + vertex * 8
        records.append(
            TraceRecord(0x800000, address, False, _gap(rng, params.gap_mean))
        )
        degree = max(1, int(rng.expovariate(1.0 / avg_degree)))
        for _ in range(degree):
            if len(records) >= params.length:
                break
            neighbor = rng.randrange(num_vertices)
            address = values_region + neighbor * BLOCK_BYTES
            is_write = rng.random() < params.write_fraction
            records.append(
                TraceRecord(
                    0x800040, address, is_write, _gap(rng, params.gap_mean), True
                )
            )
        vertex = (vertex + 1) % int(num_vertices * frontier_fraction + 1)
    return records[: params.length]


def mixed_trace(
    params: GeneratorParams,
    stream_weight: float = 0.4,
    stride_weight: float = 0.2,
    random_weight: float = 0.4,
    pc_footprint: int = 64,
    footprint_blocks: int = 1 << 17,
) -> List[TraceRecord]:
    """Probabilistic blend with a large PC footprint (CloudSuite-like)."""
    total = stream_weight + stride_weight + random_weight
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    rng = make_rng(params.seed, "mixed")
    stream_cursor = 0
    stride_cursor = rng.randrange(footprint_blocks)
    records: List[TraceRecord] = []
    for _ in range(params.length):
        draw = rng.random() * total
        if draw < stream_weight:
            # Element-granular streaming: 8 accesses per block.
            block = (stream_cursor // 8) % footprint_blocks
            stream_cursor += 1
            base = _region_base(0)
        elif draw < stream_weight + stride_weight:
            block = stride_cursor % footprint_blocks
            stride_cursor += 6
            base = _region_base(1)
        else:
            block = rng.randrange(footprint_blocks)
            base = _region_base(2)
        address = base + block * BLOCK_BYTES
        pc = 0x900000 + rng.randrange(pc_footprint) * 0x40
        is_write = rng.random() < params.write_fraction
        records.append(TraceRecord(pc, address, is_write, _gap(rng, params.gap_mean)))
    return records


def phased_trace(
    params: GeneratorParams,
    phases: Sequence[str] = ("stream", "pointer_chase"),
    phase_params: Dict[str, dict] | None = None,
) -> List[TraceRecord]:
    """Concatenate equal-length segments of different pattern families.

    Used to emulate coarse-grained program phases whose optimal prefetch
    action differs — the scenario where DUCB's forgetting factor pays off
    and UCB gets stuck (Figure 7's mcf column).
    """
    if not phases:
        raise ValueError("phased_trace requires at least one phase")
    phase_params = phase_params or {}
    segment_length = params.length // len(phases)
    records: List[TraceRecord] = []
    for index, kind in enumerate(phases):
        remaining = params.length - len(records)
        this_length = segment_length if index < len(phases) - 1 else remaining
        sub = GeneratorParams(
            length=max(1, this_length),
            seed=params.seed * 1000 + index,
            gap_mean=params.gap_mean,
            write_fraction=params.write_fraction,
        )
        generator = GENERATORS[kind]
        records.extend(generator(sub, **phase_params.get(kind, {})))
    return records[: params.length]


#: Registry mapping pattern names to generator callables.
GENERATORS: Dict[str, Callable[..., List[TraceRecord]]] = {
    "stream": stream_trace,
    "strided": strided_trace,
    "pointer_chase": pointer_chase_trace,
    "region": region_trace,
    "graph": graph_trace,
    "mixed": mixed_trace,
    "phased": phased_trace,
}


def generate_trace(kind: str, params: GeneratorParams, **kwargs: object) -> List[TraceRecord]:
    """Generate a trace of the given pattern ``kind`` (see :data:`GENERATORS`)."""
    try:
        generator = GENERATORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown trace kind {kind!r}; known: {sorted(GENERATORS)}"
        ) from None
    return generator(params, **kwargs)
