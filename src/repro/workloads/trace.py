"""Memory-trace representation and (de)serialization.

A trace is a sequence of :class:`TraceRecord` values in program order. To
keep traces compact, non-memory instructions are not materialized: each
record carries ``inst_gap``, the number of non-memory instructions the core
executes *before* this access. The trace-driven core model
(:mod:`repro.core_model`) charges those instructions against the commit
width, exactly as ChampSim-style simulators replay filtered traces.
"""

from __future__ import annotations

import gzip
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, NamedTuple

#: Cache block size used throughout the reproduction (64-byte lines).
BLOCK_SHIFT = 6
BLOCK_BYTES = 1 << BLOCK_SHIFT


class TraceRecord(NamedTuple):
    """One memory access in program order.

    ``dependent`` marks loads whose address depends on the previous load's
    data (pointer chasing); the core model serializes them, collapsing MLP.
    """

    pc: int
    address: int
    is_write: bool
    inst_gap: int
    dependent: bool = False

    @property
    def block(self) -> int:
        """Cache-block number of the access."""
        return self.address >> BLOCK_SHIFT


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a trace (used by tests and reporting)."""

    accesses: int
    instructions: int
    unique_blocks: int
    unique_pcs: int
    write_fraction: float


def trace_stats(trace: Iterable[TraceRecord]) -> TraceStats:
    """Compute :class:`TraceStats` in one pass."""
    accesses = 0
    instructions = 0
    writes = 0
    blocks = set()
    pcs = set()
    for record in trace:
        accesses += 1
        instructions += record.inst_gap + 1
        if record.is_write:
            writes += 1
        blocks.add(record.address >> BLOCK_SHIFT)
        pcs.add(record.pc)
    write_fraction = writes / accesses if accesses else 0.0
    return TraceStats(accesses, instructions, len(blocks), len(pcs), write_fraction)


_RECORD_STRUCT = struct.Struct("<QQBHB")


def write_trace(trace: Iterable[TraceRecord], path: str | Path) -> int:
    """Serialize a trace to a gzip-compressed binary file.

    Returns the number of records written. Format: little-endian
    ``(pc: u64, address: u64, is_write: u8, inst_gap: u16, dependent: u8)``
    per record.
    """
    count = 0
    with gzip.open(Path(path), "wb") as handle:
        for record in trace:
            handle.write(
                _RECORD_STRUCT.pack(
                    record.pc,
                    record.address,
                    1 if record.is_write else 0,
                    min(record.inst_gap, 0xFFFF),
                    1 if record.dependent else 0,
                )
            )
            count += 1
    return count


#: Records decoded per read in :func:`read_trace` (64 KB-ish chunks).
_READ_CHUNK_RECORDS = 4096


def read_trace(path: str | Path) -> List[TraceRecord]:
    """Read a trace previously written by :func:`write_trace`.

    Reads in multi-record chunks and decodes each chunk with one
    ``Struct.iter_unpack`` call rather than one ``read`` + ``unpack`` pair
    per record; a trailing partial record still raises ``ValueError``.
    """
    records: List[TraceRecord] = []
    append = records.append
    size = _RECORD_STRUCT.size
    chunk_bytes = size * _READ_CHUNK_RECORDS
    pending = b""
    with gzip.open(Path(path), "rb") as handle:
        while True:
            chunk = handle.read(chunk_bytes)
            if not chunk:
                break
            if pending:
                chunk = pending + chunk
            whole = len(chunk) - len(chunk) % size
            pending = chunk[whole:]
            for pc, address, is_write, inst_gap, dependent in (
                _RECORD_STRUCT.iter_unpack(chunk[:whole])
            ):
                append(
                    TraceRecord(
                        pc, address, bool(is_write), inst_gap, bool(dependent)
                    )
                )
    if pending:
        raise ValueError(f"truncated trace file: {path}")
    return records


def concatenate(traces: Iterable[List[TraceRecord]]) -> List[TraceRecord]:
    """Concatenate traces — used to extend short traces to length (§6.2)."""
    result: List[TraceRecord] = []
    for trace in traces:
        result.extend(trace)
    return result
