"""Synthetic SMT thread profiles and 2-thread mixes (§6.2, SMT use case).

The paper captures SPEC17 simpoints and runs 226 2-thread combinations of 22
applications (tune set: 43 mixes from 10 applications). Simpoints are not
available offline, so each application is replaced by a
:class:`ThreadProfile` — a statistical model of its instruction mix, ILP, and
memory behaviour that the SMT pipeline's micro-op generator consumes.

Profiles are constructed to span the axes the paper's analysis identifies as
decisive (§3.3): store-queue appetite (lbm exhausting SQ entries), ROB-vs-IQ
asymmetry, branch density (BrC's niche), and load-queue pressure (LSQC's
niche).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import combinations
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class ThreadProfile:
    """Statistical model of one SPEC17-like thread.

    Fractions partition the dynamic instruction stream; the remainder after
    loads/stores/branches is plain ALU work. ``mean_dep_distance`` controls
    ILP: operands are drawn from the previous ~N instructions, so a small
    value creates serial dependence chains. Memory hit rates describe where
    loads are served (stores retire through the store queue and drain to the
    same hierarchy levels).
    """

    name: str
    load_fraction: float = 0.25
    store_fraction: float = 0.10
    branch_fraction: float = 0.12
    mean_dep_distance: float = 12.0
    long_op_fraction: float = 0.05
    long_op_latency: int = 12
    l1_hit_rate: float = 0.90
    l2_hit_rate: float = 0.70
    branch_mispredict_rate: float = 0.03

    def __post_init__(self) -> None:
        total = self.load_fraction + self.store_fraction + self.branch_fraction
        if total >= 1.0:
            raise ValueError(
                f"{self.name}: load+store+branch fractions must be < 1, got {total}"
            )
        for label, rate in (
            ("l1_hit_rate", self.l1_hit_rate),
            ("l2_hit_rate", self.l2_hit_rate),
            ("branch_mispredict_rate", self.branch_mispredict_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{self.name}: {label} must be in [0, 1], got {rate}")


#: Archetypal SPEC17-like profiles. Comments note the behaviour each models.
_BASE_PROFILES: Tuple[ThreadProfile, ...] = (
    # Store-heavy, DRAM-bound streaming; aggressively consumes SQ entries
    # (the lbm behaviour discussed in §3.3 and [71]).
    ThreadProfile("lbm", load_fraction=0.20, store_fraction=0.38,
                  branch_fraction=0.04, mean_dep_distance=24.0,
                  l1_hit_rate=0.45, l2_hit_rate=0.15,
                  branch_mispredict_rate=0.005),
    # Pointer-chasing, low ILP, load-latency bound: fills ROB with stalled loads.
    ThreadProfile("mcf", load_fraction=0.35, store_fraction=0.08,
                  branch_fraction=0.18, mean_dep_distance=4.0,
                  l1_hit_rate=0.70, l2_hit_rate=0.35,
                  branch_mispredict_rate=0.06),
    # Branchy integer code with a hot working set.
    ThreadProfile("gcc", load_fraction=0.26, store_fraction=0.12,
                  branch_fraction=0.22, mean_dep_distance=8.0,
                  l1_hit_rate=0.94, l2_hit_rate=0.80,
                  branch_mispredict_rate=0.07),
    # FP stencil with long dependence chains and long-latency ops: IQ pressure.
    ThreadProfile("cactuBSSN", load_fraction=0.30, store_fraction=0.12,
                  branch_fraction=0.03, mean_dep_distance=6.0,
                  long_op_fraction=0.30, long_op_latency=16,
                  l1_hit_rate=0.85, l2_hit_rate=0.55,
                  branch_mispredict_rate=0.004),
    # Streaming FP with high MLP: many outstanding loads, LQ pressure.
    ThreadProfile("bwaves", load_fraction=0.38, store_fraction=0.10,
                  branch_fraction=0.04, mean_dep_distance=32.0,
                  l1_hit_rate=0.72, l2_hit_rate=0.40,
                  branch_mispredict_rate=0.004),
    # High-ILP media kernel: wants raw issue bandwidth.
    ThreadProfile("x264", load_fraction=0.22, store_fraction=0.10,
                  branch_fraction=0.08, mean_dep_distance=28.0,
                  long_op_fraction=0.10, long_op_latency=6,
                  l1_hit_rate=0.96, l2_hit_rate=0.85,
                  branch_mispredict_rate=0.02),
    # Branchy search with a small footprint.
    ThreadProfile("deepsjeng", load_fraction=0.22, store_fraction=0.10,
                  branch_fraction=0.20, mean_dep_distance=10.0,
                  l1_hit_rate=0.97, l2_hit_rate=0.90,
                  branch_mispredict_rate=0.08),
    # XML traversal: loads + branches, mid locality.
    ThreadProfile("xalancbmk", load_fraction=0.32, store_fraction=0.08,
                  branch_fraction=0.20, mean_dep_distance=7.0,
                  l1_hit_rate=0.90, l2_hit_rate=0.60,
                  branch_mispredict_rate=0.05),
    # Weather stencil: strided FP loads/stores, moderate ILP.
    ThreadProfile("wrf", load_fraction=0.30, store_fraction=0.16,
                  branch_fraction=0.06, mean_dep_distance=14.0,
                  long_op_fraction=0.18, long_op_latency=10,
                  l1_hit_rate=0.88, l2_hit_rate=0.65,
                  branch_mispredict_rate=0.01),
    # Molecular dynamics: compute-dense, cache-resident.
    ThreadProfile("nab", load_fraction=0.20, store_fraction=0.08,
                  branch_fraction=0.08, mean_dep_distance=16.0,
                  long_op_fraction=0.22, long_op_latency=12,
                  l1_hit_rate=0.97, l2_hit_rate=0.92,
                  branch_mispredict_rate=0.01),
)

#: Parameter tweaks that turn the 10 archetypes into the 22 eval profiles
#: (matching the paper's 22 SPEC17 applications). Each variant perturbs the
#: memory/ILP knobs enough to shift which PG policy is optimal.
_VARIANTS: Tuple[Tuple[str, str, dict], ...] = (
    ("lbm", "fotonik3d", {"store_fraction": 0.24, "l1_hit_rate": 0.68}),
    ("mcf", "omnetpp", {"l1_hit_rate": 0.82, "branch_fraction": 0.22}),
    ("gcc", "perlbench", {"branch_fraction": 0.24, "l1_hit_rate": 0.96}),
    ("gcc", "xz", {"branch_fraction": 0.14, "l1_hit_rate": 0.88,
                   "mean_dep_distance": 6.0}),
    ("cactuBSSN", "parest", {"long_op_fraction": 0.2, "l1_hit_rate": 0.9}),
    ("bwaves", "roms", {"load_fraction": 0.34, "l1_hit_rate": 0.78}),
    ("bwaves", "cam4", {"mean_dep_distance": 20.0, "l2_hit_rate": 0.55}),
    ("x264", "imagick", {"long_op_fraction": 0.25, "long_op_latency": 10}),
    ("x264", "leela", {"branch_fraction": 0.16,
                       "branch_mispredict_rate": 0.06}),
    ("deepsjeng", "exchange2", {"branch_mispredict_rate": 0.04,
                                "l1_hit_rate": 0.99}),
    ("wrf", "pop2", {"store_fraction": 0.2, "l2_hit_rate": 0.5}),
    ("nab", "povray", {"long_op_fraction": 0.3, "mean_dep_distance": 10.0}),
)


def _build_profiles() -> Dict[str, ThreadProfile]:
    profiles = {profile.name: profile for profile in _BASE_PROFILES}
    for base_name, new_name, overrides in _VARIANTS:
        base = profiles[base_name]
        profiles[new_name] = replace(base, name=new_name, **overrides)
    return profiles


_PROFILES: Dict[str, ThreadProfile] = _build_profiles()

#: Names of the 10 tune-set applications (§6.3) and the full 22-app eval set.
TUNE_APP_NAMES: Tuple[str, ...] = tuple(profile.name for profile in _BASE_PROFILES)
EVAL_APP_NAMES: Tuple[str, ...] = tuple(_PROFILES)

SMT_MIX_NAMES = {
    "tune": TUNE_APP_NAMES,
    "eval": EVAL_APP_NAMES,
}


def thread_profile(name: str) -> ThreadProfile:
    """Look up a thread profile by application name."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown SMT application {name!r}; known: {sorted(_PROFILES)}"
        ) from None


def _pair_mixes(names: Tuple[str, ...], count: int) -> List[Tuple[ThreadProfile, ThreadProfile]]:
    pairs = list(combinations(names, 2))
    if len(pairs) < count:
        raise ValueError(f"only {len(pairs)} pairs available, need {count}")
    return [
        (_PROFILES[first], _PROFILES[second]) for first, second in pairs[:count]
    ]


def smt_tune_mixes(count: int = 43) -> List[Tuple[ThreadProfile, ThreadProfile]]:
    """The 43 2-thread tune mixes built from 10 applications (§6.3)."""
    return _pair_mixes(TUNE_APP_NAMES, count)


def smt_eval_mixes(count: int = 226) -> List[Tuple[ThreadProfile, ThreadProfile]]:
    """The 226 2-thread evaluation mixes built from 22 applications (§6.2)."""
    return _pair_mixes(EVAL_APP_NAMES, count)
