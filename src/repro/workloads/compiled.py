"""Compiled array-backed traces and the on-disk trace store.

The object representation of a trace — a list of
:class:`~repro.workloads.trace.TraceRecord` NamedTuples — is convenient but
expensive to materialize and replay: every figure regenerates the same
workloads once per prefetcher arm, and every replayed record pays NamedTuple
construction plus per-field attribute lookups. A :class:`CompiledTrace` is
the same trace *compiled* into a structure-of-arrays form (pc / block /
flags / inst_gap), which

- materializes once and is shared by every replay of the same workload
  (the 11-arm fan-outs and repeated no-prefetch baselines of the figures),
- is memoized on disk keyed by the generator configuration and seed, so
  repeated CLI/benchmark invocations skip generation entirely, and
- replays through :meth:`~repro.core_model.trace_core.TraceCore.run_compiled`
  without constructing a single per-record object.

Only the cache-block number of each access is stored (as ChampSim traces
do): the simulator consumes addresses exclusively at block granularity, so
reconstructing ``address = block << BLOCK_SHIFT`` is behaviour-preserving —
replaying a compiled trace produces bit-identical counters and IPC to the
object-trace path (asserted suite-by-suite in ``tests/test_compiled_trace``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.suites import WorkloadSpec, spec_by_name
from repro.workloads.trace import BLOCK_SHIFT, TraceRecord

#: Bump to invalidate every stored compiled trace (array layout or
#: generator-visible semantics changed).
TRACE_STORE_VERSION = 1

#: Flag bits in :attr:`CompiledTrace.flags`.
FLAG_WRITE = 1
FLAG_DEPENDENT = 2


class CompiledTrace:
    """One workload trace as a structure of arrays.

    Arrays are parallel and immutable by convention: ``pc`` and ``block``
    are ``int64``, ``flags`` is ``uint8`` (bit 0 = write, bit 1 =
    dependent), and ``inst_gap`` is ``int32``.
    """

    __slots__ = ("pc", "block", "flags", "inst_gap", "_lists")

    def __init__(
        self,
        pc: np.ndarray,
        block: np.ndarray,
        flags: np.ndarray,
        inst_gap: np.ndarray,
    ) -> None:
        length = len(pc)
        if not (len(block) == len(flags) == len(inst_gap) == length):
            raise ValueError("compiled trace arrays must have equal length")
        # repro: dtype[pc: int64]
        # repro: dtype[block: int64]
        # repro: dtype[flags: uint8 bits<=2]
        # repro: dtype[inst_gap: int32]
        self.pc = np.ascontiguousarray(pc, dtype=np.int64)
        self.block = np.ascontiguousarray(block, dtype=np.int64)
        self.flags = np.ascontiguousarray(flags, dtype=np.uint8)
        self.inst_gap = np.ascontiguousarray(inst_gap, dtype=np.int32)
        self._lists: Optional[
            Tuple[List[int], List[int], List[int], List[int]]
        ] = None

    # ------------------------------------------------------------ construction

    @classmethod
    def from_records(cls, records: Sequence[TraceRecord]) -> "CompiledTrace":
        """Compile an object trace into array form."""
        pcs: List[int] = []
        blocks: List[int] = []
        flags: List[int] = []
        gaps: List[int] = []
        pcs_append = pcs.append
        blocks_append = blocks.append
        flags_append = flags.append
        gaps_append = gaps.append
        for record in records:
            pcs_append(record.pc)
            blocks_append(record.address >> BLOCK_SHIFT)
            flags_append(
                (FLAG_WRITE if record.is_write else 0)
                | (FLAG_DEPENDENT if record.dependent else 0)
            )
            gaps_append(record.inst_gap)
        return cls(
            np.array(pcs, dtype=np.int64),
            np.array(blocks, dtype=np.int64),
            np.array(flags, dtype=np.uint8),
            np.array(gaps, dtype=np.int32),
        )

    # ----------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self.pc)

    def __iter__(self) -> Iterator[TraceRecord]:
        """Object-trace compatibility path: yields :class:`TraceRecord`."""
        return iter(self.to_records())

    def to_records(self) -> List[TraceRecord]:
        """Reconstruct the object trace (block-granular addresses)."""
        # repro: dtype[flags: uint8 bits<=2]
        pcs, blocks, flags, gaps = self.as_lists()
        return [
            TraceRecord(
                pcs[index],
                blocks[index] << BLOCK_SHIFT,
                bool(flags[index] & FLAG_WRITE),
                gaps[index],
                bool(flags[index] & FLAG_DEPENDENT),
            )
            for index in range(len(pcs))
        ]

    def as_lists(self) -> Tuple[List[int], List[int], List[int], List[int]]:
        """Plain-``int`` views of the arrays for the replay kernel.

        NumPy scalar indexing would dominate a Python-level replay loop, so
        the hot path iterates plain lists; the conversion is one C-level
        pass, cached for the lifetime of the trace.
        """
        if self._lists is None:
            self._lists = (
                self.pc.tolist(),
                self.block.tolist(),
                self.flags.tolist(),
                self.inst_gap.tolist(),
            )
        return self._lists

    # ------------------------------------------------------------ persistence

    def save(self, path: str | Path) -> None:
        """Write the arrays to ``path`` (``.npz``), atomically."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                np.savez_compressed(
                    handle,
                    pc=self.pc,
                    block=self.block,
                    flags=self.flags,
                    inst_gap=self.inst_gap,
                )
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str | Path) -> "CompiledTrace":
        with np.load(Path(path), allow_pickle=False) as bundle:
            return cls(
                bundle["pc"], bundle["block"], bundle["flags"],
                bundle["inst_gap"],
            )


def compile_trace(records: Sequence[TraceRecord]) -> CompiledTrace:
    """Module-level alias for :meth:`CompiledTrace.from_records`."""
    return CompiledTrace.from_records(records)


# ================================================================ trace keys


def trace_key(
    spec: WorkloadSpec, length: int, seed: int, gap_scale: float = 1.0
) -> str:
    """Stable content hash identifying one materialized workload trace.

    Keyed on everything that determines the generated records: the
    generator kind and kwargs, the gap/write knobs, the trace length, the
    seed, and the store schema version.
    """
    payload = json.dumps(
        [
            "repro-trace",
            TRACE_STORE_VERSION,
            spec.name,
            spec.suite,
            spec.kind,
            spec.generator_kwargs,
            repr(spec.gap_mean),
            repr(spec.write_fraction),
            length,
            seed,
            repr(gap_scale),
        ],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ================================================================= the store


class TraceStore:
    """Process-wide memoization of compiled traces, optionally disk-backed.

    The in-memory layer makes the per-figure fan-outs (one generation
    shared by ~6–11 replays) free; the disk layer (``directory`` set)
    shares materializations across processes, pool workers, and repeated
    CLI/benchmark invocations. Disk writes are atomic; unreadable entries
    are regenerated and overwritten.
    """

    def __init__(
        self,
        directory: Optional[str | Path] = None,
        memory_entries: int = 64,
    ) -> None:
        if memory_entries < 0:
            raise ValueError("memory_entries must be >= 0")
        self.directory = (
            Path(directory) / f"t{TRACE_STORE_VERSION}"
            if directory is not None else None
        )
        self.memory_entries = memory_entries
        self._memory: Dict[str, CompiledTrace] = {}
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / key[:2] / f"{key}.npz"

    def _remember(self, key: str, compiled: CompiledTrace) -> None:
        if self.memory_entries == 0:
            return
        while len(self._memory) >= self.memory_entries:
            self._memory.pop(next(iter(self._memory)))
        self._memory[key] = compiled

    def get(
        self,
        spec: WorkloadSpec,
        length: int,
        seed: int = 0,
        gap_scale: float = 1.0,
    ) -> CompiledTrace:
        """The compiled trace for ``spec`` — memoized, generating at most once."""
        key = trace_key(spec, length, seed, gap_scale)
        cached = self._memory.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        path = self._path(key)
        if path is not None and path.is_file():
            try:
                loaded = CompiledTrace.load(path)
            except (OSError, ValueError, KeyError, EOFError, IndexError,
                    ImportError, zipfile.BadZipFile):
                loaded = None  # corrupt/stale entry: fall through and rebuild
            if loaded is not None:
                self.hits += 1
                self._remember(key, loaded)
                return loaded
        self.misses += 1
        compiled = CompiledTrace.from_records(
            spec.trace(length, seed=seed, gap_scale=gap_scale)
        )
        if path is not None:
            compiled.save(path)
        self._remember(key, compiled)
        return compiled


#: Environment variable naming the disk directory of the default store —
#: read once per process, so pool workers inherit the CLI/benchmark setting.
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE_DIR"

_ACTIVE_STORE: Optional[TraceStore] = None


def get_trace_store() -> TraceStore:
    """The process-wide store used by the experiment task functions."""
    global _ACTIVE_STORE
    if _ACTIVE_STORE is None:
        # The env var only relocates the content-keyed store directory;
        # entries are keyed by trace content, so results cannot differ.
        # repro: cache-invariant[REPRO_TRACE_CACHE_DIR]
        directory = os.environ.get(TRACE_CACHE_ENV) or None
        # Deliberate per-process memo of the store handle.
        _ACTIVE_STORE = TraceStore(directory)  # repro: ignore[R12]
    return _ACTIVE_STORE


def set_trace_store(store: Optional[TraceStore]) -> Optional[TraceStore]:
    """Install ``store`` globally (``None`` re-reads the environment)."""
    global _ACTIVE_STORE
    previous = _ACTIVE_STORE
    _ACTIVE_STORE = store
    return previous


@contextmanager
def use_trace_store(store: Optional[TraceStore]) -> Iterator[None]:
    """Temporarily install ``store`` as the process-wide trace store."""
    previous = set_trace_store(store)
    try:
        yield
    finally:
        set_trace_store(previous)


def compiled_trace_for(
    spec_name: str, length: int, seed: int = 0, gap_scale: float = 1.0
) -> CompiledTrace:
    """Compiled trace for a workload name, through the active store."""
    return get_trace_store().get(
        spec_by_name(spec_name), length, seed=seed, gap_scale=gap_scale
    )
