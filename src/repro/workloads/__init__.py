"""Synthetic workloads standing in for the paper's trace suites.

The paper evaluates on DPC-3/CRC-2/Pythia traces of SPEC06, SPEC17, PARSEC,
Ligra, and CloudSuite, and on SPEC17 simpoints for the SMT use case. Those
artifacts are not redistributable, so this package provides seeded synthetic
generators that reproduce the *properties* the paper's mechanisms exploit:

- per-workload dominance of a small set of prefetch configurations (temporal
  homogeneity, §3.1) with cross-workload diversity,
- coarse-grained phase changes inside some workloads (Figure 7's mcf),
- asymmetric shared-resource appetite across SMT threads (§3.3's lbm).

See DESIGN.md §2 for the substitution rationale.
"""

from repro.workloads.generators import (
    GeneratorParams,
    generate_trace,
    mixed_trace,
    phased_trace,
    pointer_chase_trace,
    region_trace,
    stream_trace,
    strided_trace,
)
from repro.workloads.smt import (
    SMT_MIX_NAMES,
    ThreadProfile,
    smt_eval_mixes,
    smt_tune_mixes,
    thread_profile,
)
from repro.workloads.suites import (
    ALL_SUITES,
    WorkloadSpec,
    eval_specs,
    four_core_mixes,
    spec_by_name,
    suite_specs,
    tune_specs,
)
from repro.workloads.trace import TraceRecord, TraceStats, read_trace, write_trace

__all__ = [
    "ALL_SUITES",
    "GeneratorParams",
    "SMT_MIX_NAMES",
    "ThreadProfile",
    "TraceRecord",
    "TraceStats",
    "WorkloadSpec",
    "eval_specs",
    "four_core_mixes",
    "generate_trace",
    "mixed_trace",
    "phased_trace",
    "pointer_chase_trace",
    "read_trace",
    "region_trace",
    "smt_eval_mixes",
    "smt_tune_mixes",
    "spec_by_name",
    "stream_trace",
    "strided_trace",
    "suite_specs",
    "thread_profile",
    "tune_specs",
    "write_trace",
]
