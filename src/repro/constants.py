"""Single source of truth for the paper's Table 6/7 hyperparameter values.

Every numeric constant the paper fixes for the two use cases lives here,
with its provenance, and is *imported* at each use site instead of being
re-typed inline. The custom static-analysis rule R2
(:mod:`repro.analysis.rules`) enforces this: a literal equal to a registered
value bound to a registered parameter name anywhere in ``repro/bandit``,
``repro/smt``, or ``repro/experiments`` is rejected unless it comes from
this module.

Provenance map (MICRO 2023 paper):

- **Table 6, data-prefetching column** — DUCB with discount factor
  γ = 0.999 and exploration constant c = 0.04 over the 11 arms of Table 7;
  a bandit step is 1000 L2 accesses; the stride/stream components track 64
  PCs/streams; arm selection is conservatively charged 500 cycles (§5.4);
  4-core runs restart the round-robin sweep with probability 0.001 per
  step (§4.3).
- **Table 6, SMT fetch column** — DUCB with γ = 0.975 and c = 0.01 over
  the 6 pruned PG-policy arms of Table 1; a bandit step is 2 Hill-Climbing
  epochs (32 during the initial round-robin phase, §5.3); an epoch is
  64k cycles and Hill Climbing moves the partition by δ = 2 IQ entries
  ([17] via Table 6).
- **Table 3 / §4.2** — the ε-Greedy baseline explores with ε = 0.1.
- **Table 7** — the 11-arm ensemble action table (next-line on/off,
  PC-stride degree, stream degree), in arm-id order.

Scale note: reproduction-scale experiments *derive* shrunk values from
these (e.g. ``figures.SCALED_GAMMA``, ``scaled_hill_climbing``); those
derived values are deliberately not registered here because they are not
paper constants.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

# --------------------------------------------- Table 6, prefetching column

#: DUCB discount (forgetting) factor γ for the prefetching use case.
PREFETCH_GAMMA = 0.999

#: UCB/DUCB exploration constant c (sometimes written ξ) for prefetching.
PREFETCH_EXPLORATION_C = 0.04

#: Bandit step length, measured in L2 accesses.
PREFETCH_STEP_L2_ACCESSES = 1000

#: PC trackers in the stride component of the Table 7 ensemble.
NUM_STRIDE_TRACKERS = 64

#: Stream trackers in the stream component of the Table 7 ensemble.
NUM_STREAM_TRACKERS = 64

#: Conservative arm-selection latency charged by the evaluation (§5.4).
SELECTION_LATENCY_CYCLES = 500

#: Per-step probability of a round-robin restart in 4-core runs (§4.3).
RR_RESTART_PROB_MULTICORE = 0.001

# ----------------------------------------------------- Table 6, SMT column

#: DUCB discount factor γ for the SMT fetch use case.
SMT_GAMMA = 0.975

#: UCB/DUCB exploration constant c for the SMT fetch use case.
SMT_EXPLORATION_C = 0.01

#: PG-policy arms after pruning (Table 1).
SMT_NUM_ARMS = 6

#: Bandit step length in Hill-Climbing epochs (main loop).
SMT_STEP_EPOCHS = 2

#: Bandit step length during the initial round-robin phase (§5.3).
SMT_STEP_EPOCHS_RR = 32

#: Hill-Climbing epoch length in cycles.
HILL_CLIMBING_EPOCH_CYCLES = 64_000

#: Hill-Climbing partition step δ, in IQ entries.
HILL_CLIMBING_DELTA_IQ_ENTRIES = 2.0

# ------------------------------------------------------------ Table 3/§4.2

#: Exploration rate of the ε-Greedy baseline.
EPSILON_GREEDY_EPSILON = 0.1

# ----------------------------------------------------------------- Table 7

#: The 11 ensemble arms, in arm-id order, as
#: ``(next_line_on, stride_degree, stream_degree)`` rows. Degree 0 means
#: the component is off; arm 1 is the all-off arm.
TABLE7_ARM_TABLE: Tuple[Tuple[bool, int, int], ...] = (
    (False, 0, 4),    # 0
    (False, 0, 0),    # 1 (all off)
    (True, 0, 0),     # 2
    (False, 0, 2),    # 3
    (False, 2, 2),    # 4
    (False, 4, 4),    # 5
    (False, 0, 6),    # 6
    (False, 8, 6),    # 7
    (True, 0, 8),     # 8
    (False, 0, 15),   # 9
    (False, 15, 15),  # 10
)

#: Number of prefetching arms (Table 7).
PREFETCH_NUM_ARMS = len(TABLE7_ARM_TABLE)

# ------------------------------------------------------------ R2 registry

#: Parameter name → the paper values that may only be spelled via this
#: module. Rule R2 flags ``name=<literal>`` bindings (keyword arguments,
#: dataclass field defaults, assignments) inside ``repro/bandit``,
#: ``repro/smt`` and ``repro/experiments`` whose name appears here and
#: whose literal equals one of the registered values.
PAPER_CONSTANTS: Dict[str, FrozenSet[float]] = {
    "gamma": frozenset({PREFETCH_GAMMA, SMT_GAMMA}),
    "exploration_c": frozenset({PREFETCH_EXPLORATION_C, SMT_EXPLORATION_C}),
    "epsilon": frozenset({EPSILON_GREEDY_EPSILON}),
    "step_l2_accesses": frozenset({PREFETCH_STEP_L2_ACCESSES}),
    "step_epochs": frozenset({SMT_STEP_EPOCHS}),
    "step_epochs_rr": frozenset({SMT_STEP_EPOCHS_RR}),
    "epoch_cycles": frozenset({HILL_CLIMBING_EPOCH_CYCLES}),
    "delta": frozenset({HILL_CLIMBING_DELTA_IQ_ENTRIES}),
    "delta_iq_entries": frozenset({HILL_CLIMBING_DELTA_IQ_ENTRIES}),
    "num_stride_trackers": frozenset({NUM_STRIDE_TRACKERS}),
    "num_stream_trackers": frozenset({NUM_STREAM_TRACKERS}),
    "selection_latency_cycles": frozenset({SELECTION_LATENCY_CYCLES}),
    "rr_restart_prob": frozenset({RR_RESTART_PROB_MULTICORE}),
    "rr_restart_prob_multicore": frozenset({RR_RESTART_PROB_MULTICORE}),
}

# ------------------------------------------------------------ R9 registry

#: Value → constant name, for rule R9 (constant provenance). Unlike R2,
#: which matches on *binding names*, R9 flags the value itself — any
#: numeric literal (or literal-only arithmetic re-derivation) equal to
#: one of these, anywhere outside this module. Only values distinctive
#: enough not to collide with ordinary code are registered: generic
#: small integers (2, 6, 64, 500, 1000, ...) would drown the rule in
#: false positives, so R2 remains the guard for those.
DISTINCTIVE_PAPER_VALUES: Dict[float, str] = {
    PREFETCH_GAMMA: "PREFETCH_GAMMA",
    PREFETCH_EXPLORATION_C: "PREFETCH_EXPLORATION_C",
    SMT_GAMMA: "SMT_GAMMA",
    SMT_EXPLORATION_C: "SMT_EXPLORATION_C",
    RR_RESTART_PROB_MULTICORE: "RR_RESTART_PROB_MULTICORE",
    HILL_CLIMBING_EPOCH_CYCLES: "HILL_CLIMBING_EPOCH_CYCLES",
}
