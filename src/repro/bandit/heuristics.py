"""Non-MAB exploration heuristics evaluated in §7.1.

- :class:`Single` stops exploring after the initial round-robin phase and
  keeps whichever arm looked best during it.
- :class:`Periodic` alternates periodic round-robin exploration sweeps with
  exploitation of the best arm, smoothing rewards with a moving-average
  buffer in the style of the POWER7 adaptive prefetcher [38].
- :class:`FixedArm` always plays one externally chosen arm. Combined with the
  :func:`repro.experiments` sweep helpers it realizes the *BestStatic* oracle
  of Tables 8/9 and Figure 7; :class:`BestStatic` is an alias kept for API
  symmetry with the paper's terminology.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from repro.bandit.base import BanditConfig, MABAlgorithm


class Single(MABAlgorithm):
    """Explore once (initial round-robin), then exploit forever."""

    name = "single"

    def _next_arm(self) -> int:
        return self.best_arm()

    def _upd_sels(self, arm: int) -> None:
        self.arms[arm].selections += 1.0
        self.n_total += 1.0

    def _upd_rew(self, arm: int, r_step: float) -> None:
        # Single never revises its estimates after the initial phase: a
        # one-shot decision is exactly its failure mode (Table 8's min row).
        pass


class Periodic(MABAlgorithm):
    """Alternate round-robin exploration sweeps and exploitation phases.

    Every ``period`` steps a full sweep over all arms is scheduled. Observed
    rewards enter a per-arm moving-average buffer of length
    ``buffer_length``; the exploited arm is the one with the best buffered
    average.
    """

    name = "periodic"

    def __init__(
        self,
        config: BanditConfig,
        period: int = 50,
        buffer_length: int = 4,
    ) -> None:
        super().__init__(config)
        if period < config.num_arms:
            raise ValueError(
                f"period ({period}) must cover one sweep of {config.num_arms} arms"
            )
        if buffer_length < 1:
            raise ValueError(f"buffer_length must be >= 1, got {buffer_length}")
        self.period = period
        self.buffer_length = buffer_length
        self._buffers: Dict[int, Deque[float]] = {
            arm: deque(maxlen=buffer_length) for arm in range(config.num_arms)
        }
        self._steps_since_sweep = 0
        self._pending_sweep: List[int] = []

    def _next_arm(self) -> int:
        if self._pending_sweep:
            return self._pending_sweep.pop(0)
        self._steps_since_sweep += 1
        if self._steps_since_sweep >= self.period:
            self._steps_since_sweep = 0
            self._pending_sweep = list(range(self.config.num_arms))
            return self._pending_sweep.pop(0)
        return self._best_buffered_arm()

    def _best_buffered_arm(self) -> int:
        best = 0
        best_score = float("-inf")
        for arm in range(self.config.num_arms):
            buffer = self._buffers[arm]
            if buffer:
                score = sum(buffer) / len(buffer)
            else:
                score = self.arms[arm].reward
            if score > best_score:
                best = arm
                best_score = score
        return best

    def _upd_sels(self, arm: int) -> None:
        self.arms[arm].selections += 1.0
        self.n_total += 1.0

    def _upd_rew(self, arm: int, r_step: float) -> None:
        self._buffers[arm].append(r_step)
        entry = self.arms[arm]
        entry.reward += (r_step - entry.reward) / entry.selections


class FixedArm(MABAlgorithm):
    """Always play one arm — the building block of the BestStatic oracle."""

    name = "fixed"

    def __init__(self, config: BanditConfig, arm: int) -> None:
        super().__init__(config)
        if not 0 <= arm < config.num_arms:
            raise ValueError(f"arm {arm} out of range [0, {config.num_arms})")
        self.fixed_arm = arm
        # No exploration at all: skip the initial round-robin phase.
        self._rr_queue = []
        self._in_initial_phase = False

    def _next_arm(self) -> int:
        return self.fixed_arm

    def _upd_sels(self, arm: int) -> None:
        self.arms[arm].selections += 1.0
        self.n_total += 1.0

    def _upd_rew(self, arm: int, r_step: float) -> None:
        entry = self.arms[arm]
        entry.reward += (r_step - entry.reward) / entry.selections


#: Alias matching the paper's "Best Static" terminology. The oracle itself is
#: a sweep over :class:`FixedArm` runs (see ``repro.experiments``).
BestStatic = FixedArm
