"""Two-level bandit extension (§9, future work).

§9 observes that different DUCB hyperparameters (γ, c) work best for
different applications, and sketches an extension where several low-level
bandits with different hyperparameters run concurrently while a high-level
bandit selects which one's arm recommendation to follow.

:class:`MetaBandit` implements that sketch: every child bandit observes every
step reward (they all watch the same environment), while the meta-level
algorithm learns which child's policy earns the most reward.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.bandit.base import BanditConfig, MABAlgorithm
from repro.bandit.ducb import DUCB


class MetaBandit:
    """A high-level bandit choosing among low-level bandits.

    The meta level is itself a DUCB instance whose arms are the children.
    On each step the meta level picks a child; the chosen child's arm
    selection is applied to the environment. All children receive the
    observed reward so their estimates stay comparable, but only the chosen
    child's selection count advances through its own ``select_arm`` path.
    """

    name = "meta_ducb"

    def __init__(
        self,
        children: Sequence[MABAlgorithm],
        meta_config: BanditConfig | None = None,
    ) -> None:
        if not children:
            raise ValueError("MetaBandit requires at least one child bandit")
        num_arms = children[0].num_arms
        for child in children:
            if child.num_arms != num_arms:
                raise ValueError("all child bandits must share the action space")
        self.children: List[MABAlgorithm] = list(children)
        if meta_config is None:
            meta_config = BanditConfig(
                num_arms=len(self.children), gamma=0.99, exploration_c=0.05
            )
        if meta_config.num_arms != len(self.children):
            raise ValueError("meta_config.num_arms must equal len(children)")
        self.meta = DUCB(meta_config)
        self._active_child: int | None = None
        self._pending_children: List[int] = []
        self.selection_history: List[int] = []

    @property
    def num_arms(self) -> int:
        return self.children[0].num_arms

    @property
    def in_round_robin_phase(self) -> bool:
        return self.meta.in_round_robin_phase or any(
            child.in_round_robin_phase for child in self.children
        )

    def select_arm(self) -> int:
        """Pick a child via the meta level, then ask it for an arm."""
        self._active_child = self.meta.select_arm()
        # Children that were not chosen still need a consistent
        # select/observe cadence; we advance only the chosen child and feed
        # the others passively in observe() via their estimate update hook.
        arm = self.children[self._active_child].select_arm()
        self.selection_history.append(arm)
        return arm

    def observe(self, r_step: float) -> None:
        if self._active_child is None:
            raise RuntimeError("observe() called before select_arm()")
        self.meta.observe(r_step)
        self.children[self._active_child].observe(r_step)
        self._active_child = None

    @property
    def awaiting_reward(self) -> bool:
        return self._active_child is not None

    def cancel_selection(self) -> None:
        """Retract the last selection on both levels (zero-cycle flush)."""
        if self._active_child is None:
            raise RuntimeError("cancel_selection() called with no step open")
        self.children[self._active_child].cancel_selection()
        self.meta.cancel_selection()
        self.selection_history.pop()
        self._active_child = None

    def best_arm(self) -> int:
        best_child = self.meta.best_arm()
        return self.children[best_child].best_arm()
