"""ε-Greedy bandit (Table 3, column a).

``nextArm`` exploits the best-known arm with probability ``1 - ε`` and picks
a uniformly random arm otherwise. Exploration is randomized and
non-decaying — the two shortcomings §4.2 motivates UCB with.
"""

from __future__ import annotations

from repro.bandit.base import BanditConfig, MABAlgorithm


class EpsilonGreedy(MABAlgorithm):
    """ε-Greedy action selection over a flat action space."""

    name = "epsilon_greedy"

    def __init__(self, config: BanditConfig) -> None:
        super().__init__(config)

    def _next_arm(self) -> int:
        if self._rng.random() < self.config.epsilon:
            return self._rng.randrange(self.config.num_arms)
        return self._argmax([entry.reward for entry in self.arms])

    def _upd_sels(self, arm: int) -> None:
        self.arms[arm].selections += 1.0
        self.n_total += 1.0

    def _upd_rew(self, arm: int, r_step: float) -> None:
        entry = self.arms[arm]
        entry.reward += (r_step - entry.reward) / entry.selections
