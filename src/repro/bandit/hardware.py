"""Micro-Armed Bandit hardware model (§5.1, §5.4).

:class:`MicroArmedBandit` wraps a :class:`~repro.bandit.base.MABAlgorithm`
with the structures of Figure 6 — the nTable and rTable, the counter-driven
IPC reward path, and the arm-selection latency — plus the storage accounting
used in §5.4/§6.5.

The paper's latency analysis distinguishes a *naive* design that computes all
arm potentials on the critical path (~500 cycles for 11 arms) from an
*advanced* design that precomputes everything except the in-flight arm
(~50 cycles); the evaluation conservatively charges 500 cycles. During those
cycles the controlled unit keeps running with the previously selected arm,
so in simulation the latency only delays when the new arm takes effect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bandit.base import MABAlgorithm
from repro.bandit.rewards import IPCReward, PerformanceCounters
from repro.constants import SELECTION_LATENCY_CYCLES

#: Storage per arm: one single-precision float reward (rTable) plus one
#: unsigned-int selection count (nTable) — 8 bytes total (§5.4).
BYTES_PER_ARM = 8

#: Conservative latencies from §5.4 assuming a single non-pipelined
#: arithmetic unit with 20-cycle divide and square root.
SQRT_LATENCY_CYCLES = 20
DIV_LATENCY_CYCLES = 20
MUL_LATENCY_CYCLES = 4
ADD_LATENCY_CYCLES = 2
TABLE_READ_LATENCY_CYCLES = 1


@dataclass(frozen=True)
class BanditHardwareModel:
    """Analytic latency/storage model of the agent's microarchitecture."""

    num_arms: int

    def storage_bytes(self) -> int:
        """Total nTable + rTable storage."""
        return self.num_arms * BYTES_PER_ARM

    def per_arm_potential_latency(self) -> int:
        """Cycles to compute one arm potential (ln(n_total) amortized)."""
        return (
            2 * TABLE_READ_LATENCY_CYCLES  # nTable + rTable reads
            + DIV_LATENCY_CYCLES  # ln(n_total) / n_i
            + SQRT_LATENCY_CYCLES
            + MUL_LATENCY_CYCLES  # c * sqrt(...)
            + ADD_LATENCY_CYCLES  # r_i + bonus
        )

    def naive_selection_latency(self) -> int:
        """Sequentially compute every arm potential on the critical path."""
        return self.num_arms * self.per_arm_potential_latency()

    def advanced_selection_latency(self) -> int:
        """Only the in-flight arm's potential is on the critical path.

        The potentials of all other arms (and the best among them) are
        computed in the background while the step is still running.
        """
        compare_and_pick = ADD_LATENCY_CYCLES
        finish_reward_update = DIV_LATENCY_CYCLES + ADD_LATENCY_CYCLES
        return (
            finish_reward_update
            + self.per_arm_potential_latency()
            + compare_and_pick
        )


class MicroArmedBandit:
    """The Bandit agent: algorithm + counters + latency, as driven by a core.

    A simulator drives the agent with::

        arm = bandit.begin_step()              # arm to apply this step
        ...simulate one bandit step...
        bandit.end_step(counters, now_cycles)  # counters at the boundary

    ``active_arm(cycle)`` accounts for the selection latency: until
    ``selection_ready_cycle`` the previously selected arm remains in effect
    (§6.1: "the prefetcher and the SMT scheduler do not stall but continue
    operating with the previously selected arm").
    """

    def __init__(
        self,
        algorithm: MABAlgorithm,
        selection_latency_cycles: int = SELECTION_LATENCY_CYCLES,
    ) -> None:
        self.algorithm = algorithm
        self.selection_latency_cycles = selection_latency_cycles
        self.hardware = BanditHardwareModel(algorithm.num_arms)
        self._reward = IPCReward()
        self._current_arm: int | None = None
        self._previous_arm: int | None = None
        self.selection_ready_cycle = 0.0
        self.steps_completed = 0

    # ------------------------------------------------------------------ API

    @property
    def num_arms(self) -> int:
        return self.algorithm.num_arms

    @property
    def in_round_robin_phase(self) -> bool:
        return self.algorithm.in_round_robin_phase

    def storage_bytes(self) -> int:
        return self.hardware.storage_bytes()

    def reset_counters(self, counters: PerformanceCounters) -> None:
        """Snapshot counters at episode start (before the first step)."""
        self._reward.reset(counters)

    def begin_step(self, now_cycle: float = 0.0) -> int:
        """Select the arm to apply for the upcoming bandit step."""
        self._previous_arm = self._current_arm
        self._current_arm = self.algorithm.select_arm()
        self.selection_ready_cycle = now_cycle + self.selection_latency_cycles
        return self._current_arm

    def active_arm(self, cycle: float) -> int:
        """Arm actually in effect at ``cycle``, modeling selection latency."""
        if self._current_arm is None:
            raise RuntimeError("begin_step() has not been called")
        if cycle < self.selection_ready_cycle and self._previous_arm is not None:
            return self._previous_arm
        return self._current_arm

    def end_step(self, counters: PerformanceCounters) -> float:
        """Close the step: compute the IPC reward and train the algorithm."""
        reward = self._reward.step_reward(counters)
        self.algorithm.observe(reward)
        self.steps_completed += 1
        return reward

    def flush_step(self, counters: PerformanceCounters) -> float | None:
        """Close the trailing partial step at episode end.

        Simulation loops call :meth:`begin_step` at every boundary, so the
        final selection is still awaiting its reward when the trace runs
        out. Flushing trains the algorithm on the partial step; a step that
        covered zero cycles has no defined IPC, so the pending selection is
        retracted instead (when the algorithm supports it). Returns the
        observed reward, or ``None`` if there was nothing to flush.
        """
        if self._current_arm is None:
            return None
        if not getattr(self.algorithm, "awaiting_reward", True):
            return None
        if self._reward.elapsed_cycles(counters) > 0:
            return self.end_step(counters)
        cancel = getattr(self.algorithm, "cancel_selection", None)
        if cancel is not None:
            cancel()
        return None
