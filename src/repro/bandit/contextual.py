"""Contextual bandit agent (§2.2's middle problem formulation).

The paper positions Contextual Bandits between MDP-RL and plain MABs:
state transitions happen but are not caused by the agent; the agent keeps
one value estimate per (context, arm) pair. This module provides a
:class:`ContextualBandit` that runs one :class:`~repro.bandit.ducb.DUCB`
(or any MAB) per context, plus the §9 extension built on it:
:class:`ClassifierBandit`, which classifies memory-access patterns online
(stream / stride / irregular, in the spirit of [6, 48]) and keeps a
separate Micro-Armed Bandit per pattern class.

Storage cost scales with the number of contexts — exactly the complexity
axis Figure 1 illustrates — so the context spaces here are tiny (a handful
of classes).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, List, Optional

from repro.bandit.base import BanditConfig, MABAlgorithm
from repro.bandit.ducb import DUCB
from repro.constants import PREFETCH_EXPLORATION_C
from repro.util.rng import derive_seed

#: Context horizons are short (per-phase learners), so the default factory
#: uses a shrunk DUCB horizon rather than Table 6's γ.
_CONTEXT_GAMMA = 0.98


def _default_context_factory(
    num_arms: int, base_seed: int = 0
) -> Callable[[Hashable], MABAlgorithm]:
    """Per-context DUCB factory with seeds derived from the context label.

    Seeds go through :func:`repro.util.rng.derive_seed` (a keyed BLAKE2
    digest) — never through builtin ``hash()``, whose salt changes per
    process and would silently decorrelate replays.
    """

    def build(context: Hashable) -> MABAlgorithm:
        return DUCB(
            BanditConfig(
                num_arms=num_arms,
                gamma=_CONTEXT_GAMMA,
                exploration_c=PREFETCH_EXPLORATION_C,
                seed=derive_seed(base_seed, "contextual", context),
            )
        )

    return build


class ContextualBandit:
    """One independent MAB per observed context.

    ``algorithm_factory(context)`` builds the per-context learner lazily;
    ``max_contexts`` bounds storage with LRU eviction of stale contexts.
    """

    name = "contextual"

    def __init__(
        self,
        num_arms: int,
        algorithm_factory: Optional[Callable[[Hashable], MABAlgorithm]] = None,
        max_contexts: int = 64,
    ) -> None:
        if num_arms < 1:
            raise ValueError(f"num_arms must be >= 1, got {num_arms}")
        if max_contexts < 1:
            raise ValueError(f"max_contexts must be >= 1, got {max_contexts}")
        self.num_arms = num_arms
        if algorithm_factory is None:
            algorithm_factory = _default_context_factory(num_arms)
        self._factory = algorithm_factory
        self.max_contexts = max_contexts
        self._learners: "OrderedDict[Hashable, MABAlgorithm]" = OrderedDict()
        self._active_context: Optional[Hashable] = None

    def _learner(self, context: Hashable) -> MABAlgorithm:
        learner = self._learners.get(context)
        if learner is None:
            if len(self._learners) >= self.max_contexts:
                self._learners.popitem(last=False)
            learner = self._factory(context)
            if learner.num_arms != self.num_arms:
                raise ValueError("factory produced mismatched arm count")
            self._learners[context] = learner
        else:
            self._learners.move_to_end(context)
        return learner

    def select_arm(self, context: Hashable) -> int:
        """Pick an arm for the given context."""
        if self._active_context is not None:
            raise RuntimeError("observe() must be called before reselecting")
        self._active_context = context
        return self._learner(context).select_arm()

    def observe(self, r_step: float) -> None:
        """Report the reward for the most recent selection."""
        if self._active_context is None:
            raise RuntimeError("observe() called before select_arm()")
        self._learners[self._active_context].observe(r_step)
        self._active_context = None

    @property
    def num_contexts(self) -> int:
        return len(self._learners)

    def storage_bytes(self) -> int:
        """8 B per arm per live context (§5.4 accounting per learner)."""
        return self.num_contexts * self.num_arms * 8


class AccessPatternClassifier:
    """Online stream/stride/irregular classification of the demand stream.

    A tiny per-PC table tracks the last block and last delta; the aggregate
    class over a window of accesses labels the current phase:

    - ``stream``   — deltas mostly ±1 block,
    - ``stride``   — deltas mostly a repeated non-unit constant,
    - ``irregular``— neither.
    """

    CLASSES = ("stream", "stride", "irregular")

    def __init__(self, window: int = 256, table_capacity: int = 64) -> None:
        self.window = window
        self.table_capacity = table_capacity
        self._last: "OrderedDict[int, tuple]" = OrderedDict()
        self._votes = {"stream": 0, "stride": 0, "irregular": 0}
        self._count = 0
        self.current_class = "irregular"

    def observe(self, pc: int, block: int) -> str:
        """Classify one access; returns the class of the current window."""
        entry = self._last.get(pc)
        if entry is None:
            if len(self._last) >= self.table_capacity:
                self._last.popitem(last=False)
            self._last[pc] = (block, 0)
            label = "irregular"
        else:
            last_block, last_delta = entry
            delta = block - last_block
            if abs(delta) == 1:
                label = "stream"
            elif delta != 0 and delta == last_delta:
                label = "stride"
            else:
                label = "irregular"
            self._last[pc] = (block, delta)
            self._last.move_to_end(pc)
        self._votes[label] += 1
        self._count += 1
        if self._count >= self.window:
            self.current_class = max(self._votes, key=self._votes.__getitem__)
            self._votes = {"stream": 0, "stride": 0, "irregular": 0}
            self._count = 0
        return self.current_class


class ClassifierBandit:
    """§9 extension: a separate Bandit per classified access-pattern type.

    The classifier labels the current phase from the demand stream; arm
    selection and reward attribution go to the label's dedicated learner.
    """

    name = "classifier_bandit"

    def __init__(
        self,
        num_arms: int,
        classifier: Optional[AccessPatternClassifier] = None,
        seed: int = 0,
    ) -> None:
        self.classifier = classifier or AccessPatternClassifier()
        self.contextual = ContextualBandit(
            num_arms,
            algorithm_factory=_default_context_factory(num_arms, seed),
            max_contexts=len(AccessPatternClassifier.CLASSES),
        )
        self.num_arms = num_arms
        self.selection_history: List[int] = []

    def observe_access(self, pc: int, block: int) -> str:
        """Feed one demand access into the classifier."""
        return self.classifier.observe(pc, block)

    def select_arm(self) -> int:
        arm = self.contextual.select_arm(self.classifier.current_class)
        self.selection_history.append(arm)
        return arm

    def observe(self, r_step: float) -> None:
        self.contextual.observe(r_step)

    @property
    def in_round_robin_phase(self) -> bool:
        return False  # per-class learners manage their own RR phases

    def storage_bytes(self) -> int:
        return self.contextual.storage_bytes()
