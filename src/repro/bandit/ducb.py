"""Discounted Upper Confidence Bound bandit (Table 3, column c).

DUCB shares ``nextArm`` and ``updRew`` with UCB but discounts *all* selection
counts by ``γ < 1`` in ``updSels`` before incrementing the chosen arm::

    for all i:  n_i ← γ * n_i
    n_arm ← n_arm + 1

γ acts as a forgetting factor: the counts of rarely selected arms decay, so
their exploration bonus grows and they are eventually retried — which is what
lets DUCB track the phase changes of non-stationary microarchitectural
environments (§4.2c, Figure 7's mcf example).
"""

from __future__ import annotations

from repro.bandit.ucb import UCB


class DUCB(UCB):
    """Discounted UCB — the algorithm Micro-Armed Bandit implements (§5)."""

    name = "ducb"

    def _upd_sels(self, arm: int) -> None:
        gamma = self.config.gamma
        total = 0.0
        for entry in self.arms:
            entry.selections *= gamma
            total += entry.selections
        self.arms[arm].selections += 1.0
        self.n_total = total + 1.0
