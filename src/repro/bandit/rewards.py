"""Reward computation from hardware performance counters (Figure 6d).

The Micro-Armed Bandit uses the core's average IPC over a bandit step as its
reward. In hardware this is computed from two free-running counters — the
committed-instruction count and the cycle count — by differencing against
their values at the previous step boundary and dividing.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PerformanceCounters:
    """Free-running counters sampled at bandit-step boundaries."""

    committed_instructions: int = 0
    cycles: int = 0


class IPCReward:
    """Compute per-step IPC from monotonically increasing counters.

    Mirrors the arithmetic-unit data path of Figure 6(d): subtract the
    snapshot taken at the previous step boundary and divide by the step's
    cycle count.
    """

    def __init__(self) -> None:
        self._last_instructions = 0
        self._last_cycles = 0

    def reset(self, counters: PerformanceCounters) -> None:
        """Snapshot the counters at the start of an episode."""
        self._last_instructions = counters.committed_instructions
        self._last_cycles = counters.cycles

    def elapsed_cycles(self, counters: PerformanceCounters) -> int:
        """Cycles accumulated since the previous boundary (no snapshot)."""
        return counters.cycles - self._last_cycles

    def step_reward(self, counters: PerformanceCounters) -> float:
        """IPC since the previous boundary; advances the snapshot."""
        instructions = counters.committed_instructions - self._last_instructions
        cycles = counters.cycles - self._last_cycles
        if instructions < 0 or cycles < 0:
            raise ValueError("performance counters must be monotonic")
        self._last_instructions = counters.committed_instructions
        self._last_cycles = counters.cycles
        if cycles == 0:
            return 0.0
        return instructions / cycles
