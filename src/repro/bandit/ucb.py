"""Upper Confidence Bound bandit (Table 3, column b).

``nextArm`` picks the arm with the highest *potential*::

    potential_i = r_i + c * sqrt(ln(n_total) / n_i)

The square-root term is the exploration bonus: rarely tried arms get a large
bonus, and because ``ln(n)/n → 0`` exploration decays as evidence accumulates
— fixing both randomized and non-decaying exploration of ε-Greedy (§4.2).
"""

from __future__ import annotations

import math
from typing import List

from repro.bandit.base import MABAlgorithm

# An arm whose (possibly discounted) selection count has decayed to nothing
# carries an effectively infinite exploration bonus.
_MIN_SELECTIONS = 1e-9


class UCB(MABAlgorithm):
    """UCB1-style bandit with the paper's exploration constant ``c``."""

    name = "ucb"

    def potentials(self) -> List[float]:
        """Current arm potentials — the quantity Figure 6(a) computes."""
        log_total = math.log(self.n_total) if self.n_total > 1.0 else 0.0
        c = self.config.exploration_c
        result = []
        for entry in self.arms:
            if entry.selections <= _MIN_SELECTIONS:
                result.append(math.inf)
            else:
                bonus = c * math.sqrt(max(log_total, 0.0) / entry.selections)
                result.append(entry.reward + bonus)
        return result

    def _next_arm(self) -> int:
        return self._argmax(self.potentials())

    def _upd_sels(self, arm: int) -> None:
        self.arms[arm].selections += 1.0
        self.n_total += 1.0

    def _upd_rew(self, arm: int, r_step: float) -> None:
        entry = self.arms[arm]
        entry.reward += (r_step - entry.reward) / entry.selections
