"""Multi-Armed Bandit algorithms and the Micro-Armed Bandit agent (§4, §5).

The package follows the paper's structure:

- :mod:`repro.bandit.base` — the general MAB template of Algorithm 1 (initial
  round-robin phase + main loop) with the two microarchitecture-specific
  modifications of §4.3: ``r_avg`` reward normalization and the probabilistic
  round-robin restart for multi-core interference.
- :mod:`repro.bandit.epsilon_greedy`, :mod:`repro.bandit.ucb`,
  :mod:`repro.bandit.ducb` — the three algorithm variants of Table 3.
- :mod:`repro.bandit.heuristics` — the non-MAB exploration baselines of §7.1
  (*Single*, *Periodic*) and the *BestStatic* oracle policy.
- :mod:`repro.bandit.hardware` — the Micro-Armed Bandit microarchitecture
  model of §5: nTable/rTable storage, arm-selection latency, and the
  counter-based IPC reward path of Figure 6.
- :mod:`repro.bandit.rewards` — reward computation from hardware counters.
- :mod:`repro.bandit.meta` — the two-level (hyperparameter-selecting) bandit
  sketched as future work in §9.
"""

from repro.bandit.base import ArmEstimate, BanditConfig, MABAlgorithm
from repro.bandit.contextual import (
    AccessPatternClassifier,
    ClassifierBandit,
    ContextualBandit,
)
from repro.bandit.ducb import DUCB
from repro.bandit.epsilon_greedy import EpsilonGreedy
from repro.bandit.hardware import BanditHardwareModel, MicroArmedBandit
from repro.bandit.heuristics import BestStatic, FixedArm, Periodic, Single
from repro.bandit.meta import MetaBandit
from repro.bandit.rewards import IPCReward, PerformanceCounters
from repro.bandit.ucb import UCB

__all__ = [
    "AccessPatternClassifier",
    "ArmEstimate",
    "BanditConfig",
    "ClassifierBandit",
    "ContextualBandit",
    "BanditHardwareModel",
    "BestStatic",
    "DUCB",
    "EpsilonGreedy",
    "FixedArm",
    "IPCReward",
    "MABAlgorithm",
    "MetaBandit",
    "MicroArmedBandit",
    "Periodic",
    "PerformanceCounters",
    "Single",
    "UCB",
]
