"""General template for MAB algorithms (Algorithm 1) and shared state.

Every algorithm proceeds in two phases:

1. **Initial round-robin phase** — each of the ``M`` arms is tried once; its
   reward estimate ``r_i`` is set to the observed step reward and its
   selection count ``n_i`` to 1.
2. **Main loop** — on every bandit step the algorithm picks an arm via
   ``nextArm()``, updates selection counts via ``updSels(arm)``, and folds the
   observed step reward in via ``updRew(r_step)`` (Table 3).

Two microarchitecture-specific modifications from §4.3 are implemented here
because they apply uniformly to all variants:

- **Reward normalization.** After the round-robin phase the mean initial
  reward ``r_avg`` is computed; the stored ``r_i`` and every subsequent
  ``r_step`` are divided by it. This keeps the exploration constant ``c``
  meaningful across benchmarks whose absolute IPC differs by orders of
  magnitude.
- **Round-robin restart.** With probability ``rr_restart_prob`` per step the
  agent re-enters a round-robin sweep over all arms *without* resetting the
  collected ``r_i``/``n_i``, giving each core a chance to re-evaluate arms
  once co-running cores have settled (multi-core interference, §4.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.constants import (
    EPSILON_GREEDY_EPSILON,
    PREFETCH_EXPLORATION_C,
    PREFETCH_GAMMA,
)


@dataclass(frozen=True)
class BanditConfig:
    """Hyperparameters shared by the MAB algorithm variants.

    Only the fields an algorithm uses are read by it: ``epsilon`` by
    ε-Greedy, ``exploration_c`` by UCB/DUCB, ``gamma`` by DUCB, and
    ``rr_restart_prob`` by all (Table 6 sets it only for 4-core runs).
    Defaults are the Table 6 prefetching column (see :mod:`repro.constants`).
    """

    num_arms: int
    epsilon: float = EPSILON_GREEDY_EPSILON
    exploration_c: float = PREFETCH_EXPLORATION_C
    gamma: float = PREFETCH_GAMMA
    rr_restart_prob: float = 0.0
    normalize_rewards: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_arms < 1:
            raise ValueError(f"num_arms must be >= 1, got {self.num_arms}")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {self.epsilon}")
        if self.exploration_c < 0.0:
            raise ValueError(f"exploration_c must be >= 0, got {self.exploration_c}")
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {self.gamma}")
        if not 0.0 <= self.rr_restart_prob <= 1.0:
            raise ValueError(
                f"rr_restart_prob must be in [0, 1], got {self.rr_restart_prob}"
            )


@dataclass
class ArmEstimate:
    """Per-arm bookkeeping: one nTable entry and one rTable entry (§5.1)."""

    reward: float = 0.0
    selections: float = 0.0


class MABAlgorithm:
    """Algorithm 1: initial round-robin phase followed by the main loop.

    Subclasses implement the three Table 3 functions:

    - :meth:`_next_arm` — pick the arm for the next step,
    - :meth:`_upd_sels` — update selection counts for the chosen arm,
    - :meth:`_upd_rew` — fold the (normalized) step reward into ``r_arm``.

    The driving simulator interacts through two calls per bandit step::

        arm = agent.select_arm()   # start of step: arm to apply
        ...run the step...
        agent.observe(r_step)      # end of step: reward observed
    """

    name = "mab"

    def __init__(self, config: BanditConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self.arms: List[ArmEstimate] = [
            ArmEstimate() for _ in range(config.num_arms)
        ]
        self.n_total = 0.0
        self._reward_scale: Optional[float] = None
        self._initial_rewards: List[float] = []
        # Pending sweep of arms to try round-robin. Starts as the full
        # initial phase; §4.3 restarts push a fresh sweep here later.
        self._rr_queue: List[int] = list(range(config.num_arms))
        self._in_initial_phase = True
        self._current_arm: Optional[int] = None
        self._current_from_sweep = False
        self._awaiting_reward = False
        self.selection_history: List[int] = []

    # ------------------------------------------------------------------ API

    @property
    def num_arms(self) -> int:
        return self.config.num_arms

    @property
    def in_round_robin_phase(self) -> bool:
        """True while the *initial* round-robin phase is still running.

        The SMT use case lengthens the bandit step during this phase
        (``bandit step-RR``, §5.3), so simulators need to observe it.
        """
        return self._in_initial_phase

    def select_arm(self) -> int:
        """Select the arm for the next bandit step.

        Selection-count updates (``updSels``) are deferred to
        :meth:`observe` so that a step which never actually runs — e.g. the
        trailing partial step at trace end — can be retracted with
        :meth:`cancel_selection` without corrupting the statistics.
        """
        if self._awaiting_reward:
            raise RuntimeError("select_arm() called before observe()")
        if not self._rr_queue and not self._in_initial_phase:
            self._maybe_restart_round_robin()
        if self._rr_queue:
            arm = self._rr_queue.pop(0)
            self._current_from_sweep = True
        else:
            arm = self._next_arm()
            self._current_from_sweep = False
        self._current_arm = arm
        self._awaiting_reward = True
        self.selection_history.append(arm)
        return arm

    def observe(self, r_step: float) -> None:
        """Report the reward collected at the end of the bandit step."""
        if not self._awaiting_reward or self._current_arm is None:
            raise RuntimeError("observe() called before select_arm()")
        arm = self._current_arm
        self._awaiting_reward = False
        if self._in_initial_phase:
            self._initial_rewards.append(r_step)
            entry = self.arms[arm]
            entry.reward = r_step
            entry.selections = 1.0
            self.n_total += 1.0
            if not self._rr_queue:
                self._finish_initial_phase()
            return
        # §4.3 restart sweeps keep statistics: selections count there too.
        self._upd_sels(arm)
        self._upd_rew(arm, self._normalize(r_step))

    @property
    def awaiting_reward(self) -> bool:
        """True between :meth:`select_arm` and the matching :meth:`observe`."""
        return self._awaiting_reward

    def cancel_selection(self) -> None:
        """Retract a selection whose step never ran (zero-cycle flush).

        Restores the algorithm to the state before the last
        :meth:`select_arm`: the arm is removed from ``selection_history``
        and, for round-robin selections, pushed back onto the sweep queue.
        No reward or selection-count state was touched yet, so the agent
        accepts a fresh :meth:`select_arm` afterwards.
        """
        if not self._awaiting_reward or self._current_arm is None:
            raise RuntimeError("cancel_selection() called with no step open")
        self._awaiting_reward = False
        arm = self.selection_history.pop()
        if self._current_from_sweep:
            self._rr_queue.insert(0, arm)
        self._current_arm = None

    def best_arm(self) -> int:
        """Arm with the highest current reward estimate (ties: lowest index)."""
        best = 0
        best_reward = self.arms[0].reward
        for index, entry in enumerate(self.arms):
            if entry.reward > best_reward:
                best = index
                best_reward = entry.reward
        return best

    def reward_estimates(self) -> List[float]:
        return [entry.reward for entry in self.arms]

    def selection_counts(self) -> List[float]:
        return [entry.selections for entry in self.arms]

    # ----------------------------------------------------- template internals

    def _finish_initial_phase(self) -> None:
        self._in_initial_phase = False
        if self.config.normalize_rewards:
            r_avg = sum(self._initial_rewards) / len(self._initial_rewards)
            # A degenerate all-zero initial phase (e.g. a stalled core) would
            # make the scale meaningless; fall back to no normalization.
            self._reward_scale = r_avg if r_avg > 0.0 else None
            if self._reward_scale is not None:
                for entry in self.arms:
                    entry.reward /= self._reward_scale

    def _normalize(self, r_step: float) -> float:
        if self._reward_scale is None:
            return r_step
        return r_step / self._reward_scale

    def _maybe_restart_round_robin(self) -> None:
        prob = self.config.rr_restart_prob
        if prob > 0.0 and self._rng.random() < prob:
            self._rr_queue = list(range(self.config.num_arms))

    # ------------------------------------------------ Table 3 hook functions

    def _next_arm(self) -> int:
        raise NotImplementedError

    def _upd_sels(self, arm: int) -> None:
        raise NotImplementedError

    def _upd_rew(self, arm: int, r_step: float) -> None:
        raise NotImplementedError

    # -------------------------------------------------------------- helpers

    def _argmax(self, scores: Sequence[float]) -> int:
        best = 0
        best_score = scores[0]
        for index in range(1, len(scores)):
            if scores[index] > best_score:
                best = index
                best_score = scores[index]
        return best
