"""Set-associative cache with LRU replacement and prefetch metadata.

Lines carry a ``prefetched``/``used`` pair so the hierarchy can classify
prefetches as timely, late, or wrong (Figure 9). Timing lives in the
hierarchy; the cache itself is purely a contents model.

Recency is kept *intrusively* in each set's dict ordering: the LRU line is
always the set's first key and every recency touch re-appends the line at
the MRU end, so eviction is O(1) instead of an O(ways) ``min()`` scan per
insert. ``last_use`` stamps are still maintained — they are the recency
interface :mod:`repro.uncore.replacement` policies consume — and the dict
order is exactly ascending ``last_use``, so victim selection is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


@dataclass
class CacheLine:
    """Metadata for one resident block."""

    __slots__ = ("block", "last_use", "prefetched", "used", "dirty")

    block: int
    last_use: int
    prefetched: bool
    used: bool
    dirty: bool


class Cache:
    """A set-associative cache indexed by block number.

    ``lookup`` probes and updates recency; ``insert`` allocates (evicting the
    LRU line if the set is full) and returns the victim so callers can track
    wrong prefetches and writebacks.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        block_bytes: int = 64,
    ) -> None:
        if size_bytes <= 0 or ways <= 0 or block_bytes <= 0:
            raise ValueError("cache geometry values must be positive")
        num_sets, remainder = divmod(size_bytes, ways * block_bytes)
        if remainder or num_sets == 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible into {ways}-way sets "
                f"of {block_bytes}B blocks"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.block_bytes = block_bytes
        self.num_sets = num_sets
        self._sets: List[Dict[int, CacheLine]] = [{} for _ in range(num_sets)]
        self._stamp = 0
        self._resident = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ API

    def _set_for(self, block: int) -> Dict[int, CacheLine]:
        return self._sets[block % self.num_sets]

    def lookup(self, block: int, *, update: bool = True) -> Optional[CacheLine]:  # repro: hot
        """Probe for ``block``; on a hit, refresh recency and mark it used."""
        cache_set = self._sets[block % self.num_sets]
        line = cache_set.get(block)
        if line is None:
            self.misses += 1
            return None
        self.hits += 1
        if update:
            stamp = self._stamp + 1
            self._stamp = stamp
            line.last_use = stamp
            line.used = True
            # Move to the MRU end of the set's intrusive recency order.
            del cache_set[block]
            cache_set[block] = line
        return line

    def contains(self, block: int) -> bool:
        """Presence check without touching recency or hit/miss counters."""
        return block in self._sets[block % self.num_sets]

    def insert(
        self,
        block: int,
        *,
        prefetched: bool = False,
        dirty: bool = False,
    ) -> Optional[CacheLine]:
        """Allocate ``block``; returns the evicted line, if any.

        Re-inserting a resident block refreshes it in place (and returns
        ``None``) rather than duplicating it.
        """
        cache_set = self._sets[block % self.num_sets]
        stamp = self._stamp + 1
        self._stamp = stamp
        existing = cache_set.get(block)
        if existing is not None:
            existing.last_use = stamp
            existing.dirty = existing.dirty or dirty
            del cache_set[block]
            cache_set[block] = existing
            return None
        victim: Optional[CacheLine] = None
        if len(cache_set) >= self.ways:
            # The set's first key is its LRU line (intrusive recency order).
            victim_block = next(iter(cache_set))
            victim = cache_set.pop(victim_block)
            self._resident -= 1
        cache_set[block] = CacheLine(
            block=block,
            last_use=stamp,
            prefetched=prefetched,
            used=False,
            dirty=dirty,
        )
        self._resident += 1
        return victim

    def invalidate(self, block: int) -> Optional[CacheLine]:
        """Remove ``block`` if resident; returns the removed line."""
        line = self._sets[block % self.num_sets].pop(block, None)
        if line is not None:
            self._resident -= 1
        return line

    def occupancy(self) -> int:
        """Number of resident lines (O(1): maintained by insert/invalidate)."""
        return self._resident

    def resident_lines(self) -> Iterator[CacheLine]:
        """Iterate over all resident lines (end-of-run accounting)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
