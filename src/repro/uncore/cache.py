"""Set-associative cache with LRU replacement and prefetch metadata.

Lines carry a ``prefetched``/``used`` pair so the hierarchy can classify
prefetches as timely, late, or wrong (Figure 9). Timing lives in the
hierarchy; the cache itself is purely a contents model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class CacheLine:
    """Metadata for one resident block."""

    __slots__ = ("block", "last_use", "prefetched", "used", "dirty")

    block: int
    last_use: int
    prefetched: bool
    used: bool
    dirty: bool


class Cache:
    """A set-associative cache indexed by block number.

    ``lookup`` probes and updates recency; ``insert`` allocates (evicting the
    LRU line if the set is full) and returns the victim so callers can track
    wrong prefetches and writebacks.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        block_bytes: int = 64,
    ) -> None:
        if size_bytes <= 0 or ways <= 0 or block_bytes <= 0:
            raise ValueError("cache geometry values must be positive")
        num_sets, remainder = divmod(size_bytes, ways * block_bytes)
        if remainder or num_sets == 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible into {ways}-way sets "
                f"of {block_bytes}B blocks"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.block_bytes = block_bytes
        self.num_sets = num_sets
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(num_sets)]
        self._stamp = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ API

    def _set_for(self, block: int) -> Dict[int, CacheLine]:
        return self._sets[block % self.num_sets]

    def lookup(self, block: int, *, update: bool = True) -> Optional[CacheLine]:
        """Probe for ``block``; on a hit, refresh recency and mark it used."""
        line = self._set_for(block).get(block)
        if line is None:
            self.misses += 1
            return None
        self.hits += 1
        if update:
            self._stamp += 1
            line.last_use = self._stamp
            line.used = True
        return line

    def contains(self, block: int) -> bool:
        """Presence check without touching recency or hit/miss counters."""
        return block in self._set_for(block)

    def insert(
        self,
        block: int,
        *,
        prefetched: bool = False,
        dirty: bool = False,
    ) -> Optional[CacheLine]:
        """Allocate ``block``; returns the evicted line, if any.

        Re-inserting a resident block refreshes it in place (and returns
        ``None``) rather than duplicating it.
        """
        cache_set = self._set_for(block)
        self._stamp += 1
        existing = cache_set.get(block)
        if existing is not None:
            existing.last_use = self._stamp
            existing.dirty = existing.dirty or dirty
            return None
        victim: Optional[CacheLine] = None
        if len(cache_set) >= self.ways:
            victim_block = min(cache_set, key=lambda b: cache_set[b].last_use)
            victim = cache_set.pop(victim_block)
        cache_set[block] = CacheLine(
            block=block,
            last_use=self._stamp,
            prefetched=prefetched,
            used=False,
            dirty=dirty,
        )
        return victim

    def invalidate(self, block: int) -> Optional[CacheLine]:
        """Remove ``block`` if resident; returns the removed line."""
        return self._set_for(block).pop(block, None)

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(cache_set) for cache_set in self._sets)

    def resident_lines(self):
        """Iterate over all resident lines (end-of-run accounting)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
