"""Cache/memory substrate: set-associative caches, MSHRs, DRAM, hierarchy.

This package is the reproduction's stand-in for ChampSim's uncore: a
three-level cache hierarchy (private L1/L2, shared LLC) over a
bandwidth-limited DRAM model with configurable MTPS (Figure 10's sweep).
"""

from repro.uncore.cache import Cache, CacheLine
from repro.uncore.dram import DRAMModel, mtps_to_cycles_per_line
from repro.uncore.hierarchy import (
    CacheHierarchy,
    HierarchyConfig,
    HierarchyStats,
    PrefetchOutcome,
)
from repro.uncore.mshr import MSHR
from repro.uncore.replacement import (
    BRRIP,
    DRRIP,
    LRUReplacement,
    PolicyCache,
    RandomReplacement,
    ReplacementPolicy,
    SRRIP,
)

__all__ = [
    "BRRIP",
    "Cache",
    "CacheHierarchy",
    "CacheLine",
    "DRAMModel",
    "DRRIP",
    "HierarchyConfig",
    "HierarchyStats",
    "LRUReplacement",
    "MSHR",
    "PolicyCache",
    "PrefetchOutcome",
    "RandomReplacement",
    "ReplacementPolicy",
    "SRRIP",
    "mtps_to_cycles_per_line",
]
