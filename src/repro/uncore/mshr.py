"""Miss Status Holding Registers: outstanding-miss tracking and merging.

The MSHR bounds the number of in-flight fills and merges requests to the
same block: a demand access that finds its block already in flight (for
example because a prefetch raced ahead of it) simply inherits the existing
fill's completion time — which is exactly how *late* prefetches recover part
of the miss latency (Figure 9's classification).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple


class MSHR:
    """Tracks in-flight fills as ``block -> (ready_cycle, is_prefetch)``."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"MSHR capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._inflight: Dict[int, Tuple[float, bool]] = {}
        self._heap: List[Tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._inflight)

    @property
    def full(self) -> bool:
        return len(self._inflight) >= self.capacity

    @property
    def has_inflight(self) -> bool:
        """Cheap guard so quiescent-MSHR accesses skip the drain call."""
        return bool(self._heap)

    def lookup(self, block: int) -> Optional[Tuple[float, bool]]:
        """Return ``(ready_cycle, is_prefetch)`` if ``block`` is in flight."""
        return self._inflight.get(block)

    def allocate(self, block: int, ready_cycle: float, is_prefetch: bool) -> None:
        """Track a new in-flight fill. Caller must check :attr:`full` first."""
        if block in self._inflight:
            raise ValueError(f"block {block:#x} already in flight")
        if self.full:
            raise RuntimeError("MSHR allocation while full")
        self._inflight[block] = (ready_cycle, is_prefetch)
        heapq.heappush(self._heap, (ready_cycle, block))

    def promote_to_demand(self, block: int) -> None:
        """Mark an in-flight prefetch as demanded (a *late* prefetch)."""
        ready_cycle, _ = self._inflight[block]
        self._inflight[block] = (ready_cycle, False)

    def drain_completed(
        self, cycle: float, on_fill: Callable[[int, float, bool], None]
    ) -> None:
        """Complete every fill whose ready time has passed.

        ``on_fill(block, ready_cycle, is_prefetch)`` installs the line into
        the cache; prefetch/demand status reflects any late-prefetch
        promotion that happened while the fill was in flight.
        """
        while self._heap and self._heap[0][0] <= cycle:
            ready_cycle, block = heapq.heappop(self._heap)
            entry = self._inflight.pop(block, None)
            if entry is None:
                continue  # superseded (promoted entries keep the same key)
            on_fill(block, entry[0], entry[1])

    def flush(self, on_fill: Callable[[int, float, bool], None]) -> None:
        """Complete all remaining fills (end of simulation)."""
        self.drain_completed(float("inf"), on_fill)
