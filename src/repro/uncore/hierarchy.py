"""Three-level cache hierarchy with prefetching, in the ChampSim style.

Matches the paper's setup (§6.1): the prefetcher under test sits at the L2,
is trained on L1 misses, and fills prefetched lines into the L2 and the LLC.
An optional L1 prefetcher (Figure 12's multi-level configurations) trains on
L1 demand accesses and fills the L1.

Timing contract: callers present demand accesses in non-decreasing cycle
order (the trace-driven core guarantees this); ``load`` returns the cycle at
which the data is available. Stores are write-allocate but non-blocking (the
store buffer hides their latency from commit), which is how trace-driven
prefetching studies typically treat them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.prefetch.base import Prefetcher
from repro.uncore.cache import Cache
from repro.uncore.dram import DRAMModel
from repro.uncore.mshr import MSHR
from repro.workloads.trace import BLOCK_SHIFT


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache geometry and latencies (defaults = Table 4 / Intel Skylake)."""

    l1_size_bytes: int = 32 * 1024
    l1_ways: int = 8
    l2_size_bytes: int = 256 * 1024
    l2_ways: int = 8
    llc_size_bytes: int = 2 * 1024 * 1024
    llc_ways: int = 16
    block_bytes: int = 64
    l1_latency: float = 4.0
    l2_latency: float = 14.0
    llc_latency: float = 40.0
    dram_latency: float = 200.0
    dram_mtps: float = 2400.0
    core_frequency_ghz: float = 4.0
    mshr_entries: int = 64
    max_inflight_prefetches: int = 32


@dataclass
class PrefetchOutcome:
    """Prefetch classification counters (Figure 9)."""

    issued: int = 0
    timely: int = 0
    late: int = 0
    wrong: int = 0
    dropped: int = 0

    def useful(self) -> int:
        return self.timely + self.late


@dataclass
class HierarchyStats:
    """Demand-side counters for one hierarchy instance."""

    loads: int = 0
    stores: int = 0
    l2_demand_accesses: int = 0
    l2_demand_hits: int = 0
    llc_demand_accesses: int = 0
    llc_demand_hits: int = 0
    dram_demand_fills: int = 0
    writebacks: int = 0
    prefetch: PrefetchOutcome = field(default_factory=PrefetchOutcome)

    @property
    def l2_demand_misses(self) -> int:
        return self.l2_demand_accesses - self.l2_demand_hits

    @property
    def llc_demand_misses(self) -> int:
        return self.llc_demand_accesses - self.llc_demand_hits


class CacheHierarchy:
    """Private L1+L2 over a (possibly shared) LLC and DRAM."""

    def __init__(
        self,
        config: HierarchyConfig = HierarchyConfig(),
        l2_prefetcher: Optional[Prefetcher] = None,
        l1_prefetcher: Optional[Prefetcher] = None,
        shared_llc: Optional[Cache] = None,
        shared_dram: Optional[DRAMModel] = None,
    ) -> None:
        self.config = config
        self.l1 = Cache("L1D", config.l1_size_bytes, config.l1_ways,
                        config.block_bytes)
        self.l2 = Cache("L2", config.l2_size_bytes, config.l2_ways,
                        config.block_bytes)
        self.llc = shared_llc if shared_llc is not None else Cache(
            "LLC", config.llc_size_bytes, config.llc_ways, config.block_bytes
        )
        self.dram = shared_dram if shared_dram is not None else DRAMModel(
            latency_cycles=config.dram_latency,
            mtps=config.dram_mtps,
            core_frequency_ghz=config.core_frequency_ghz,
        )
        self.l2_prefetcher = l2_prefetcher
        self.l1_prefetcher = l1_prefetcher
        self.mshr = MSHR(config.mshr_entries)
        self.stats = HierarchyStats()
        self._inflight_prefetches = 0

    # ------------------------------------------------------------- demand API

    def load(self, pc: int, address: int, cycle: float) -> float:
        """Demand load; returns the data-ready cycle."""
        self.stats.loads += 1
        return self._demand_access(pc, address, cycle, is_write=False)

    def store(self, pc: int, address: int, cycle: float) -> float:
        """Demand store (write-allocate, non-blocking for the core)."""
        self.stats.stores += 1
        self._demand_access(pc, address, cycle, is_write=True)
        return cycle + self.config.l1_latency

    # --------------------------------------------------------------- internals

    def _demand_access(
        self, pc: int, address: int, cycle: float, *, is_write: bool
    ) -> float:
        config = self.config
        block = address >> BLOCK_SHIFT
        self.mshr.drain_completed(cycle, self._install_fill)

        line = self.l1.lookup(block)
        if self.l1_prefetcher is not None:
            self._run_l1_prefetcher(pc, block, cycle, hit=line is not None)
        if line is not None:
            if is_write:
                line.dirty = True
            return cycle + config.l1_latency

        # L1 miss -> L2 demand access; this stream trains the L2 prefetcher.
        l2_cycle = cycle + config.l1_latency
        self.stats.l2_demand_accesses += 1
        l2_line = self.l2.lookup(block)
        if l2_line is not None:
            self.stats.l2_demand_hits += 1
            if l2_line.prefetched:
                # First demand use of a prefetched, resident line: timely.
                self.stats.prefetch.timely += 1
                l2_line.prefetched = False
            ready = l2_cycle + config.l2_latency
        else:
            ready = self._l2_miss(block, l2_cycle)
        self._fill_l1(block, dirty=is_write)
        if self.l2_prefetcher is not None:
            self._run_l2_prefetcher(pc, block, cycle, hit=l2_line is not None)
        return ready

    def _l2_miss(self, block: int, l2_cycle: float) -> float:
        config = self.config
        inflight = self.mshr.lookup(block)
        if inflight is not None:
            ready_cycle, is_prefetch = inflight
            if is_prefetch:
                # Demand caught up with an in-flight prefetch: late prefetch.
                self.stats.prefetch.late += 1
                self.mshr.promote_to_demand(block)
                self._inflight_prefetches -= 1
            return max(ready_cycle, l2_cycle + config.l2_latency)

        llc_cycle = l2_cycle + config.l2_latency
        self.stats.llc_demand_accesses += 1
        llc_line = self.llc.lookup(block)
        if llc_line is not None:
            self.stats.llc_demand_hits += 1
            ready = llc_cycle + config.llc_latency
            self._fill_l2(block, prefetched=False)
            return ready

        # DRAM fill through the MSHR.
        ready = self.dram.access(llc_cycle + config.llc_latency)
        self.stats.dram_demand_fills += 1
        if not self.mshr.full:
            self.mshr.allocate(block, ready, is_prefetch=False)
        else:
            # MSHR pressure: the fill still happens, just untracked (the
            # demand has already paid its latency).
            self._install_fill(block, ready, False)
        return ready

    # ---------------------------------------------------------------- fills

    def _install_fill(self, block: int, ready_cycle: float, is_prefetch: bool) -> None:
        if is_prefetch:
            self._inflight_prefetches -= 1
        self._fill_l2(block, prefetched=is_prefetch)
        self._fill_llc(block, prefetched=is_prefetch)

    def _fill_l1(self, block: int, *, dirty: bool) -> None:
        victim = self.l1.insert(block, dirty=dirty)
        if victim is not None and victim.dirty:
            # L1 writeback lands in L2 (no DRAM traffic).
            self._fill_l2(victim.block, prefetched=False, dirty=True)

    def _fill_l2(self, block: int, *, prefetched: bool, dirty: bool = False) -> None:
        victim = self.l2.insert(block, prefetched=prefetched, dirty=dirty)
        if victim is not None:
            if victim.prefetched and not victim.used:
                self.stats.prefetch.wrong += 1
            if victim.dirty:
                self._fill_llc(victim.block, prefetched=False, dirty=True)

    def _fill_llc(self, block: int, *, prefetched: bool, dirty: bool = False) -> None:
        victim = self.llc.insert(block, prefetched=prefetched, dirty=dirty)
        if victim is not None and victim.dirty:
            self.stats.writebacks += 1
            # Dirty LLC victims consume DRAM bandwidth but no one waits on them.
            self.dram.writeback()

    # ------------------------------------------------------------ prefetching

    def _run_l2_prefetcher(
        self, pc: int, block: int, cycle: float, *, hit: bool
    ) -> None:
        candidates = self.l2_prefetcher.observe(pc, block, cycle, hit)
        for candidate in candidates:
            self._issue_l2_prefetch(candidate, cycle)

    def _issue_l2_prefetch(self, block: int, cycle: float) -> None:
        if block < 0:
            return
        config = self.config
        if self.l2.contains(block) or self.mshr.lookup(block) is not None:
            return
        if (
            self._inflight_prefetches >= config.max_inflight_prefetches
            or self.mshr.full
        ):
            self.stats.prefetch.dropped += 1
            return
        self.stats.prefetch.issued += 1
        if self.llc.contains(block):
            ready = cycle + config.l2_latency + config.llc_latency
        else:
            ready = self.dram.access(
                cycle + config.l2_latency + config.llc_latency, is_prefetch=True
            )
        self.mshr.allocate(block, ready, is_prefetch=True)
        self._inflight_prefetches += 1

    def _run_l1_prefetcher(
        self, pc: int, block: int, cycle: float, *, hit: bool
    ) -> None:
        candidates = self.l1_prefetcher.observe(pc, block, cycle, hit)
        for candidate in candidates:
            if candidate < 0 or self.l1.contains(candidate):
                continue
            # L1 prefetches are modeled as contents-only fills pulled from
            # the lower levels; they reuse the L2 path for traffic accounting.
            if not self.l2.contains(candidate):
                self._issue_l2_prefetch(candidate, cycle)
            self.l1.insert(candidate)

    # ------------------------------------------------------------- lifecycle

    def finalize(self) -> None:
        """Flush in-flight fills and count never-used prefetched lines."""
        self.mshr.flush(self._install_fill)
        for line in self.l2.resident_lines():
            if line.prefetched and not line.used:
                self.stats.prefetch.wrong += 1
                line.prefetched = False
