"""Three-level cache hierarchy with prefetching, in the ChampSim style.

Matches the paper's setup (§6.1): the prefetcher under test sits at the L2,
is trained on L1 misses, and fills prefetched lines into the L2 and the LLC.
An optional L1 prefetcher (Figure 12's multi-level configurations) trains on
L1 demand accesses and fills the L1.

Timing contract: callers present demand accesses in non-decreasing cycle
order (the trace-driven core guarantees this); ``load`` returns the cycle at
which the data is available. Stores are write-allocate but non-blocking (the
store buffer hides their latency from commit), which is how trace-driven
prefetching studies typically treat them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappush
from typing import Optional

from repro.prefetch.base import Prefetcher
from repro.uncore.cache import Cache, CacheLine
from repro.uncore.dram import DRAMModel
from repro.uncore.mshr import MSHR
from repro.workloads.trace import BLOCK_SHIFT


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache geometry and latencies (defaults = Table 4 / Intel Skylake)."""

    l1_size_bytes: int = 32 * 1024
    l1_ways: int = 8
    l2_size_bytes: int = 256 * 1024
    l2_ways: int = 8
    llc_size_bytes: int = 2 * 1024 * 1024
    llc_ways: int = 16
    block_bytes: int = 64
    l1_latency: float = 4.0
    l2_latency: float = 14.0
    llc_latency: float = 40.0
    dram_latency: float = 200.0
    dram_mtps: float = 2400.0
    core_frequency_ghz: float = 4.0
    mshr_entries: int = 64
    max_inflight_prefetches: int = 32


@dataclass
class PrefetchOutcome:
    """Prefetch classification counters (Figure 9)."""

    issued: int = 0
    timely: int = 0
    late: int = 0
    wrong: int = 0
    dropped: int = 0

    def useful(self) -> int:
        return self.timely + self.late


@dataclass
class HierarchyStats:
    """Demand-side counters for one hierarchy instance."""

    loads: int = 0
    stores: int = 0
    l2_demand_accesses: int = 0
    l2_demand_hits: int = 0
    llc_demand_accesses: int = 0
    llc_demand_hits: int = 0
    dram_demand_fills: int = 0
    writebacks: int = 0
    prefetch: PrefetchOutcome = field(default_factory=PrefetchOutcome)

    @property
    def l2_demand_misses(self) -> int:
        return self.l2_demand_accesses - self.l2_demand_hits

    @property
    def llc_demand_misses(self) -> int:
        return self.llc_demand_accesses - self.llc_demand_hits


class CacheHierarchy:
    """Private L1+L2 over a (possibly shared) LLC and DRAM."""

    def __init__(
        self,
        config: HierarchyConfig = HierarchyConfig(),
        l2_prefetcher: Optional[Prefetcher] = None,
        l1_prefetcher: Optional[Prefetcher] = None,
        shared_llc: Optional[Cache] = None,
        shared_dram: Optional[DRAMModel] = None,
    ) -> None:
        self.config = config
        self.l1 = Cache("L1D", config.l1_size_bytes, config.l1_ways,
                        config.block_bytes)
        self.l2 = Cache("L2", config.l2_size_bytes, config.l2_ways,
                        config.block_bytes)
        self.llc = shared_llc if shared_llc is not None else Cache(
            "LLC", config.llc_size_bytes, config.llc_ways, config.block_bytes
        )
        self.dram = shared_dram if shared_dram is not None else DRAMModel(
            latency_cycles=config.dram_latency,
            mtps=config.dram_mtps,
            core_frequency_ghz=config.core_frequency_ghz,
        )
        self.l2_prefetcher = l2_prefetcher
        self.l1_prefetcher = l1_prefetcher
        self.mshr = MSHR(config.mshr_entries)
        self.stats = HierarchyStats()
        self._inflight_prefetches = 0

    # ------------------------------------------------------------- demand API

    def load(self, pc: int, address: int, cycle: float) -> float:
        """Demand load; returns the data-ready cycle."""
        self.stats.loads += 1
        return self._demand_access(pc, address, cycle, is_write=False)

    def store(self, pc: int, address: int, cycle: float) -> float:
        """Demand store (write-allocate, non-blocking for the core)."""
        self.stats.stores += 1
        self._demand_access(pc, address, cycle, is_write=True)
        return cycle + self.config.l1_latency

    # --------------------------------------------------------------- internals

    # repro: mirror[demand-path]
    def _demand_access(  # repro: hot
        self, pc: int, address: int, cycle: float, *, is_write: bool
    ) -> float:
        """Fused demand path: lookups, fills, and MSHR checks inline.

        Byte-for-byte equivalent to :meth:`_demand_access_generic` (the
        readable reference implementation it falls back to whenever a cache
        level is a replacement-policy subclass): same counter updates in the
        same order, same recency stamps, same fill cascades. The fusion only
        removes per-access method-call overhead — ``Cache.lookup`` /
        ``Cache.insert`` / ``MSHR.drain_completed`` dispatches on the replay
        hot loop.
        """
        l1 = self.l1
        l2 = self.l2
        llc = self.llc
        if type(l1) is not Cache or type(l2) is not Cache or type(llc) is not Cache:
            return self._demand_access_generic(pc, address, cycle, is_write=is_write)

        config = self.config
        block = address >> BLOCK_SHIFT
        mshr = self.mshr
        heap = mshr._heap
        if heap and heap[0][0] <= cycle:
            mshr.drain_completed(cycle, self._install_fill)

        # Inlined l1.lookup(block).
        cache_set = l1._sets[block % l1.num_sets]
        line = cache_set.get(block)
        if line is None:
            l1.misses += 1
        else:
            l1.hits += 1
            stamp = l1._stamp + 1
            l1._stamp = stamp
            line.last_use = stamp
            line.used = True
            del cache_set[block]
            cache_set[block] = line
        if self.l1_prefetcher is not None:
            self._run_l1_prefetcher(pc, block, cycle, hit=line is not None)
        if line is not None:
            if is_write:
                line.dirty = True
            return cycle + config.l1_latency

        # L1 miss -> L2 demand access; this stream trains the L2 prefetcher.
        stats = self.stats
        l2_cycle = cycle + config.l1_latency
        stats.l2_demand_accesses += 1
        # Inlined l2.lookup(block).
        l2_set = l2._sets[block % l2.num_sets]
        l2_line = l2_set.get(block)
        if l2_line is not None:
            l2.hits += 1
            stamp = l2._stamp + 1
            l2._stamp = stamp
            l2_line.last_use = stamp
            l2_line.used = True
            del l2_set[block]
            l2_set[block] = l2_line
            stats.l2_demand_hits += 1
            if l2_line.prefetched:
                # First demand use of a prefetched, resident line: timely.
                stats.prefetch.timely += 1
                l2_line.prefetched = False
            ready = l2_cycle + config.l2_latency
        else:
            l2.misses += 1
            # Inlined _l2_miss(block, l2_cycle).
            inflight = mshr._inflight.get(block)
            if inflight is not None:
                ready_cycle, is_prefetch = inflight
                if is_prefetch:
                    # Demand caught up with an in-flight prefetch: late.
                    stats.prefetch.late += 1
                    mshr.promote_to_demand(block)
                    self._inflight_prefetches -= 1
                l2_ready = l2_cycle + config.l2_latency
                ready = ready_cycle if ready_cycle > l2_ready else l2_ready
            else:
                llc_cycle = l2_cycle + config.l2_latency
                stats.llc_demand_accesses += 1
                # Inlined llc.lookup(block).
                llc_set = llc._sets[block % llc.num_sets]
                llc_line = llc_set.get(block)
                if llc_line is not None:
                    llc.hits += 1
                    stamp = llc._stamp + 1
                    llc._stamp = stamp
                    llc_line.last_use = stamp
                    llc_line.used = True
                    del llc_set[block]
                    llc_set[block] = llc_line
                    stats.llc_demand_hits += 1
                    ready = llc_cycle + config.llc_latency
                    self._fill_l2(block, prefetched=False)
                else:
                    llc.misses += 1
                    # DRAM fill through the MSHR (allocate inlined; the
                    # in-flight probe above guarantees no duplicate entry).
                    ready = self.dram.access(llc_cycle + config.llc_latency)
                    stats.dram_demand_fills += 1
                    inflight_map = mshr._inflight
                    if len(inflight_map) < mshr.capacity:
                        inflight_map[block] = (ready, False)
                        heappush(heap, (ready, block))
                    else:
                        # MSHR pressure: the fill still happens, just
                        # untracked (the demand already paid its latency).
                        self._install_fill(block, ready, False)
        # Inlined _fill_l1(block, dirty=is_write).
        stamp = l1._stamp + 1
        l1._stamp = stamp
        existing = cache_set.get(block)
        if existing is not None:
            existing.last_use = stamp
            existing.dirty = existing.dirty or is_write
            del cache_set[block]
            cache_set[block] = existing
        else:
            victim = None
            if len(cache_set) >= l1.ways:
                victim_block = next(iter(cache_set))
                victim = cache_set.pop(victim_block)
                l1._resident -= 1
            cache_set[block] = CacheLine(block, stamp, False, False, is_write)
            l1._resident += 1
            if victim is not None and victim.dirty:
                # L1 writeback lands in L2 (no DRAM traffic).
                self._fill_l2(victim.block, prefetched=False, dirty=True)
        if self.l2_prefetcher is not None:
            self._run_l2_prefetcher(pc, block, cycle, hit=l2_line is not None)
        return ready

    def _demand_access_generic(
        self, pc: int, address: int, cycle: float, *, is_write: bool
    ) -> float:
        """Reference demand path (replacement-policy caches route here)."""
        config = self.config
        block = address >> BLOCK_SHIFT
        mshr = self.mshr
        if mshr.has_inflight:
            mshr.drain_completed(cycle, self._install_fill)

        line = self.l1.lookup(block)
        if self.l1_prefetcher is not None:
            self._run_l1_prefetcher(pc, block, cycle, hit=line is not None)
        if line is not None:
            if is_write:
                line.dirty = True
            return cycle + config.l1_latency

        # L1 miss -> L2 demand access; this stream trains the L2 prefetcher.
        stats = self.stats
        l2_cycle = cycle + config.l1_latency
        stats.l2_demand_accesses += 1
        l2_line = self.l2.lookup(block)
        if l2_line is not None:
            stats.l2_demand_hits += 1
            if l2_line.prefetched:
                # First demand use of a prefetched, resident line: timely.
                stats.prefetch.timely += 1
                l2_line.prefetched = False
            ready = l2_cycle + config.l2_latency
        else:
            ready = self._l2_miss(block, l2_cycle)
        self._fill_l1(block, dirty=is_write)
        if self.l2_prefetcher is not None:
            self._run_l2_prefetcher(pc, block, cycle, hit=l2_line is not None)
        return ready

    def _l2_miss(self, block: int, l2_cycle: float) -> float:
        config = self.config
        inflight = self.mshr.lookup(block)
        if inflight is not None:
            ready_cycle, is_prefetch = inflight
            if is_prefetch:
                # Demand caught up with an in-flight prefetch: late prefetch.
                self.stats.prefetch.late += 1
                self.mshr.promote_to_demand(block)
                self._inflight_prefetches -= 1
            return max(ready_cycle, l2_cycle + config.l2_latency)

        llc_cycle = l2_cycle + config.l2_latency
        self.stats.llc_demand_accesses += 1
        llc_line = self.llc.lookup(block)
        if llc_line is not None:
            self.stats.llc_demand_hits += 1
            ready = llc_cycle + config.llc_latency
            self._fill_l2(block, prefetched=False)
            return ready

        # DRAM fill through the MSHR.
        ready = self.dram.access(llc_cycle + config.llc_latency)
        self.stats.dram_demand_fills += 1
        if not self.mshr.full:
            self.mshr.allocate(block, ready, is_prefetch=False)
        else:
            # MSHR pressure: the fill still happens, just untracked (the
            # demand has already paid its latency).
            self._install_fill(block, ready, False)
        return ready

    # ---------------------------------------------------------------- fills

    def _install_fill(self, block: int, ready_cycle: float, is_prefetch: bool) -> None:
        if is_prefetch:
            self._inflight_prefetches -= 1
        self._fill_l2(block, prefetched=is_prefetch)
        self._fill_llc(block, prefetched=is_prefetch)

    def _fill_l1(self, block: int, *, dirty: bool) -> None:
        victim = self.l1.insert(block, dirty=dirty)
        if victim is not None and victim.dirty:
            # L1 writeback lands in L2 (no DRAM traffic).
            self._fill_l2(victim.block, prefetched=False, dirty=True)

    # repro: mirror[fill-l2]
    def _fill_l2(  # repro: hot
        self, block: int, *, prefetched: bool, dirty: bool = False
    ) -> None:
        """Fill into L2: fused ``insert`` + victim handling for plain caches.

        On the eviction path the victim :class:`CacheLine` object is
        recycled for the incoming block (its fields are read out first), so
        a warm cache fills without allocating.
        """
        l2 = self.l2
        if type(l2) is not Cache:
            victim = l2.insert(block, prefetched=prefetched, dirty=dirty)
            if victim is not None:
                if victim.prefetched and not victim.used:
                    self.stats.prefetch.wrong += 1
                if victim.dirty:
                    self._fill_llc(victim.block, prefetched=False, dirty=True)
            return
        cache_set = l2._sets[block % l2.num_sets]
        stamp = l2._stamp + 1
        l2._stamp = stamp
        existing = cache_set.get(block)
        if existing is not None:
            existing.last_use = stamp
            existing.dirty = existing.dirty or dirty
            del cache_set[block]
            cache_set[block] = existing
            return
        if len(cache_set) >= l2.ways:
            victim_block = next(iter(cache_set))
            victim = cache_set.pop(victim_block)
            victim_dirty = victim.dirty
            if victim.prefetched and not victim.used:
                self.stats.prefetch.wrong += 1
            victim.block = block
            victim.last_use = stamp
            victim.prefetched = prefetched
            victim.used = False
            victim.dirty = dirty
            cache_set[block] = victim
            if victim_dirty:
                self._fill_llc(victim_block, prefetched=False, dirty=True)
        else:
            cache_set[block] = CacheLine(block, stamp, prefetched, False, dirty)
            l2._resident += 1

    # repro: mirror[fill-llc]
    def _fill_llc(  # repro: hot
        self, block: int, *, prefetched: bool, dirty: bool = False
    ) -> None:
        llc = self.llc
        if type(llc) is not Cache:
            victim = llc.insert(block, prefetched=prefetched, dirty=dirty)
            if victim is not None and victim.dirty:
                self.stats.writebacks += 1
                # Dirty LLC victims consume DRAM bandwidth; no one waits.
                self.dram.writeback()
            return
        cache_set = llc._sets[block % llc.num_sets]
        stamp = llc._stamp + 1
        llc._stamp = stamp
        existing = cache_set.get(block)
        if existing is not None:
            existing.last_use = stamp
            existing.dirty = existing.dirty or dirty
            del cache_set[block]
            cache_set[block] = existing
            return
        if len(cache_set) >= llc.ways:
            victim_block = next(iter(cache_set))
            victim = cache_set.pop(victim_block)
            victim_dirty = victim.dirty
            victim.block = block
            victim.last_use = stamp
            victim.prefetched = prefetched
            victim.used = False
            victim.dirty = dirty
            cache_set[block] = victim
            if victim_dirty:
                self.stats.writebacks += 1
                # Dirty LLC victims consume DRAM bandwidth; no one waits.
                self.dram.writeback()
        else:
            cache_set[block] = CacheLine(block, stamp, prefetched, False, dirty)
            llc._resident += 1

    # ------------------------------------------------------------ prefetching

    def _run_l2_prefetcher(
        self, pc: int, block: int, cycle: float, *, hit: bool
    ) -> None:
        candidates = self.l2_prefetcher.observe(pc, block, cycle, hit)
        for candidate in candidates:
            self._issue_l2_prefetch(candidate, cycle)

    def _issue_l2_prefetch(self, block: int, cycle: float) -> None:
        if block < 0:
            return
        config = self.config
        if self.l2.contains(block) or self.mshr.lookup(block) is not None:
            return
        if (
            self._inflight_prefetches >= config.max_inflight_prefetches
            or self.mshr.full
        ):
            self.stats.prefetch.dropped += 1
            return
        self.stats.prefetch.issued += 1
        if self.llc.contains(block):
            ready = cycle + config.l2_latency + config.llc_latency
        else:
            ready = self.dram.access(
                cycle + config.l2_latency + config.llc_latency, is_prefetch=True
            )
        self.mshr.allocate(block, ready, is_prefetch=True)
        self._inflight_prefetches += 1

    def _run_l1_prefetcher(
        self, pc: int, block: int, cycle: float, *, hit: bool
    ) -> None:
        candidates = self.l1_prefetcher.observe(pc, block, cycle, hit)
        for candidate in candidates:
            if candidate < 0 or self.l1.contains(candidate):
                continue
            # L1 prefetches are modeled as contents-only fills pulled from
            # the lower levels; they reuse the L2 path for traffic accounting.
            if not self.l2.contains(candidate):
                self._issue_l2_prefetch(candidate, cycle)
            self.l1.insert(candidate)

    # ------------------------------------------------------------- lifecycle

    def finalize(self) -> None:
        """Flush in-flight fills and count never-used prefetched lines."""
        self.mshr.flush(self._install_fill)
        for line in self.l2.resident_lines():
            if line.prefetched and not line.used:
                self.stats.prefetch.wrong += 1
                line.prefetched = False
