"""DRAM timing model: fixed access latency plus a bandwidth queue.

Bandwidth is modeled as a single channel that transfers one 64-byte line
every ``cycles_per_line`` core cycles. Requests that arrive while the channel
is busy queue behind it, so an aggressive prefetcher visibly delays demand
fills — the effect behind Figure 10's bandwidth-constrained results and the
§4.3 multi-core interference discussion.
"""

from __future__ import annotations

#: 64-byte line over an 8-byte DDR interface = 8 transfers per line.
TRANSFERS_PER_LINE = 8


def mtps_to_cycles_per_line(
    mtps: float, core_frequency_ghz: float = 4.0
) -> float:
    """Convert megatransfers/second into core cycles per line transfer.

    At the paper's baseline (2400 MTPS, 4 GHz core) one line occupies the
    channel for ~13.3 cycles; the constrained 150 MTPS point costs ~213.
    """
    if mtps <= 0:
        raise ValueError(f"mtps must be positive, got {mtps}")
    transfers_per_cycle = mtps * 1e6 / (core_frequency_ghz * 1e9)
    return TRANSFERS_PER_LINE / transfers_per_cycle


class DRAMModel:
    """Latency + bandwidth-queue DRAM model."""

    def __init__(
        self,
        latency_cycles: float = 200.0,
        mtps: float = 2400.0,
        core_frequency_ghz: float = 4.0,
    ) -> None:
        if latency_cycles < 0:
            raise ValueError(f"latency must be >= 0, got {latency_cycles}")
        self.latency_cycles = latency_cycles
        self.mtps = mtps
        self.cycles_per_line = mtps_to_cycles_per_line(mtps, core_frequency_ghz)
        self._channel_free_at = 0.0
        self.demand_accesses = 0
        self.prefetch_accesses = 0
        self.writeback_accesses = 0
        self.total_queue_cycles = 0.0

    def access(self, cycle: float, *, is_prefetch: bool = False) -> float:
        """Issue one line fetch; returns the completion cycle."""
        start = cycle if cycle > self._channel_free_at else self._channel_free_at
        self.total_queue_cycles += start - cycle
        self._channel_free_at = start + self.cycles_per_line
        if is_prefetch:
            self.prefetch_accesses += 1
        else:
            self.demand_accesses += 1
        return start + self.latency_cycles

    def writeback(self) -> None:
        """Occupy the channel for one line without anyone waiting on it."""
        self._channel_free_at += self.cycles_per_line
        self.writeback_accesses += 1

    @property
    def channel_free_at(self) -> float:
        return self._channel_free_at

    @property
    def accesses(self) -> int:
        return self.demand_accesses + self.prefetch_accesses

    def average_queue_delay(self) -> float:
        """Mean cycles a request waited for the channel."""
        return self.total_queue_cycles / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.demand_accesses = 0
        self.prefetch_accesses = 0
        self.writeback_accesses = 0
        self.total_queue_cycles = 0.0
