"""Cache replacement policies.

The base :class:`~repro.uncore.cache.Cache` uses LRU. This module adds the
standard alternatives — :class:`SRRIP`, :class:`DRRIP` (set-dueling), and
:class:`RandomReplacement` — behind one victim-selection interface, plus a
drop-in :class:`PolicyCache` that accepts any of them.

They exist for the §9 future-work extension explored in
``benchmarks/test_ext_joint_replacement.py``: using a single Bandit to
*jointly* select the prefetcher configuration and the cache replacement
policy (the action space is the product of the two, as §9 notes).
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.uncore.cache import Cache, CacheLine


class ReplacementPolicy:
    """Victim selection + touch/insert bookkeeping for one cache."""

    name = "base"

    def on_insert(self, set_index: int, block: int) -> None:
        """A new block was allocated in ``set_index``."""

    def on_hit(self, set_index: int, block: int) -> None:
        """``block`` was re-referenced."""

    def on_evict(self, set_index: int, block: int) -> None:
        """``block`` left the cache."""

    def choose_victim(
        self, set_index: int, candidates: Dict[int, CacheLine]
    ) -> int:
        """Pick the block to evict from a full set."""
        raise NotImplementedError


class LRUReplacement(ReplacementPolicy):
    """Least-recently-used (matches the base Cache behaviour)."""

    name = "lru"

    def choose_victim(self, set_index, candidates):
        return min(candidates, key=lambda block: candidates[block].last_use)


class RandomReplacement(ReplacementPolicy):
    """Uniform random victim."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose_victim(self, set_index, candidates):
        return self._rng.choice(list(candidates))


class SRRIP(ReplacementPolicy):
    """Static Re-Reference Interval Prediction (Jaleel et al.).

    Lines are inserted with a long re-reference prediction (RRPV = max−1),
    promoted to 0 on hit, and the victim is a line with RRPV = max (aging
    all lines until one qualifies).
    """

    name = "srrip"

    def __init__(self, max_rrpv: int = 3) -> None:
        if max_rrpv < 1:
            raise ValueError(f"max_rrpv must be >= 1, got {max_rrpv}")
        self.max_rrpv = max_rrpv
        self._rrpv: Dict[int, int] = {}
        self.insert_rrpv = max_rrpv - 1

    def on_insert(self, set_index, block):
        self._rrpv[block] = self.insert_rrpv

    def on_hit(self, set_index, block):
        self._rrpv[block] = 0

    def on_evict(self, set_index, block):
        self._rrpv.pop(block, None)

    def choose_victim(self, set_index, candidates):
        while True:
            for block in candidates:
                if self._rrpv.get(block, self.max_rrpv) >= self.max_rrpv:
                    return block
            for block in candidates:
                self._rrpv[block] = self._rrpv.get(block, 0) + 1


class BRRIP(SRRIP):
    """Bimodal RRIP: mostly distant insertion, occasionally long."""

    name = "brrip"

    def __init__(self, max_rrpv: int = 3, long_probability: float = 1 / 32,
                 seed: int = 0) -> None:
        super().__init__(max_rrpv)
        self.long_probability = long_probability
        self._rng = random.Random(seed)

    def on_insert(self, set_index, block):
        if self._rng.random() < self.long_probability:
            self._rrpv[block] = self.max_rrpv - 1
        else:
            self._rrpv[block] = self.max_rrpv


class DRRIP(ReplacementPolicy):
    """Dynamic RRIP: set-dueling between SRRIP and BRRIP.

    A few leader sets are dedicated to each component policy; a saturating
    miss counter (PSEL) picks the winner for the follower sets.
    """

    name = "drrip"

    def __init__(self, num_sets: int, max_rrpv: int = 3,
                 leaders_per_policy: int = 4, seed: int = 0) -> None:
        if num_sets < 2 * leaders_per_policy:
            raise ValueError("not enough sets for the requested leader count")
        self.num_sets = num_sets
        self._srrip = SRRIP(max_rrpv)
        self._brrip = BRRIP(max_rrpv, seed=seed)
        stride = num_sets // (2 * leaders_per_policy)
        self._srrip_leaders = {i * 2 * stride for i in range(leaders_per_policy)}
        self._brrip_leaders = {
            i * 2 * stride + stride for i in range(leaders_per_policy)
        }
        self.psel = 512
        self._psel_max = 1023

    def _policy_for(self, set_index: int) -> ReplacementPolicy:
        if set_index in self._srrip_leaders:
            return self._srrip
        if set_index in self._brrip_leaders:
            return self._brrip
        return self._srrip if self.psel >= 512 else self._brrip

    def record_miss(self, set_index: int) -> None:
        """Misses in leader sets train PSEL (called by PolicyCache)."""
        if set_index in self._srrip_leaders:
            self.psel = max(self.psel - 1, 0)
        elif set_index in self._brrip_leaders:
            self.psel = min(self.psel + 1, self._psel_max)

    def on_insert(self, set_index, block):
        self._policy_for(set_index).on_insert(set_index, block)

    def on_hit(self, set_index, block):
        # Both components share RRPV state through their dicts; promote in
        # both so follower flips stay consistent.
        self._srrip.on_hit(set_index, block)
        self._brrip.on_hit(set_index, block)

    def on_evict(self, set_index, block):
        self._srrip.on_evict(set_index, block)
        self._brrip.on_evict(set_index, block)

    def choose_victim(self, set_index, candidates):
        return self._policy_for(set_index).choose_victim(set_index, candidates)


class PolicyCache(Cache):
    """A :class:`Cache` whose victim selection delegates to a policy."""

    def __init__(self, name: str, size_bytes: int, ways: int,
                 policy: Optional[ReplacementPolicy] = None,
                 block_bytes: int = 64) -> None:
        super().__init__(name, size_bytes, ways, block_bytes)
        self.policy = policy if policy is not None else LRUReplacement()

    def lookup(self, block: int, *, update: bool = True):
        line = super().lookup(block, update=update)
        set_index = block % self.num_sets
        if line is not None and update:
            self.policy.on_hit(set_index, block)
        elif line is None and isinstance(self.policy, DRRIP):
            self.policy.record_miss(set_index)
        return line

    def insert(self, block: int, *, prefetched: bool = False,
               dirty: bool = False):
        cache_set = self._set_for(block)
        set_index = block % self.num_sets
        if block in cache_set:
            return super().insert(block, prefetched=prefetched, dirty=dirty)
        victim_line = None
        if len(cache_set) >= self.ways:
            victim_block = self.policy.choose_victim(set_index, cache_set)
            victim_line = cache_set.pop(victim_block)
            self._resident -= 1
            self.policy.on_evict(set_index, victim_block)
        self._stamp += 1
        cache_set[block] = CacheLine(
            block=block, last_use=self._stamp, prefetched=prefetched,
            used=False, dirty=dirty,
        )
        self._resident += 1
        self.policy.on_insert(set_index, block)
        return victim_line
