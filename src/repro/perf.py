"""Performance observability: profiling harness and benchmark regression gate.

Two small tools that keep the hot-path replay engine honest:

``profile_call``
    Run a callable under :mod:`cProfile` and write a JSON summary (top
    functions by cumulative and total time) next to the raw ``.prof`` dump.
    The CLI's ``--profile`` flag routes every figure command through this.

``compare_benchmarks`` / ``python -m repro.perf``
    Compare a freshly produced ``pytest-benchmark`` JSON file against a
    committed baseline (``BENCH_PR3.json``-style) and fail when any shared
    benchmark regressed beyond ``max(--max-regression, --stddev-k·stddev)``
    of the baseline mean — slowdowns inside a multi-round baseline's own
    noise band pass. CI runs this after the benchmark smoke job.

``python -m repro.perf --history BENCH_*.json``
    Print the performance trajectory across the committed baselines, in
    PR order (numeric ``BENCH_PR<N>`` suffix): every benchmark's mean
    (with its spread when the baseline recorded more than one round) plus
    each file's same-tree speedup summary.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import re
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Default regression tolerance: a benchmark may be up to 20% slower than
#: its committed baseline before the gate fails.
DEFAULT_MAX_REGRESSION = 0.20

#: Default significance multiplier: against a multi-round baseline the gate
#: allows ``max(max_regression·mean, stddev_k·stddev)`` of slowdown, so a
#: noisy benchmark is judged by its own recorded spread rather than a bare
#: ratio. 3σ keeps the false-failure rate of a well-behaved benchmark low.
DEFAULT_STDDEV_K = 3.0

#: Number of functions kept in each JSON profile summary table.
PROFILE_TOP_FUNCTIONS = 25


# ================================================================ profiling


def _stats_table(
    stats: pstats.Stats, sort: str, top: int
) -> List[Dict[str, Any]]:
    """The top-``top`` rows of a :class:`pstats.Stats` sorted by ``sort``."""
    stats.sort_stats(sort)
    rows: List[Dict[str, Any]] = []
    for func in stats.fcn_list[:top]:  # type: ignore[attr-defined]
        cc, nc, tottime, cumtime, _callers = stats.stats[func]  # type: ignore[attr-defined]
        filename, line, name = func
        rows.append(
            {
                "function": f"{filename}:{line}({name})",
                "calls": nc,
                "primitive_calls": cc,
                "tottime": round(tottime, 6),
                "cumtime": round(cumtime, 6),
            }
        )
    return rows


def profile_call(
    fn: Callable[[], Any],
    output_stem: str | Path,
    label: str = "",
    top: int = PROFILE_TOP_FUNCTIONS,
) -> Tuple[Any, Path]:
    """Run ``fn`` under cProfile; write ``<stem>.prof`` and ``<stem>.json``.

    The JSON summary holds wall time plus the top functions by cumulative
    and by total time — enough to spot a hot-path regression in review
    without loading the binary dump. Returns ``(fn's result, json path)``.
    """
    output_stem = Path(output_stem)
    output_stem.parent.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    wall = time.perf_counter() - start
    # Append the suffix rather than with_suffix(): a dotted stem like
    # ``fig08.bandit`` must not collapse onto its sibling ``fig08``.
    prof_path = output_stem.parent / (output_stem.name + ".prof")
    profiler.dump_stats(str(prof_path))
    stats = pstats.Stats(profiler)
    summary = {
        "label": label or output_stem.name,
        "wall_seconds": round(wall, 6),
        "total_calls": int(stats.total_calls),  # type: ignore[attr-defined]
        "profile_dump": prof_path.name,
        "top_cumulative": _stats_table(stats, "cumulative", top),
        "top_tottime": _stats_table(stats, "tottime", top),
    }
    json_path = output_stem.parent / (output_stem.name + ".json")
    json_path.write_text(json.dumps(summary, indent=2) + "\n")
    return result, json_path


# ========================================================== benchmark compare


@dataclass(frozen=True)
class BenchmarkStats:
    """One benchmark's timing summary, as read from pytest-benchmark JSON."""

    mean: float  #: mean seconds per round
    stddev: Optional[float] = None  #: sample stddev, if recorded
    rounds: Optional[int] = None  #: number of timed rounds, if recorded

    @property
    def single_round(self) -> bool:
        """True when the stats carry no variance information at all.

        A single-round benchmark (or one whose JSON predates the rounds
        field) has a mean but no spread; regression verdicts against it
        are noisier than the ratio suggests.
        """
        return self.rounds is None or self.rounds <= 1


def load_benchmark_stats(path: str | Path) -> Dict[str, BenchmarkStats]:
    """``{benchmark name: stats}`` from a pytest-benchmark JSON file.

    Reads the mean plus — when present — the stddev and round count, so
    the gate can qualify its verdicts with the variance of the baseline.
    """
    with open(path) as handle:
        payload = json.load(handle)
    loaded: Dict[str, BenchmarkStats] = {}
    for bench in payload.get("benchmarks", []):
        stats = bench.get("stats", {})
        mean = stats.get("mean")
        if mean is None:
            continue
        stddev = stats.get("stddev")
        rounds = stats.get("rounds")
        loaded[bench["name"]] = BenchmarkStats(
            mean=float(mean),
            stddev=None if stddev is None else float(stddev),
            rounds=None if rounds is None else int(rounds),
        )
    return loaded


def load_benchmark_means(path: str | Path) -> Dict[str, float]:
    """``{benchmark name: mean seconds}`` from a pytest-benchmark JSON file."""
    return {
        name: stats.mean
        for name, stats in load_benchmark_stats(path).items()
    }


def compare_benchmarks(
    baseline_path: str | Path,
    current_path: str | Path,
    max_regression: float = DEFAULT_MAX_REGRESSION,
    stddev_k: float = DEFAULT_STDDEV_K,
) -> Tuple[bool, List[str]]:
    """Compare benchmark means; returns ``(ok, report lines)``.

    Variance-aware gate: a shared benchmark fails when the current mean
    exceeds ``baseline + max(max_regression·baseline, stddev_k·stddev)`` —
    the fixed tolerance *or* ``stddev_k`` standard deviations of the
    multi-round baseline, whichever is larger. A slowdown inside the
    baseline's own recorded noise band therefore passes even when the bare
    ratio crosses ``1 + max_regression``, and the per-benchmark report line
    prints the effective limit actually applied. (A 0s-vs-0s pair counts
    as unchanged.) Benchmarks *new* in the current run have no baseline yet
    and only report; benchmarks the baseline lists but the current run
    lacks fail the gate — a silently skipped benchmark is a gate bypass,
    not a pass. A single-round baseline (no variance information) falls
    back to the bare-ratio gate and *warns*: its verdicts still gate, but
    the report says how little the mean is backed by.
    """
    baseline = load_benchmark_stats(baseline_path)
    current = load_benchmark_stats(current_path)
    lines: List[str] = []
    ok = True
    shared = sorted(set(baseline) & set(current))
    if not shared:
        return False, ["no benchmarks shared between baseline and current run"]
    for name in shared:
        base = baseline[name].mean
        cur = current[name].mean
        if base > 0:
            ratio = cur / base
        elif cur == 0:
            ratio = 1.0  # 0s vs 0s baseline: nothing regressed
        else:
            ratio = float("inf")
        limit = 1.0 + max_regression
        stddev = baseline[name].stddev
        if base > 0 and stddev is not None and not baseline[name].single_round:
            # Significance slack: a multi-round baseline is judged by its
            # own spread when that is wider than the fixed tolerance.
            limit = max(limit, (base + stddev_k * stddev) / base)
        status = "ok" if ratio <= limit else "REGRESSION"
        if status != "ok":
            ok = False
        spread = ""
        if baseline[name].stddev is not None and not baseline[name].single_round:
            spread = f" ±{baseline[name].stddev:.4f}s"
        lines.append(
            f"{status:>10}  {name}: {cur:.4f}s vs baseline {base:.4f}s"
            f"{spread} ({ratio:.2f}x, limit {limit:.2f}x)"
        )
        if baseline[name].single_round:
            rounds = baseline[name].rounds
            detail = (
                f"rounds={rounds}" if rounds is not None else "no round count"
            )
            lines.append(
                f"{'warning':>10}  {name}: baseline is single-round "
                f"({detail}); mean carries no variance estimate — "
                "re-record with more rounds for trustworthy gating"
            )
    for name in sorted(set(current) - set(baseline)):
        lines.append(
            f"{'new':>10}  {name}: {current[name].mean:.4f}s (no baseline)"
        )
    for name in sorted(set(baseline) - set(current)):
        # A benchmark the baseline gates on silently vanishing is a gate
        # bypass, not a pass.
        ok = False
        lines.append(
            f"{'MISSING':>10}  {name}: in baseline but not in current run"
        )
    return ok, lines


_BENCH_PR_NAME = re.compile(r"BENCH_PR(\d+)\.json\Z")


def _history_sort_key(path: Path) -> Tuple[Any, ...]:
    """Chronological ordering key for committed baseline files.

    Conforming ``BENCH_PR<N>.json`` names sort by the numeric PR suffix —
    lexicographic ordering would scramble the trajectory the moment a
    two-digit PR lands (``BENCH_PR10`` < ``BENCH_PR3``). Non-conforming
    names sort after all conforming ones, by natural sort (digit runs
    compared numerically) so e.g. ``bench-run2`` < ``bench-run10``.
    """
    match = _BENCH_PR_NAME.match(path.name)
    if match:
        return (0, int(match.group(1)), path.name)
    tokens = tuple(
        (0, int(tok)) if tok.isdigit() else (1, tok)
        for tok in re.split(r"(\d+)", path.name)
        if tok
    )
    return (1, tokens, path.name)


def history_report(paths: List[str | Path]) -> List[str]:
    """The committed-baseline trajectory, one block per file.

    Files are ordered by their numeric PR suffix (``BENCH_PR3.json`` <
    ``BENCH_PR6.json`` < ``BENCH_PR10.json``; non-conforming names follow,
    natural-sorted), so the blocks read as the optimisation history of
    the repo. Each block lists the file's same-tree speedup summary (the
    ``comparison`` object the committed baselines carry) and every
    benchmark's mean — with its spread when the baseline recorded more
    than one round, and an explicit variance caveat when it did not.
    """
    lines: List[str] = []
    for path in sorted((Path(p) for p in paths), key=_history_sort_key):
        with open(path) as handle:
            payload = json.load(handle)
        lines.append(f"{path.name}:")
        comparison = payload.get("comparison") or {}
        subject = comparison.get("benchmark")
        if subject:
            lines.append(f"  subject: {subject}")
        speedup = comparison.get("speedup")
        if speedup is not None:
            lines.append(f"  same-tree speedup: {speedup:g}x")
        for name, stats in sorted(load_benchmark_stats(path).items()):
            if stats.single_round:
                spread = "  (single round, no variance estimate)"
            else:
                stddev = 0.0 if stats.stddev is None else stats.stddev
                spread = f" ±{stddev:.4f}s over {stats.rounds} rounds"
            lines.append(f"  {name}: mean {stats.mean:.4f}s{spread}")
    return lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Compare pytest-benchmark JSON results against a "
        "committed baseline and fail on regressions, or print the "
        "trajectory across committed baselines (--history).",
    )
    parser.add_argument("--baseline",
                        help="committed baseline benchmark JSON")
    parser.add_argument("--current",
                        help="freshly produced benchmark JSON")
    parser.add_argument(
        "--max-regression", type=float, default=DEFAULT_MAX_REGRESSION,
        help="allowed fractional slowdown before failing "
        "(default %(default)s = 20%%)",
    )
    parser.add_argument(
        "--stddev-k", type=float, default=DEFAULT_STDDEV_K,
        help="significance multiplier: allow up to K baseline standard "
        "deviations of slowdown when that exceeds --max-regression "
        "(default %(default)s; only applies to multi-round baselines)",
    )
    parser.add_argument(
        "--history", nargs="+", metavar="BENCH_JSON",
        help="print the mean/stddev/speedup trajectory across the given "
        "committed baselines (filename order) instead of gating",
    )
    args = parser.parse_args(argv)
    if args.history:
        if args.baseline or args.current:
            parser.error("--history is mutually exclusive with "
                         "--baseline/--current")
        for line in history_report(args.history):
            print(line)
        return 0
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required "
                     "(or use --history)")
    ok, lines = compare_benchmarks(
        args.baseline, args.current,
        max_regression=args.max_regression,
        stddev_k=args.stddev_k,
    )
    for line in lines:
        print(line)
    print("benchmark gate:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
