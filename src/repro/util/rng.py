"""Seeded random-number streams.

Every stochastic component in the reproduction (workload generators, the
ε-Greedy explorer, the round-robin restart of §4.3) draws from an explicit
``random.Random`` instance derived here, so that all experiments are
deterministic given their seeds.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a label path.

    Uses BLAKE2 over the textual labels so that independent subsystems
    (e.g. per-core bandits, per-thread workloads) get decorrelated streams
    while remaining reproducible.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(base_seed).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode())
    return int.from_bytes(digest.digest(), "little")


def make_rng(base_seed: int, *labels: object) -> random.Random:
    """Create a ``random.Random`` seeded via :func:`derive_seed`."""
    return random.Random(derive_seed(base_seed, *labels))
