"""Shared utilities: statistics helpers and seeded random streams."""

from repro.util.rng import derive_seed, make_rng
from repro.util.stats import (
    RunningMean,
    Summary,
    geometric_mean,
    harmonic_mean,
    normalize_to,
    summarize_ratios,
)

__all__ = [
    "RunningMean",
    "Summary",
    "derive_seed",
    "geometric_mean",
    "harmonic_mean",
    "make_rng",
    "normalize_to",
    "summarize_ratios",
]
