"""Statistics helpers used throughout the evaluation.

The paper reports geometric-mean speedups (§7) and min/max/gmean tables
normalized to a best-static oracle (Tables 8 and 9); the helpers here are the
single implementation of those aggregations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Raises ``ValueError`` on an empty input or any non-positive value, since
    a silent 0/NaN would corrupt every downstream speedup table.
    """
    log_sum = 0.0
    count = 0
    for value in values:
        if value <= 0.0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
        log_sum += math.log(value)
        count += 1
    if count == 0:
        raise ValueError("geometric mean of empty sequence")
    return math.exp(log_sum / count)


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of strictly positive values."""
    inv_sum = 0.0
    count = 0
    for value in values:
        if value <= 0.0:
            raise ValueError(f"harmonic mean requires positive values, got {value}")
        inv_sum += 1.0 / value
        count += 1
    if count == 0:
        raise ValueError("harmonic mean of empty sequence")
    return count / inv_sum


def normalize_to(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Return ``values`` divided by ``values[baseline_key]``."""
    baseline = values[baseline_key]
    if baseline <= 0.0:
        raise ValueError(f"baseline {baseline_key!r} must be positive, got {baseline}")
    return {key: value / baseline for key, value in values.items()}


@dataclass(frozen=True)
class Summary:
    """min/max/gmean triple, as a percentage — the format of Tables 8 and 9."""

    minimum: float
    maximum: float
    gmean: float

    def as_percent(self) -> "Summary":
        return Summary(self.minimum * 100.0, self.maximum * 100.0, self.gmean * 100.0)

    def __str__(self) -> str:
        return (
            f"min={self.minimum:.1f} max={self.maximum:.1f} gmean={self.gmean:.1f}"
        )


def summarize_ratios(ratios: Sequence[float]) -> Summary:
    """Summarize a sequence of per-workload performance ratios."""
    if not ratios:
        raise ValueError("cannot summarize an empty ratio sequence")
    return Summary(min(ratios), max(ratios), geometric_mean(ratios))


class RunningMean:
    """Numerically stable running mean (Welford-style, mean only).

    Used by the *Periodic* heuristic's moving-average buffer and by reward
    bookkeeping in tests.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0

    def add(self, value: float) -> None:
        self._count += 1
        self._mean += (value - self._mean) / self._count

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("mean of zero samples")
        return self._mean

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0
