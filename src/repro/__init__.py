"""Reproduction of *Micro-Armed Bandit* (Gerogiannis & Torrellas, MICRO 2023).

The package implements the paper's primary contribution — a lightweight
Multi-Armed Bandit hardware agent built around the Discounted Upper
Confidence Bound (DUCB) algorithm — together with every substrate its
evaluation depends on:

- :mod:`repro.bandit` — the MAB algorithms (ε-Greedy, UCB, DUCB), the
  exploration heuristics used as comparison points (Single, Periodic,
  BestStatic), the microarchitecture-specific modifications of §4.3, and a
  hardware cost/latency model of the agent.
- :mod:`repro.uncore` — a cache/memory substrate (set-associative caches,
  MSHRs, a bandwidth-limited DRAM model, a three-level hierarchy).
- :mod:`repro.core_model` — a trace-driven out-of-order core timing model in
  the style of ChampSim, plus a multi-core wrapper.
- :mod:`repro.prefetch` — the lightweight prefetchers Bandit orchestrates and
  all evaluated comparators (IP-stride, BOP, MLOP, Bingo, IPCP, Pythia).
- :mod:`repro.smt` — a cycle-level SMT pipeline with shared structures, fetch
  priority/gating policies, Choi Hill-Climbing, and Bandit PG-policy control.
- :mod:`repro.workloads` — seeded synthetic workload generators standing in
  for the SPEC/PARSEC/Ligra/CloudSuite traces (see DESIGN.md §2).
- :mod:`repro.experiments` — configuration tables and runners that regenerate
  every table and figure of the paper's evaluation.
- :mod:`repro.hwcost` — area/power/storage estimation (§6.5).
"""

from repro.bandit import (
    BanditConfig,
    BestStatic,
    DUCB,
    EpsilonGreedy,
    MicroArmedBandit,
    Periodic,
    Single,
    UCB,
)

__all__ = [
    "BanditConfig",
    "BestStatic",
    "DUCB",
    "EpsilonGreedy",
    "MicroArmedBandit",
    "Periodic",
    "Single",
    "UCB",
]

__version__ = "1.0.0"
