"""Command-line interface: regenerate any paper experiment from the shell.

Usage::

    python -m repro.cli list
    python -m repro.cli fig08 --trace-length 20000
    python -m repro.cli table08 --trace-length 15000 --workloads 8
    python -m repro.cli fig13 --mixes 10 --epochs 400
    python -m repro.cli sec65
    python -m repro.cli matrix --axis workload=milc06,cactus06 \
        --axis scenario=none,stride,bandit --expand-only

Each subcommand prints the regenerated table/series in the same format as
the benchmark harness. This exists so downstream users can reproduce a
single figure without running pytest.

Execution knobs shared by every subcommand: ``--jobs N`` fans trace
replays out over a process pool (tables are byte-identical to a serial
run), ``--cache-dir``/``--no-cache`` control the on-disk result cache, and
a telemetry summary plus a JSON run manifest record what was executed
versus served from cache. Telemetry goes to stderr so stdout stays
exactly the table.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Callable, Dict

import repro.experiments.figures as figures
from repro.experiments.reporting import format_summary_table, format_table
from repro.experiments.runner import ExecutionContext, ResultCache, use_context
from repro.experiments.smt import SMTScale
from repro.smt.bandit_control import SMTBanditConfig
from repro.workloads.compiled import TRACE_CACHE_ENV, set_trace_store
from repro.workloads.suites import spec_by_name, tune_specs

#: Default result-cache location (content-keyed; safe to delete any time).
DEFAULT_CACHE_DIR = ".repro-cache"


def _tune_selection(args: argparse.Namespace):
    """The workload specs a prefetch subcommand sweeps.

    ``--workload-names milc06,cactus06`` selects exact members (any order);
    otherwise the first ``--workloads`` of the tune set, as before.
    """
    names = getattr(args, "workload_names", None)
    if names:
        return [spec_by_name(name.strip()) for name in names.split(",")]
    return tune_specs()[: args.workloads]


def _smt_scale(args: argparse.Namespace) -> SMTScale:
    return SMTScale(
        epoch_cycles=args.epoch_cycles,
        total_epochs=args.epochs,
        step_epochs=args.step_epochs,
        step_epochs_rr=args.step_epochs_rr,
    )


def _cmd_fig02(args):
    result = figures.fig02_pythia_homogeneity(trace_length=args.trace_length)
    rows = [(name, f"{a:.2f}", f"{b:.2f}") for name, (a, b) in result.items()]
    print(format_table(["workload", "top1", "top2"], rows,
                       title="Figure 2"))


def _cmd_fig05(args):
    result = figures.fig05_pg_policy_range(num_mixes=args.mixes,
                                           scale=_smt_scale(args))
    rows = [(r["mix"], r["best_policy"], f"{r['best_vs_choi']:.2f}",
             f"{r['worst_vs_choi']:.2f}") for r in result]
    print(format_table(["mix", "best policy", "best/Choi", "worst/Choi"],
                       rows, title="Figure 5"))


def _cmd_table08(args):
    result = figures.table08_prefetch_tuneset(
        trace_length=args.trace_length,
        workloads=_tune_selection(args),
    )
    print(format_summary_table(result, title="Table 8"))


def _cmd_table09(args):
    result = figures.table09_smt_tuneset(num_mixes=args.mixes,
                                         scale=_smt_scale(args))
    print(format_summary_table(result, title="Table 9"))


def _cmd_fig08(args):
    result = figures.fig08_singlecore(trace_length=args.trace_length)
    _print_suite_table(result, "Figure 8")


def _cmd_fig11(args):
    result = figures.fig11_alt_hierarchy(trace_length=args.trace_length)
    _print_suite_table(result, "Figure 11")


def _print_suite_table(result, title):
    names = ["stride", "bingo", "mlop", "pythia", "bandit"]
    rows = [[suite] + [f"{result[suite][name]:.3f}" for name in names]
            for suite in result]
    print(format_table(["suite"] + names, rows, title=title))


def _cmd_fig09(args):
    result = figures.fig09_breakdown(
        trace_length=args.trace_length,
        workloads=_tune_selection(args),
    )
    rows = [(name, f"{m['llc_misses']:.3f}", f"{m['timely']:.3f}",
             f"{m['late']:.3f}", f"{m['wrong']:.3f}")
            for name, m in result.items()]
    print(format_table(["prefetcher", "LLC misses", "timely", "late",
                        "wrong"], rows, title="Figure 9"))


def _cmd_fig10(args):
    result = figures.fig10_bandwidth_sweep(
        trace_length=args.trace_length,
        workloads=_tune_selection(args),
    )
    rows = [(f"{int(m)} MTPS", f"{v['pythia']:.3f}", f"{v['bandit']:.3f}")
            for m, v in sorted(result.items())]
    print(format_table(["bandwidth", "pythia", "bandit"], rows,
                       title="Figure 10"))


def _cmd_fig08rep(args):
    result = figures.fig08_replication_sweep(
        trace_length=args.trace_length,
        replicates=args.replicates,
        workloads=_tune_selection(args),
    )
    rows = []
    for name, member in result.items():
        if name == "all":
            continue
        rows.append((
            name, member["best_static_arm"],
            f"{member['best_static_norm']:.3f}",
            f"{member['bandit_mean']:.3f}",
            f"{member['bandit_min']:.3f}",
            f"{member['bandit_max']:.3f}",
        ))
    rows.append((
        "all", "", f"{result['all']['best_static_gmean']:.3f}",
        f"{result['all']['bandit_gmean']:.3f}", "", "",
    ))
    print(format_table(
        ["workload", "best arm", "best static", "bandit mean",
         "bandit min", "bandit max"],
        rows, title="Figure 8 replication sweep",
    ))


def _cmd_fig10rep(args):
    result = figures.fig10_replication_sweep(
        trace_length=args.trace_length,
        replicates=args.replicates,
        workloads=_tune_selection(args),
    )
    rows = [(f"{int(m)} MTPS", f"{v['best_static_gmean']:.3f}",
             f"{v['bandit_gmean']:.3f}", f"{v['bandit_min']:.3f}",
             f"{v['bandit_max']:.3f}")
            for m, v in sorted(result.items())]
    print(format_table(
        ["bandwidth", "best static", "bandit gmean", "bandit min",
         "bandit max"],
        rows, title="Figure 10 replication sweep",
    ))


def _cmd_fig12(args):
    result = figures.fig12_multilevel(
        trace_length=args.trace_length,
        workloads=_tune_selection(args),
    )
    rows = [(name, f"{value:.3f}") for name, value in result.items()]
    print(format_table(["configuration", "gmean"], rows, title="Figure 12"))


def _cmd_fig13(args):
    result = figures.fig13_smt_bandit_vs_choi(num_mixes=args.mixes,
                                              scale=_smt_scale(args))
    print(format_table(
        ["metric", "value"],
        [("gmean vs Choi", f"{result['gmean_vs_choi']:.3f}"),
         ("gmean vs ICount", f"{result['gmean_vs_icount']:.3f}"),
         ("wins > 4%", result["wins_over_4pct"]),
         ("losses > 4%", result["losses_over_4pct"]),
         ("ratios", " ".join(f"{r:.2f}" for r in result["ratios_sorted"]))],
        title="Figure 13",
    ))


def _cmd_fig14(args):
    result = figures.fig14_fourcore(trace_length=args.trace_length,
                                    max_mixes=args.workloads)
    rows = [(name, f"{value:.3f}") for name, value in result.items()]
    print(format_table(["prefetcher", "gmean"], rows, title="Figure 14"))


def _cmd_fig15(args):
    result = figures.fig15_rename_activity(num_mixes=args.mixes,
                                           scale=_smt_scale(args))
    keys = ["rob_full", "iq_full", "lq_full", "sq_full", "rf_full",
            "stalled_any", "idle", "running"]
    rows = [[name] + [f"{m[k]:.3f}" for k in keys]
            for name, m in result.items()]
    print(format_table(["policy"] + keys, rows, title="Figure 15"))


def _cmd_sec65(args):
    print(json.dumps(figures.sec65_area_power(), indent=2))


def _parse_axis_value(text: str):
    """Axis values come in as strings; recover ints and floats."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_assignments(text: str) -> Dict[str, object]:
    """``a=1,b=x`` → ``{"a": 1, "b": "x"}`` (include/exclude entries)."""
    out: Dict[str, object] = {}
    for part in text.split(","):
        key, sep, value = part.partition("=")
        if not sep or not key.strip():
            raise SystemExit(
                f"bad assignment {part!r}: expected name=value[,name=value]"
            )
        out[key.strip()] = _parse_axis_value(value.strip())
    return out


def _cmd_matrix(args):
    """Expand (and optionally run) a declarative scenario matrix.

    The spec comes either from ``--spec FILE.json`` or from repeated
    ``--axis name=v1,v2`` flags plus ``--include``/``--exclude``
    assignments. ``suite:<name>`` entries on the ``workload`` axis expand
    to the suite's members before the matrix is built. ``--expand-only``
    prints the point list without running anything; otherwise every point
    executes through the shared runner (cache/jobs flags apply) and the
    table reports per-point IPC normalized to the same-workload
    no-prefetch baseline.
    """
    from repro.experiments.matrix import (
        MatrixSpec,
        expand,
        expand_workload_values,
        run_prefetch_matrix,
    )

    if args.spec and args.axis:
        raise SystemExit("--spec and --axis are mutually exclusive")
    if args.spec:
        payload = json.loads(Path(args.spec).read_text())
        axes = payload.get("axes")
        if isinstance(axes, dict) and "workload" in axes:
            axes["workload"] = list(expand_workload_values(axes["workload"]))
        spec = MatrixSpec.from_dict(payload)
    elif args.axis:
        axes_list = []
        for entry in args.axis:
            name, sep, values = entry.partition("=")
            if not sep or not values:
                raise SystemExit(
                    f"bad --axis {entry!r}: expected name=v1[,v2,...]"
                )
            parsed = tuple(
                _parse_axis_value(v.strip()) for v in values.split(",")
            )
            if name.strip() == "workload":
                parsed = expand_workload_values(parsed)
            axes_list.append((name.strip(), parsed))
        spec = MatrixSpec.build(
            axes=axes_list,
            include=[_parse_assignments(t) for t in args.include],
            exclude=[_parse_assignments(t) for t in args.exclude],
        )
    else:
        raise SystemExit("matrix needs --spec FILE.json or --axis flags")

    names = list(spec.axis_names)
    points = expand(spec)
    if args.expand_only:
        rows = [[str(point[n]) for n in names] for point in points]
        print(format_table(names, rows,
                           title=f"Matrix expansion ({len(points)} points)"))
        return
    results = run_prefetch_matrix(
        spec, trace_length=args.trace_length,
        algorithm_gamma=figures.SCALED_GAMMA,
    )
    rows = [
        [str(value) for _, value in row.point]
        + [f"{row.ipc:.4f}", f"{row.normalized_ipc:.3f}"]
        for row in results
    ]
    print(format_table(names + ["ipc", "vs none"], rows,
                       title=f"Scenario matrix ({len(points)} points)"))


def _cmd_traces(args):
    """Materialize the synthetic suite to disk as .trace.gz files."""
    from pathlib import Path

    from repro.workloads.suites import eval_specs
    from repro.workloads.trace import write_trace

    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for spec in eval_specs():
        path = out_dir / f"{spec.suite}.{spec.name}.trace.gz"
        count = write_trace(spec.trace(args.trace_length, seed=0), path)
        print(f"wrote {count} records to {path}")


COMMANDS: Dict[str, Callable] = {
    "fig02": _cmd_fig02,
    "fig05": _cmd_fig05,
    "table08": _cmd_table08,
    "table09": _cmd_table09,
    "fig07": None,  # filled below
    "fig08": _cmd_fig08,
    "fig09": _cmd_fig09,
    "fig10": _cmd_fig10,
    "fig08rep": _cmd_fig08rep,
    "fig10rep": _cmd_fig10rep,
    "fig11": _cmd_fig11,
    "fig12": _cmd_fig12,
    "fig13": _cmd_fig13,
    "fig14": _cmd_fig14,
    "fig15": _cmd_fig15,
    "sec65": _cmd_sec65,
    "matrix": _cmd_matrix,
}


def _cmd_fig07(args):
    result = figures.fig07_exploration_traces(
        trace_length=args.trace_length, scale=_smt_scale(args)
    )
    rows = []
    for scenario, algorithms in result.items():
        for name, data in algorithms.items():
            rows.append((scenario, name, f"{data['ipc']:.3f}",
                         len(data["arms"]), len(set(data["arms"]))))
    print(format_table(["scenario", "algorithm", "ipc", "steps",
                        "distinct"], rows, title="Figure 7"))


COMMANDS["fig07"] = _cmd_fig07
COMMANDS["traces"] = _cmd_traces


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate Micro-Armed Bandit paper experiments.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    smt_defaults = SMTBanditConfig()
    for name in COMMANDS:
        cmd = sub.add_parser(name, help=f"regenerate {name}")
        cmd.add_argument("--trace-length", type=int, default=10_000,
                         help="memory accesses per trace (prefetch cases)")
        cmd.add_argument("--workloads", type=int, default=8,
                         help="number of workloads/mixes where applicable")
        cmd.add_argument("--workload-names", default=None,
                         help="comma-separated tune-set workload names "
                              "(overrides the --workloads prefix)")
        cmd.add_argument("--mixes", type=int, default=6,
                         help="number of SMT mixes where applicable")
        cmd.add_argument("--epochs", type=int, default=300,
                         help="SMT episode length in HC epochs")
        cmd.add_argument("--epoch-cycles", type=int, default=500,
                         help="cycles per Hill-Climbing epoch")
        cmd.add_argument("--step-epochs", type=int,
                         default=smt_defaults.step_epochs,
                         help="HC epochs per SMT bandit step (Table 6)")
        cmd.add_argument("--step-epochs-rr", type=int,
                         default=smt_defaults.step_epochs_rr,
                         help="HC epochs per round-robin step (Table 6)")
        cmd.add_argument("--jobs", type=int, default=1,
                         help="worker processes for trace replays")
        cmd.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                         help="on-disk result cache directory")
        cmd.add_argument("--no-cache", action="store_true",
                         help="disable the result cache")
        cmd.add_argument("--profile", action="store_true",
                         help="run under cProfile; writes <cache-dir>/"
                              "profiles/<command>.prof and a JSON summary")
        cmd.add_argument("--replicates", type=int, default=5,
                         help="bandit seed replicates per workload "
                              "(replication sweeps)")
        cmd.add_argument("--deterministic-manifest", action="store_true",
                         help="zero wall-clock fields in the run manifest "
                              "so identical runs produce byte-identical "
                              "manifests")
        cmd.add_argument("--sanitize", action="store_true",
                         help="replay every compiled-kernel run through the "
                              "object path too and assert step-by-step "
                              "equivalence (same as REPRO_SANITIZE=1); "
                              "combine with --no-cache so cached results "
                              "don't skip the replays")
        if name == "traces":
            cmd.add_argument("--output-dir", default="traces",
                             help="directory to write .trace.gz files into")
        if name == "matrix":
            cmd.add_argument("--spec", default=None,
                             help="matrix spec JSON file ({\"axes\": {...}, "
                                  "\"include\": [...], \"exclude\": [...]})")
            cmd.add_argument("--axis", action="append", default=[],
                             metavar="NAME=V1,V2",
                             help="declare one axis inline (repeatable; "
                                  "'suite:<name>' workload values expand "
                                  "to suite members)")
            cmd.add_argument("--include", action="append", default=[],
                             metavar="NAME=V,NAME=V",
                             help="append one full point after the product "
                                  "(repeatable)")
            cmd.add_argument("--exclude", action="append", default=[],
                             metavar="NAME=V[,NAME=V]",
                             help="drop product points matching this "
                                  "partial assignment (repeatable)")
            cmd.add_argument("--expand-only", action="store_true",
                             help="print the expanded point list and exit "
                                  "without running any experiment")
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None or args.command == "list":
        print("available experiments:")
        for name in COMMANDS:
            print(f"  {name}")
        return 0
    if args.sanitize:
        from repro.core_model.sanitizer import SANITIZE_ENV

        os.environ[SANITIZE_ENV] = "1"
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if cache is not None and not os.environ.get(TRACE_CACHE_ENV):
        # Share compiled traces on disk alongside the result cache (workers
        # inherit the setting through the environment).
        os.environ[TRACE_CACHE_ENV] = str(Path(args.cache_dir) / "traces")
        set_trace_store(None)  # re-read the environment
    context = ExecutionContext(jobs=args.jobs, cache=cache)
    with use_context(context):
        if args.profile:
            from repro.perf import profile_call

            stem = Path(args.cache_dir) / "profiles" / args.command
            _, summary_path = profile_call(
                lambda: COMMANDS[args.command](args),
                stem, label=args.command,
            )
            print(f"[profile] summary: {summary_path}", file=sys.stderr)
        else:
            COMMANDS[args.command](args)
    telemetry = context.telemetry
    print(telemetry.summary_line(args.command, jobs=args.jobs),
          file=sys.stderr)
    if cache is not None and telemetry.tasks:
        manifest_path = Path(args.cache_dir) / f"{args.command}.manifest.json"
        telemetry.write_manifest(
            manifest_path, command=args.command,
            deterministic=args.deterministic_manifest,
            argv=list(argv) if argv is not None else sys.argv[1:],
            jobs=args.jobs,
        )
        print(f"[telemetry] manifest: {manifest_path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
