"""Figure 13 on both SMT simulation paths: fused kernel vs per-object loop.

The two benchmarks run the *same* reduced Figure 13 workload (same mixes,
same scale, same seeds) through the fused SMT cycle kernel and the
per-object pipeline. They quantify the PR's speedup (committed baseline:
``BENCH_PR5.json``; CI gates regressions via ``python -m repro.perf``) and
double-check bit-identical outputs across the two paths.

Each test installs its own *uncached* execution context: the session cache
shared by the other figure benchmarks would serve the second path the first
path's results and measure nothing.
"""

import os

from conftest import scaled

from repro.core_model.smt_kernel import KERNEL_ENV
from repro.experiments.figures import fig13_smt_bandit_vs_choi
from repro.experiments.runner import ExecutionContext, use_context
from repro.experiments.smt import SMTScale

SCALE = SMTScale(epoch_cycles=scaled(300), total_epochs=200,
                 step_epochs=2, step_epochs_rr=2)
NUM_MIXES = 4

#: Cross-test stash so the object-path run can check bit-identity against
#: the kernel-path run without paying for a second simulation.
_RESULTS = {}


def _run_uncached(kernel: bool):
    previous = os.environ.get(KERNEL_ENV)
    os.environ[KERNEL_ENV] = "1" if kernel else "0"
    try:
        with use_context(ExecutionContext(jobs=1, cache=None)):
            return fig13_smt_bandit_vs_choi(num_mixes=NUM_MIXES, scale=SCALE)
    finally:
        if previous is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = previous


def test_fig13_smt_fastpath_kernel(run_once):
    result = run_once(_run_uncached, kernel=True)
    _RESULTS["kernel"] = result
    print(f"\nkernel path gmean vs Choi: {result['gmean_vs_choi']:.3f}")
    assert result["gmean_vs_choi"] > 0.95


def test_fig13_smt_fastpath_object(run_once):
    result = run_once(_run_uncached, kernel=False)
    print(f"\nobject path gmean vs Choi: {result['gmean_vs_choi']:.3f}")
    assert result["gmean_vs_choi"] > 0.95
    if "kernel" in _RESULTS:
        assert result == _RESULTS["kernel"], (
            "kernel and object paths diverged on identical inputs"
        )
