"""§6.5: Bandit storage/area/power and relative overhead on a 40-core CPU.

Paper: 88 B of tables (< 100 B), 0.00044 mm² and 0.11 mW per agent at 10 nm,
< 0.003 % of a 40-core Ice Lake in both area and power; comparator storage
Pythia 25.5 KB / MLOP 8 KB / Bingo 46 KB.
"""

from repro.experiments.figures import sec65_area_power
from repro.experiments.reporting import format_table


def test_sec65_area_power(run_once):
    result = run_once(sec65_area_power)
    print()
    print(format_table(
        ["quantity", "value"],
        [
            ("storage (bytes)", result["storage_bytes"]),
            ("area (mm^2 @10nm)", f"{result['area_mm2']:.6f}"),
            ("power (mW @10nm)", f"{result['power_mw']:.3f}"),
            ("area % of Ice Lake 40C",
             f"{100 * result['area_fraction_of_icelake']:.5f}"),
            ("power % of Ice Lake 40C",
             f"{100 * result['power_fraction_of_icelake']:.5f}"),
        ],
        title="Section 6.5: Bandit hardware cost",
    ))
    comparison = result["storage_comparison"]
    print(format_table(
        ["design", "storage (bytes)"], sorted(comparison.items()),
        title="Storage comparison (§7.2.1)",
    ))
    assert result["storage_bytes"] < 100
    assert result["area_fraction_of_icelake"] < 0.00003
    assert result["power_fraction_of_icelake"] < 0.00003
    assert comparison["pythia"] > 250 * comparison["bandit"]
