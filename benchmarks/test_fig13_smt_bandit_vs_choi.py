"""Figure 13: Bandit vs the Choi policy over 2-thread SPEC17-like mixes.

Paper: Bandit beats Choi by 2.2 % gmean (and plain ICount by 7 %); it wins
by > 4 % on 36/226 mixes (up to +36 %) and loses by > 4 % on only 6. We
check: gmean ≥ ~parity with Choi, clear wins exist, big wins outnumber big
losses, and Bandit handily beats plain ICount.
"""

from conftest import scaled

from repro.experiments.figures import fig13_smt_bandit_vs_choi
from repro.experiments.reporting import format_table
from repro.experiments.smt import SMTScale


SCALE = SMTScale(epoch_cycles=scaled(500), total_epochs=400,
                 step_epochs=2, step_epochs_rr=2)


def test_fig13_smt_bandit_vs_choi(run_once):
    result = run_once(fig13_smt_bandit_vs_choi, num_mixes=10, scale=SCALE)
    ratios = result["ratios_sorted"]
    rows = [(index, f"{ratio:.3f}") for index, ratio in enumerate(ratios)]
    print()
    print(format_table(
        ["mix (sorted)", "Bandit IPC / Choi IPC"], rows,
        title="Figure 13: Bandit vs Choi, sorted ascending",
    ))
    print(f"gmean vs Choi:   {result['gmean_vs_choi']:.3f}")
    print(f"gmean vs ICount: {result['gmean_vs_icount']:.3f}")
    # Bandit at or above Choi overall (paper: +2.2 %).
    assert result["gmean_vs_choi"] > 0.99
    # Clear wins exist and outnumber clear losses.
    assert result["wins_over_4pct"] >= 1
    assert result["wins_over_4pct"] >= result["losses_over_4pct"]
    # Bandit far ahead of plain ICount (paper: +7 %).
    assert result["gmean_vs_icount"] > 1.05
