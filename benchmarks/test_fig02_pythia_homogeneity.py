"""Figure 2: temporal homogeneity of Pythia's action selections.

Paper: across SPEC traces, the most-selected Pythia action accounts for ~60 %
of selections and the second for ~15 % — 3 % of the action space covers 75 %
of decisions. We check the shape: a small number of actions dominates, and
the dominant action differs across applications.
"""

from conftest import scaled

from repro.experiments.figures import fig02_pythia_homogeneity
from repro.experiments.reporting import format_table


def test_fig02_pythia_homogeneity(run_once):
    result = run_once(
        fig02_pythia_homogeneity,
        trace_length=scaled(15_000),
    )
    rows = [
        (name, f"{top1:.2f}", f"{top2:.2f}")
        for name, (top1, top2) in result.items()
    ]
    print()
    print(format_table(["workload", "top1", "top2"], rows,
                       title="Figure 2: top-2 Pythia action frequency"))
    top1_avg, top2_avg = result["average"]
    # Shape: the top action dominates well beyond uniform (1/64 ≈ 1.6 %).
    assert top1_avg > 0.15
    assert top1_avg >= top2_avg
    # Top-2 actions (3 % of the space) cover a large share of selections.
    assert top1_avg + top2_avg > 0.3
