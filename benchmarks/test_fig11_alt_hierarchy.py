"""Figure 11: the Figure 8 lineup on an alternative cache hierarchy.

Paper: with L2 = 1 MB and LLC = 1.5 MB/core (Skylake-like sizes) and *no
retuning*, Bandit still leads: +9 % over Stride, +1.5 % over Bingo, +4.9 %
over MLOP, +0.2 % over Pythia. We check the same shape as Figure 8 on the
alternative hierarchy.
"""

from conftest import scaled

from repro.experiments.figures import fig11_alt_hierarchy
from repro.experiments.reporting import format_table


def test_fig11_alt_hierarchy(run_once):
    result = run_once(fig11_alt_hierarchy, trace_length=scaled(10_000))
    names = ["stride", "bingo", "mlop", "pythia", "bandit"]
    rows = [
        [suite] + [f"{result[suite][name]:.3f}" for name in names]
        for suite in result
    ]
    print()
    print(format_table(
        ["suite"] + names, rows,
        title="Figure 11: alt hierarchy (L2=1MB, LLC=1.5MB/core)",
    ))
    overall = result["all"]
    # Same shape as Figure 8, with no retuning for the new hierarchy.
    assert overall["bandit"] >= overall["bingo"]
    assert overall["bandit"] >= overall["mlop"]
    assert overall["bandit"] >= overall["pythia"] * 0.99
    assert overall["bandit"] >= overall["stride"] * 0.97
