"""Extension bench: §9 joint action spaces.

§9 proposes spending extra (still tiny) storage on larger action spaces:
one Bandit controlling the L1 and L2 prefetchers together, or jointly
selecting the prefetcher configuration and the cache replacement policy.
We run both joint agents and compare against the L2-only Bandit; the joint
storage is still only 8 B per arm.
"""

from dataclasses import replace

from conftest import scaled

from repro.experiments.configs import PREFETCH_BANDIT_CONFIG
from repro.experiments.extensions import (
    joint_arm_space,
    prefetch_replacement_arm_space,
    run_joint_l1_l2_bandit,
    run_joint_prefetch_replacement_bandit,
)
from repro.experiments.prefetch import run_bandit_prefetch
from repro.experiments.reporting import format_table
from repro.workloads.suites import spec_by_name


PARAMS = replace(PREFETCH_BANDIT_CONFIG, step_l2_accesses=50, gamma=0.98)


def run_extension(trace_length):
    trace = spec_by_name("bwaves06").trace(trace_length, seed=0)
    l2_only = run_bandit_prefetch(trace, params=PARAMS, seed=0).ipc
    joint_l1l2, _ = run_joint_l1_l2_bandit(trace, params=PARAMS, seed=0)
    joint_repl, _ = run_joint_prefetch_replacement_bandit(
        trace, params=PARAMS, seed=0
    )
    return {
        "l2_only (11 arms)": l2_only,
        f"joint L1+L2 ({len(joint_arm_space())} arms)": joint_l1l2,
        f"joint pf+repl ({len(prefetch_replacement_arm_space())} arms)":
            joint_repl,
    }


def test_ext_joint_control(run_once):
    result = run_once(run_extension, scaled(12_000))
    print()
    print(format_table(
        ["agent", "IPC"],
        [(name, f"{value:.3f}") for name, value in result.items()],
        title="Extension (§9): joint action spaces",
    ))
    values = list(result.values())
    l2_only = values[0]
    # The joint L1+L2 agent can only add capability on a streaming trace.
    assert values[1] >= l2_only * 0.9
    # The replacement-aware agent stays competitive.
    assert values[2] >= l2_only * 0.8
