"""Figure 14: 4-core performance of the prefetcher lineup.

Paper (gmean, homogeneous 4-core mixes, sum-of-IPCs metric): Bandit beats
Stride by 6 %, MLOP by 2.4 %, Bingo by 4.0 %, and trails Pythia by 1.0 % —
the per-core bandits' rewards are noisier under inter-core interference.
We check: Bandit beats the Stride baseline and stays within a few percent
of the best, without requiring it to win outright.
"""

from conftest import scaled

from repro.experiments.figures import fig14_fourcore
from repro.experiments.reporting import format_table


def test_fig14_fourcore(run_once):
    result = run_once(
        fig14_fourcore,
        trace_length=scaled(8_000),
        max_mixes=scaled(4),
    )
    rows = [(name, f"{value:.3f}") for name, value in result.items()]
    print()
    print(format_table(
        ["prefetcher", "gmean total IPC vs no-prefetch"], rows,
        title="Figure 14: 4-core homogeneous mixes",
    ))
    # Prefetching pays off at 4 cores and the bandit captures most of it.
    assert result["bandit"] > 1.0
    assert result["bandit"] >= result["stride"] * 0.9
    best = max(result.values())
    assert result["bandit"] >= best * 0.9
