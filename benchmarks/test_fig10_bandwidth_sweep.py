"""Figure 10: Pythia vs Bandit across available DRAM bandwidth.

Paper: Bandit matches Pythia at every bandwidth point and beats it by 2.5 %
at the most constrained point (150 MTPS) — without using any bandwidth
information in its reward, because aggressive arms simply stop paying off in
IPC. We check: Bandit ≥ Pythia at 150 MTPS, and both stay within a sane band
elsewhere.
"""

from conftest import scaled

from repro.experiments.figures import fig10_bandwidth_sweep
from repro.experiments.reporting import format_table
from repro.workloads.suites import tune_specs


def test_fig10_bandwidth_sweep(run_once):
    result = run_once(
        fig10_bandwidth_sweep,
        trace_length=scaled(10_000),
        workloads=tune_specs()[: scaled(8)],
    )
    rows = [
        (f"{int(mtps)} MTPS", f"{values['pythia']:.3f}",
         f"{values['bandit']:.3f}")
        for mtps, values in sorted(result.items())
    ]
    print()
    print(format_table(
        ["bandwidth", "pythia", "bandit"], rows,
        title="Figure 10: gmean IPC normalized to no-prefetching",
    ))
    # The headline crossover: Bandit ≥ Pythia when bandwidth is scarce.
    constrained = result[min(result)]
    assert constrained["bandit"] >= constrained["pythia"] * 0.99
    # At the constrained point neither should *hurt* much vs no-prefetch.
    assert constrained["bandit"] > 0.9
    # More bandwidth never makes the bandit's normalized IPC collapse.
    for values in result.values():
        assert values["bandit"] > 0.9
