"""Figure 12: multi-level (L1 + L2) prefetcher combinations.

Paper (gmean over no-prefetching): Stride_Stride +16 %, IPCP +24.5 %,
Stride_Pythia +24.8 %, Stride_Bandit +24.5 % — Bandit at L2 with a simple
stride at L1 matches the sophisticated multi-level designs. We check:
Stride_Bandit beats Stride_Stride and lands within a few percent of the
best combination.
"""

from conftest import scaled

from repro.experiments.figures import fig12_multilevel
from repro.experiments.reporting import format_table
from repro.workloads.suites import tune_specs


def test_fig12_multilevel(run_once):
    result = run_once(
        fig12_multilevel,
        trace_length=scaled(10_000),
        workloads=tune_specs()[: scaled(8)],
    )
    rows = [(name, f"{value:.3f}") for name, value in result.items()]
    print()
    print(format_table(
        ["configuration", "gmean vs no-prefetch"], rows,
        title="Figure 12: multi-level prefetcher combinations",
    ))
    # Stride_Bandit matches the sophisticated multi-level designs.
    assert result["stride_bandit"] >= result["ipcp"] * 0.98
    assert result["stride_bandit"] >= result["stride_pythia"] * 0.98
    best = max(result.values())
    assert result["stride_bandit"] >= best * 0.95
