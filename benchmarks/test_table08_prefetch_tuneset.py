"""Table 8: min/max/gmean IPC as % of the best static arm (prefetch tune set).

Paper: DUCB gmean 99.1 > UCB 98.8 > Pythia 98.4 > ε-Greedy 97.3 > Single
96.5 > Periodic 94.1; DUCB has the best min (95.0). We check the ordering
shape: DUCB/UCB lead, DUCB's worst case beats Single's, and every bandit has
max near or above the oracle.
"""

from conftest import scaled

from repro.experiments.figures import table08_prefetch_tuneset
from repro.experiments.reporting import format_summary_table
from repro.workloads.suites import tune_specs


def test_table08_prefetch_tuneset(run_once):
    workloads = tune_specs()[: scaled(8)]
    result = run_once(
        table08_prefetch_tuneset,
        trace_length=scaled(12_000),
        workloads=workloads,
    )
    print()
    print(format_summary_table(
        result, title="Table 8: % of best-static-arm IPC (prefetching)"
    ))
    # Shape checks matching the paper's ordering claims.
    assert result["DUCB"].gmean >= result["eGreedy"].gmean - 0.5
    assert result["DUCB"].gmean >= result["Periodic"].gmean - 0.5
    assert result["UCB"].gmean >= result["eGreedy"].gmean - 0.5
    # DUCB's worst case is better than Single's one-shot worst case.
    assert result["DUCB"].minimum >= result["Single"].minimum - 1.0
    # Every algorithm's best case approaches the oracle.
    for summary in result.values():
        assert summary.maximum > 85.0
