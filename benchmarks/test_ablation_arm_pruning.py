"""Ablation: SMT arm pruning (64 PG policies → the 6 Table 1 arms, §6.3).

The paper prunes the bandit's arms to 6 because that subset achieves
performance "very close to the best static performance of all 64 possible
fetch PG policies" on the tune set. We verify: the best of the 6 pruned
arms is within a few percent of the best of all 64 policies per mix.
"""

from conftest import scaled

from repro.experiments.reporting import format_table
from repro.experiments.smt import SMTScale, run_smt_static
from repro.smt.pg_policy import ALL_PG_POLICIES, BANDIT_PG_ARMS
from repro.workloads.smt import smt_tune_mixes


SCALE = SMTScale(epoch_cycles=scaled(300), total_epochs=40,
                 step_epochs=2, step_epochs_rr=2)


def run_ablation(num_mixes):
    out = []
    for mix in smt_tune_mixes()[:num_mixes]:
        best_pruned = max(
            run_smt_static(mix, policy, SCALE).ipc
            for policy in BANDIT_PG_ARMS
        )
        best_all = max(
            run_smt_static(mix, policy, SCALE).ipc
            for policy in ALL_PG_POLICIES
        )
        out.append((f"{mix[0].name}-{mix[1].name}", best_pruned, best_all))
    return out


def test_ablation_arm_pruning(run_once):
    result = run_once(run_ablation, 2)
    print()
    print(format_table(
        ["mix", "best of 6 arms", "best of 64 policies", "ratio"],
        [(name, f"{pruned:.3f}", f"{full:.3f}", f"{pruned / full:.3f}")
         for name, pruned, full in result],
        title="Ablation: 64 → 6 arm pruning (§6.3)",
    ))
    for _, pruned, full in result:
        assert pruned >= full * 0.93
