"""Extension bench: the §9 two-level (hyperparameter-selecting) bandit.

§9 proposes running several DUCB instances with different (γ, c) values
under a high-level bandit. We compare a MetaBandit over three DUCB children
against the single tuned DUCB on a phase-changing trace, expecting the meta
level to stay competitive without knowing the right hyperparameters ahead
of time.
"""

from dataclasses import replace

from conftest import scaled

from repro.bandit.base import BanditConfig
from repro.bandit.ducb import DUCB
from repro.bandit.meta import MetaBandit
from repro.experiments.configs import PREFETCH_BANDIT_CONFIG
from repro.experiments.prefetch import run_bandit_prefetch
from repro.experiments.reporting import format_table
from repro.workloads.suites import spec_by_name


PARAMS = replace(PREFETCH_BANDIT_CONFIG, step_l2_accesses=60)


def run_extension(trace_length):
    trace = spec_by_name("mcf06").trace(trace_length, seed=0)
    tuned = DUCB(BanditConfig(num_arms=11, gamma=0.98, exploration_c=0.04,
                              seed=0))
    tuned_ipc = run_bandit_prefetch(trace, algorithm=tuned, params=PARAMS).ipc
    children = [
        DUCB(BanditConfig(num_arms=11, gamma=gamma, exploration_c=c, seed=i))
        for i, (gamma, c) in enumerate(((0.9, 0.02), (0.98, 0.04), (0.999, 0.08)))
    ]
    meta = MetaBandit(children)
    meta_ipc = run_bandit_prefetch(trace, algorithm=meta, params=PARAMS).ipc
    return {"tuned DUCB": tuned_ipc, "MetaBandit": meta_ipc}


def test_ext_meta_bandit(run_once):
    result = run_once(run_extension, scaled(15_000))
    print()
    print(format_table(
        ["agent", "IPC"],
        [(name, f"{value:.3f}") for name, value in result.items()],
        title="Extension (§9): two-level hyperparameter-selecting bandit",
    ))
    assert result["MetaBandit"] >= result["tuned DUCB"] * 0.85
