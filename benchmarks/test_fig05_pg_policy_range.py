"""Figure 5: best/worst of the 64 fetch PG policies vs Choi per SMT mix.

Paper: different PG policies win in different mixes; picking a bad policy
loses > 40 % vs Choi; the best policy beats Choi on many mixes (by 13–30 %
for lbm mixes). We check the shape: a wide best-to-worst spread, best ≥ Choi,
and per-mix differences in which policy wins.
"""

from conftest import scaled

from repro.experiments.figures import fig05_pg_policy_range
from repro.experiments.reporting import format_table
from repro.experiments.smt import SMTScale


SCALE = SMTScale(epoch_cycles=scaled(300), total_epochs=40,
                 step_epochs=2, step_epochs_rr=2)


def test_fig05_pg_policy_range(run_once):
    result = run_once(fig05_pg_policy_range, num_mixes=3, scale=SCALE)
    rows = [
        (record["mix"], record["best_policy"],
         f"{record['best_vs_choi']:.2f}", f"{record['worst_vs_choi']:.2f}")
        for record in result
    ]
    print()
    print(format_table(
        ["mix", "best policy", "best/Choi", "worst/Choi"], rows,
        title="Figure 5: PG policy range relative to Choi (IC_1011)",
    ))
    for record in result:
        # The best of 64 policies is at least competitive with Choi...
        assert record["best_vs_choi"] >= 0.97
        # ...and a bad policy choice costs real performance.
        assert record["worst_vs_choi"] < record["best_vs_choi"] - 0.1
