"""L1-thrashing replication sweep on both replay paths: lane batch vs scalar.

The streaming benchmark (``test_fig08_lane_batch.py``) measures the lane
kernel where the shared front end dominates; *this* file measures the
opposite regime. The swept workloads are the three L1-thrashing tune-set
members (milc06, cactus06, omnetpp06) whose records overwhelmingly miss
L1, so nearly every record takes the per-lane memory-side path — the
~1.35x case under the old dict-based per-lane hierarchy. The
array-resident hierarchy (packed ``(lanes, sets, ways)`` tag/flag arrays,
vectorized victim selection and fill engine) turns that path into a
handful of masked array ops per record, which is the speedup the
committed ``BENCH_PR8.json`` baseline records.

The replicate count is deliberately large (400 bandit seeds, 411 lanes):
the scalar path is linear in lane count while the array path amortizes
its per-record dispatch across lanes, and wide sweeps are exactly the
shape the auto kernel mode routes to the array path. The trace length
matters too — eviction steady state (full sets, every fill selecting a
victim) only arrives a few thousand records in, so short traces would
understate the miss-path cost both kernels pay.

Each test installs its own *uncached* execution context: replay task keys
do not encode ``REPRO_LANE_KERNEL``, so the session cache shared by the
other figure benchmarks would serve the second path the first path's
results and measure nothing. Compiled traces are pre-warmed outside the
timed region so both paths measure replay, not workload generation.
"""

import os

from conftest import scaled

from repro.core_model.lane_kernel import LANE_KERNEL_ENV
from repro.experiments.figures import fig08_replication_sweep
from repro.experiments.runner import ExecutionContext, use_context
from repro.workloads.compiled import compiled_trace_for
from repro.workloads.suites import spec_by_name

TRACE_LENGTH = scaled(20000)
REPLICATES = 400
WORKLOADS = ("milc06", "cactus06", "omnetpp06")

#: Cross-test stash so the scalar-path run can check bit-identity against
#: the lane-path run without paying for a third sweep.
_RESULTS = {}


def _run_uncached(lane: bool):
    previous = os.environ.get(LANE_KERNEL_ENV)
    os.environ[LANE_KERNEL_ENV] = "1" if lane else "0"
    try:
        with use_context(ExecutionContext(jobs=1, cache=None)):
            return fig08_replication_sweep(
                trace_length=TRACE_LENGTH,
                replicates=REPLICATES,
                workloads=[spec_by_name(name) for name in WORKLOADS],
                seed=0,
            )
    finally:
        if previous is None:
            os.environ.pop(LANE_KERNEL_ENV, None)
        else:
            os.environ[LANE_KERNEL_ENV] = previous


def _warm_traces():
    for name in WORKLOADS:
        compiled_trace_for(name, TRACE_LENGTH, seed=0)


def test_fig08_lane_thrash_kernel(run_once):
    _warm_traces()
    result = run_once(_run_uncached, lane=True)
    _RESULTS["lane"] = result
    print(f"\nlane path bandit gmean: {result['all']['bandit_gmean']:.3f}")
    assert result["all"]["bandit_gmean"] > 0.9


def test_fig08_lane_thrash_scalar(run_once):
    _warm_traces()
    result = run_once(_run_uncached, lane=False)
    print(f"\nscalar path bandit gmean: {result['all']['bandit_gmean']:.3f}")
    assert result["all"]["bandit_gmean"] > 0.9
    if "lane" in _RESULTS:
        assert result == _RESULTS["lane"], (
            "lane and scalar paths diverged on identical inputs"
        )
