"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at
*reproduction scale* (small synthetic traces, shortened episodes — see
EXPERIMENTS.md) and prints the regenerated rows/series. Set
``REPRO_BENCH_SCALE`` (a float, default 1.0) to enlarge all workloads, e.g.::

    REPRO_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only

Each experiment runs exactly once per benchmark (``rounds=1``): the measured
quantity is the full experiment, not a microbenchmark. Set
``REPRO_BENCH_ROUNDS`` (an int, default 1) to repeat the timed region —
used when re-recording the committed ``BENCH_*.json`` baselines so their
means carry a real stddev; CI smoke keeps the single-round default.

Figure benchmarks share one result cache for the session, so replays that
recur across figures (e.g. the no-prefetch baselines) execute once.
``REPRO_BENCH_CACHE_DIR`` pins the cache to a persistent directory (reuse
across pytest invocations); ``REPRO_BENCH_JOBS`` fans replays out over a
process pool. Both default to the deterministic serial behaviour.
"""

import os
from pathlib import Path

import pytest

from repro.experiments.runner import ExecutionContext, ResultCache, use_context
from repro.workloads.compiled import (
    TRACE_CACHE_ENV,
    TraceStore,
    use_trace_store,
)


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(value: int, minimum: int = 1) -> int:
    return max(minimum, int(value * bench_scale()))


@pytest.fixture(scope="session", autouse=True)
def experiment_context(tmp_path_factory):
    """Install a session-wide execution context (shared cache across tests)."""
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
    if not cache_dir:
        cache_dir = tmp_path_factory.mktemp("repro-cache")
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    context = ExecutionContext(jobs=jobs, cache=ResultCache(cache_dir))
    # Compiled traces are memoized on disk next to the result cache, so
    # repeated benchmark invocations skip workload generation entirely. The
    # environment variable makes pool workers pick the same directory up.
    trace_dir = Path(cache_dir) / "traces"
    previous_env = os.environ.get(TRACE_CACHE_ENV)
    os.environ[TRACE_CACHE_ENV] = str(trace_dir)
    store = TraceStore(trace_dir)
    try:
        with use_trace_store(store), use_context(context):
            yield context
    finally:
        if previous_env is None:
            os.environ.pop(TRACE_CACHE_ENV, None)
        else:
            os.environ[TRACE_CACHE_ENV] = previous_env


def bench_rounds() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", "1")))


@pytest.fixture
def run_once(benchmark):
    """Run the experiment once per round under pytest-benchmark timing.

    One round by default; ``REPRO_BENCH_ROUNDS`` repeats the timed region
    (baseline re-recording), returning the last round's result.
    """
    rounds = bench_rounds()

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=rounds, iterations=1,
                                  warmup_rounds=0)

    return runner
