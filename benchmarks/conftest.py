"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at
*reproduction scale* (small synthetic traces, shortened episodes — see
EXPERIMENTS.md) and prints the regenerated rows/series. Set
``REPRO_BENCH_SCALE`` (a float, default 1.0) to enlarge all workloads, e.g.::

    REPRO_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only

Each experiment runs exactly once per benchmark (``rounds=1``): the measured
quantity is the full experiment, not a microbenchmark. Set
``REPRO_BENCH_ROUNDS`` (an int, default 1) to repeat the timed region —
used when re-recording the committed ``BENCH_*.json`` baselines so their
means carry a real stddev; CI smoke keeps the single-round default.

Figure benchmarks share one result cache for the session, so replays that
recur across figures (e.g. the no-prefetch baselines) execute once.
``REPRO_BENCH_CACHE_DIR`` pins the cache to a persistent directory (reuse
across pytest invocations); ``REPRO_BENCH_JOBS`` fans replays out over a
process pool. Both default to the deterministic serial behaviour.
"""

import itertools
import os
from pathlib import Path

import pytest

from repro.experiments.runner import ExecutionContext, ResultCache, use_context
from repro.workloads.compiled import (
    TRACE_CACHE_ENV,
    TraceStore,
    use_trace_store,
)


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(value: int, minimum: int = 1) -> int:
    """``value`` scaled by ``REPRO_BENCH_SCALE``, rounded to the nearest int.

    Rounds (banker's rounding via :func:`round`) rather than truncates, so a
    fractional scale shrinks small step/epoch counts consistently across
    benchmarks — ``scaled(5)`` at scale 0.5 is 2, not the 2-vs-1 lottery
    truncation made of nearby counts. The result never drops below
    ``minimum`` (default 1): every loop still executes at least once no
    matter how small the scale.
    """
    return max(minimum, round(value * bench_scale()))


@pytest.fixture(scope="session", autouse=True)
def experiment_context(tmp_path_factory):
    """Install a session-wide execution context (shared cache across tests)."""
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
    if not cache_dir:
        cache_dir = tmp_path_factory.mktemp("repro-cache")
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    context = ExecutionContext(jobs=jobs, cache=ResultCache(cache_dir))
    # Compiled traces are memoized on disk next to the result cache, so
    # repeated benchmark invocations skip workload generation entirely. The
    # environment variable makes pool workers pick the same directory up.
    trace_dir = Path(cache_dir) / "traces"
    previous_env = os.environ.get(TRACE_CACHE_ENV)
    os.environ[TRACE_CACHE_ENV] = str(trace_dir)
    store = TraceStore(trace_dir)
    try:
        with use_trace_store(store), use_context(context):
            yield context
    finally:
        if previous_env is None:
            os.environ.pop(TRACE_CACHE_ENV, None)
        else:
            os.environ[TRACE_CACHE_ENV] = previous_env


def bench_rounds() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", "1")))


@pytest.fixture
def run_once(benchmark, experiment_context, tmp_path_factory):
    """Run the experiment once per round under pytest-benchmark timing.

    One round by default; ``REPRO_BENCH_ROUNDS`` repeats the timed region
    (baseline re-recording), returning the last round's result.

    Multi-round honesty: the session-wide *result* cache would satisfy
    rounds 2..N instantly (near-zero means, bogus stddev — exactly the
    variance data the significance gate consumes), so each timed round
    starts from a fresh, empty result cache. Compiled *traces* stay warm
    across rounds on purpose: trace generation is setup, not the measured
    replay. The session cache is restored afterwards so later benchmarks
    keep sharing recurring replays (e.g. the no-prefetch baselines).
    """
    rounds = bench_rounds()

    def runner(func, *args, **kwargs):
        if rounds == 1:
            return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                      rounds=1, iterations=1,
                                      warmup_rounds=0)
        session_cache = experiment_context.cache
        round_dir = tmp_path_factory.mktemp("round-caches")
        counter = itertools.count()

        def fresh_cache():
            # Untimed per-round setup (pytest-benchmark calls it before
            # every round): swap in an empty result cache so the round
            # re-executes every replay instead of reading round 1's results.
            experiment_context.cache = ResultCache(
                round_dir / f"r{next(counter)}"
            )

        try:
            return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                      setup=fresh_cache, rounds=rounds,
                                      iterations=1, warmup_rounds=0)
        finally:
            experiment_context.cache = session_cache

    return runner
