"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at
*reproduction scale* (small synthetic traces, shortened episodes — see
EXPERIMENTS.md) and prints the regenerated rows/series. Set
``REPRO_BENCH_SCALE`` (a float, default 1.0) to enlarge all workloads, e.g.::

    REPRO_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only

Each experiment runs exactly once per benchmark (``rounds=1``): the measured
quantity is the full experiment, not a microbenchmark.
"""

import os

import pytest


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(value: int, minimum: int = 1) -> int:
    return max(minimum, int(value * bench_scale()))


@pytest.fixture
def run_once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
