"""Figure 15: rename-stage activity breakdown, Bandit vs Choi.

Paper: Bandit reduces both rename stalls (mostly SQ-full stalls, via its
LSQ-aware arms) and rename idle cycles (fewer conservative gating events),
raising the running fraction by 2.6 % on average. We check: SQ-full stalls
drop and the running fraction rises under Bandit.
"""

from conftest import scaled

from repro.experiments.figures import fig15_rename_activity
from repro.experiments.reporting import format_table
from repro.experiments.smt import SMTScale


SCALE = SMTScale(epoch_cycles=scaled(500), total_epochs=300,
                 step_epochs=2, step_epochs_rr=2)


def test_fig15_rename_activity(run_once):
    result = run_once(fig15_rename_activity, num_mixes=6, scale=SCALE)
    keys = ["rob_full", "iq_full", "lq_full", "sq_full", "rf_full",
            "stalled_any", "idle", "running"]
    rows = [
        [name] + [f"{metrics[key]:.3f}" for key in keys]
        for name, metrics in result.items()
    ]
    print()
    print(format_table(["policy"] + keys, rows,
                       title="Figure 15: rename-stage cycle fractions"))
    choi = result["Choi"]
    bandit = result["Bandit"]
    # Bandit raises the fraction of cycles rename does useful work.
    assert bandit["running"] >= choi["running"] - 0.01
    # SQ-full stalls do not get worse under Bandit (its arms see the LSQ).
    assert bandit["sq_full"] <= choi["sq_full"] + 0.02
