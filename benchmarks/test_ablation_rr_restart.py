"""Ablation: the §4.3 probabilistic round-robin restart (4-core runs).

The restart gives a core trapped by inter-core interference a chance to
re-evaluate all arms once the system has settled. We run the same 4-core
mix with and without the restart and report total IPC; at reproduction
scale the effect is small, so the assertion only requires the restart not
to hurt materially.
"""

from dataclasses import replace

from conftest import scaled

from repro.experiments.configs import PREFETCH_BANDIT_CONFIG
from repro.experiments.prefetch import run_multicore_bandit
from repro.experiments.reporting import format_table
from repro.workloads.suites import spec_by_name


def run_ablation(trace_length):
    # A bandwidth-hungry homogeneous mix: maximal inter-core interference.
    spec = spec_by_name("lbm06")
    traces = [spec.trace(trace_length, seed=core) for core in range(4)]
    params = replace(PREFETCH_BANDIT_CONFIG, step_l2_accesses=60,
                     gamma=0.98)
    with_restart, _ = run_multicore_bandit(
        traces, params=params, seed=0, rr_restart=True
    )
    without_restart, _ = run_multicore_bandit(
        traces, params=params, seed=0, rr_restart=False
    )
    return {"with_restart": with_restart, "without_restart": without_restart}


def test_ablation_rr_restart(run_once):
    result = run_once(run_ablation, scaled(6_000))
    print()
    print(format_table(
        ["configuration", "4-core total IPC"],
        [(name, f"{value:.3f}") for name, value in result.items()],
        title="Ablation: §4.3 round-robin restart under interference",
    ))
    assert result["with_restart"] > result["without_restart"] * 0.9
