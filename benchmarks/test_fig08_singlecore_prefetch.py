"""Figure 8: single-core performance of the L2 prefetcher lineup.

Paper (geomean over all suites, normalized to no prefetching): Bandit beats
Stride by 9 %, Bingo by 2.6 %, MLOP by 2.3 %, and matches Pythia (+0.2 %).
We check: every prefetcher ≥ ~baseline, Bandit beats the Stride baseline
clearly, and Bandit is at or near the top of the lineup.
"""

from conftest import scaled

from repro.experiments.figures import fig08_singlecore
from repro.experiments.reporting import format_table


def test_fig08_singlecore_prefetch(run_once):
    result = run_once(fig08_singlecore, trace_length=scaled(10_000))
    names = ["stride", "bingo", "mlop", "pythia", "bandit"]
    rows = [
        [suite] + [f"{result[suite][name]:.3f}" for name in names]
        for suite in result
    ]
    print()
    print(format_table(
        ["suite"] + names, rows,
        title="Figure 8: gmean IPC normalized to no-prefetching",
    ))
    overall = result["all"]
    # Bandit beats the heavyweight comparators (paper: +2.6 % over Bingo,
    # +2.3 % over MLOP, +0.2 % over Pythia).
    assert overall["bandit"] >= overall["bingo"]
    assert overall["bandit"] >= overall["mlop"]
    assert overall["bandit"] >= overall["pythia"] * 0.99
    # Bandit at worst matches the IP-stride baseline (paper: +9 %; at
    # reproduction scale exploration overhead eats part of that margin —
    # see EXPERIMENTS.md).
    assert overall["bandit"] >= overall["stride"] * 0.97
    # Prefetching does not catastrophically hurt overall.
    assert overall["bandit"] > 0.98
