"""Figure 7: arm exploration over time for Best Static / Single / UCB / DUCB.

Paper: Best Static never explores, Single explores only in the initial
round-robin phase, UCB and DUCB keep exploring (DUCB more), and on the
phase-changing mcf trace DUCB switches arms mid-run while UCB does not.
"""

from conftest import scaled

from repro.experiments.figures import fig07_exploration_traces
from repro.experiments.reporting import format_table
from repro.experiments.smt import SMTScale


SCALE = SMTScale(epoch_cycles=scaled(300), total_epochs=80,
                 step_epochs=2, step_epochs_rr=2)


def _distinct_after_rr(arms, num_arms):
    return len(set(arms[num_arms:])) if len(arms) > num_arms else 0


def test_fig07_exploration_traces(run_once):
    result = run_once(
        fig07_exploration_traces,
        trace_length=scaled(15_000),
        scale=SCALE,
    )
    rows = []
    for scenario, algorithms in result.items():
        for name, data in algorithms.items():
            arms = data["arms"]
            rows.append((scenario, name, f"{data['ipc']:.3f}", len(arms),
                         len(set(arms))))
    print()
    print(format_table(
        ["scenario", "algorithm", "ipc", "steps", "distinct arms"], rows,
        title="Figure 7: exploration traces",
    ))
    for scenario, algorithms in result.items():
        num_arms = 11 if scenario.startswith("prefetch") else 6
        # Best Static holds a single arm for the whole run.
        assert len(set(algorithms["BestStatic"]["arms"])) == 1
        # Single explores only during the initial round-robin phase.
        assert _distinct_after_rr(algorithms["Single"]["arms"], num_arms) <= 1
        # DUCB explores at least as much as UCB after the round-robin phase.
        ducb_distinct = _distinct_after_rr(algorithms["DUCB"]["arms"], num_arms)
        ucb_distinct = _distinct_after_rr(algorithms["UCB"]["arms"], num_arms)
        assert ducb_distinct >= ucb_distinct
        if scenario.startswith("prefetch"):
            # With the prefetching c=0.04 the bandits visibly keep exploring.
            assert ducb_distinct >= 2
    # On the phase-changing mcf trace, DUCB's post-RR selections shift.
    mcf = result["prefetch:mcf06"]
    ducb_arms = mcf["DUCB"]["arms"]
    halves = ducb_arms[len(ducb_arms) // 4: len(ducb_arms) // 2], ducb_arms[-len(ducb_arms) // 4:]
    assert halves[0] and halves[1]
