"""Figure 9: LLC misses and timely/late/wrong prefetch classification.

Paper: Bandit strongly reduces LLC misses; its timely coverage (67 %) is
between MLOP (63 %) and Pythia (72 %); BanditIdeal (no selection latency)
is barely better than Bandit, showing the 500-cycle latency is negligible.
We check those shapes. (Deviation note: at reproduction scale the bandit's
round-robin exploration is a visible fraction of the run, so its *wrong*
count is higher than the paper's fully-amortized measurement; see
EXPERIMENTS.md.)
"""

from conftest import scaled

from repro.experiments.figures import fig09_breakdown
from repro.experiments.reporting import format_table
from repro.workloads.suites import tune_specs


def test_fig09_prefetch_breakdown(run_once):
    result = run_once(
        fig09_breakdown,
        trace_length=scaled(10_000),
        workloads=tune_specs()[: scaled(8)],
    )
    rows = [
        (name, f"{m['llc_misses']:.3f}", f"{m['timely']:.3f}",
         f"{m['late']:.3f}", f"{m['wrong']:.3f}")
        for name, m in result.items()
    ]
    print()
    print(format_table(
        ["prefetcher", "LLC misses", "timely", "late", "wrong"], rows,
        title="Figure 9: normalized to no-prefetch LLC misses",
    ))
    # Bandit reduces LLC misses substantially.
    assert result["bandit"]["llc_misses"] < 0.7
    # Useful (timely+late) prefetches dominate its traffic.
    bandit = result["bandit"]
    assert bandit["timely"] + bandit["late"] > bandit["wrong"]
    # The 500-cycle selection latency is negligible: Bandit ≈ BanditIdeal.
    ideal = result["bandit_ideal"]
    assert abs(bandit["timely"] - ideal["timely"]) < 0.15
