"""Ablation: the §4.3 reward-normalization modification.

Without the ``r_avg`` normalizer, a fixed exploration constant makes the
agent explore far more in low-IPC workloads than in high-IPC ones. We
compare post-round-robin exploration rates on a low-IPC pointer-chasing
trace and a high-IPC streaming trace, with and without normalization.
"""

from dataclasses import replace

from conftest import scaled

from repro.bandit.base import BanditConfig
from repro.bandit.ducb import DUCB
from repro.experiments.configs import PREFETCH_BANDIT_CONFIG
from repro.experiments.prefetch import run_bandit_prefetch
from repro.experiments.reporting import format_table
from repro.workloads.suites import spec_by_name


PARAMS = replace(PREFETCH_BANDIT_CONFIG, step_l2_accesses=60)
NUM_ARMS = 11


def _exploration_rate(history):
    """Fraction of post-RR steps that switch away from the previous arm."""
    tail = history[NUM_ARMS:]
    if len(tail) < 2:
        return 0.0
    switches = sum(1 for a, b in zip(tail, tail[1:]) if a != b)
    return switches / (len(tail) - 1)


def run_ablation(trace_length):
    low_ipc = spec_by_name("omnetpp06").trace(trace_length // 2, seed=0)
    high_ipc = spec_by_name("bwaves06").trace(trace_length, seed=0)
    rows = {}
    for normalize in (True, False):
        rates = {}
        for name, trace in (("low-IPC", low_ipc), ("high-IPC", high_ipc)):
            algorithm = DUCB(BanditConfig(
                num_arms=NUM_ARMS, gamma=0.98, exploration_c=0.04, seed=0,
                normalize_rewards=normalize,
            ))
            result = run_bandit_prefetch(trace, algorithm=algorithm,
                                         params=PARAMS)
            rates[name] = _exploration_rate(result.arm_history)
        rows[normalize] = rates
    return rows


def test_ablation_reward_normalization(run_once):
    rows = run_once(run_ablation, scaled(12_000))
    print()
    print(format_table(
        ["normalized", "low-IPC explore rate", "high-IPC explore rate",
         "imbalance"],
        [
            (str(norm), f"{r['low-IPC']:.3f}", f"{r['high-IPC']:.3f}",
             f"{r['low-IPC'] - r['high-IPC']:+.3f}")
            for norm, r in rows.items()
        ],
        title="Ablation: §4.3 reward normalization",
    ))
    imbalance_norm = rows[True]["low-IPC"] - rows[True]["high-IPC"]
    imbalance_raw = rows[False]["low-IPC"] - rows[False]["high-IPC"]
    # Normalization reduces the cross-benchmark exploration imbalance.
    assert abs(imbalance_norm) <= abs(imbalance_raw) + 0.05
