"""Ablation: bandit step length sensitivity (Table 6 sets 1,000 L2 accesses).

Too short a step makes the IPC reward noisy; too long a step starves the
agent of learning opportunities. We sweep the step length on a streaming
trace and report IPC, expecting an interior plateau: the mid steps should
not be materially worse than the extremes.
"""

from dataclasses import replace

from conftest import scaled

from repro.experiments.configs import PREFETCH_BANDIT_CONFIG
from repro.experiments.prefetch import run_bandit_prefetch
from repro.experiments.reporting import format_table
from repro.workloads.suites import spec_by_name


STEPS = (15, 40, 120, 400)


def run_ablation(trace_length):
    trace = spec_by_name("bwaves06").trace(trace_length, seed=0)
    out = {}
    for step in STEPS:
        params = replace(PREFETCH_BANDIT_CONFIG, step_l2_accesses=step,
                         gamma=0.98)
        out[step] = run_bandit_prefetch(trace, params=params, seed=0).ipc
    return out


def test_ablation_step_length(run_once):
    result = run_once(run_ablation, scaled(15_000))
    print()
    print(format_table(
        ["step (L2 accesses)", "IPC"],
        [(step, f"{ipc:.3f}") for step, ipc in result.items()],
        title="Ablation: bandit step length sweep",
    ))
    values = list(result.values())
    mid = max(values[1], values[2])
    assert mid >= max(values) * 0.9
