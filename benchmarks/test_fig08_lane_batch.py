"""Figure 8 replication sweep on both replay paths: lane batch vs scalar.

The two benchmarks run the *same* reduced Figure 8 seed-replication sweep
(same workloads, trace length, replicates, seeds) through the batched lane
kernel (``REPRO_LANE_KERNEL=1``) and the PR 3 scalar kernel one lane at a
time (``REPRO_LANE_KERNEL=0``). They quantify this PR's speedup (committed
baseline: ``BENCH_PR6.json``; CI gates regressions via
``python -m repro.perf``) and double-check bit-identical sweep output
across the two paths.

The swept workloads are the three streaming tune-set members
(bwaves06/libquantum06/lbm06, ~12.5% L1 miss rate at this scale) whose
replay cost is dominated by the lane-invariant front end the batch kernel
vectorizes. The full eight-workload tune set includes L1-thrashing members
(milc06, cactus06, omnetpp06) where every record takes the per-lane
memory-side path, diluting the same-tree speedup to ~1.35x.

Each test installs its own *uncached* execution context: replay task keys
do not encode ``REPRO_LANE_KERNEL``, so the session cache shared by the
other figure benchmarks would serve the second path the first path's
results and measure nothing. Compiled traces are pre-warmed outside the
timed region so both paths measure replay, not workload generation.
"""

import os

from conftest import scaled

from repro.core_model.lane_kernel import LANE_KERNEL_ENV
from repro.experiments.figures import fig08_replication_sweep
from repro.experiments.runner import ExecutionContext, use_context
from repro.workloads.compiled import compiled_trace_for
from repro.workloads.suites import spec_by_name

TRACE_LENGTH = scaled(20000)
REPLICATES = 24
WORKLOADS = ("bwaves06", "libquantum06", "lbm06")

#: Cross-test stash so the scalar-path run can check bit-identity against
#: the lane-path run without paying for a third sweep.
_RESULTS = {}


def _run_uncached(lane: bool):
    previous = os.environ.get(LANE_KERNEL_ENV)
    os.environ[LANE_KERNEL_ENV] = "1" if lane else "0"
    try:
        with use_context(ExecutionContext(jobs=1, cache=None)):
            return fig08_replication_sweep(
                trace_length=TRACE_LENGTH,
                replicates=REPLICATES,
                workloads=[spec_by_name(name) for name in WORKLOADS],
                seed=0,
            )
    finally:
        if previous is None:
            os.environ.pop(LANE_KERNEL_ENV, None)
        else:
            os.environ[LANE_KERNEL_ENV] = previous


def _warm_traces():
    for name in WORKLOADS:
        compiled_trace_for(name, TRACE_LENGTH, seed=0)


def test_fig08_lane_batch_kernel(run_once):
    _warm_traces()
    result = run_once(_run_uncached, lane=True)
    _RESULTS["lane"] = result
    print(f"\nlane path bandit gmean: {result['all']['bandit_gmean']:.3f}")
    assert result["all"]["bandit_gmean"] > 0.9


def test_fig08_lane_batch_scalar(run_once):
    _warm_traces()
    result = run_once(_run_uncached, lane=False)
    print(f"\nscalar path bandit gmean: {result['all']['bandit_gmean']:.3f}")
    assert result["all"]["bandit_gmean"] > 0.9
    if "lane" in _RESULTS:
        assert result == _RESULTS["lane"], (
            "lane and scalar paths diverged on identical inputs"
        )
