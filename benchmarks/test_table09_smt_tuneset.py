"""Table 9: min/max/gmean IPC as % of the best static arm (SMT tune set).

Paper: DUCB gmean 98.6 > UCB 98.4 > ε-Greedy 97.8 > Periodic 97.2 >
Single 96.8 > Choi 94.5, with DUCB max 101.4 (above the oracle, thanks to
Hill-Climbing noise injection). We check: the bandits track the oracle
closely and DUCB is at or near the top.
"""

from conftest import scaled

from repro.experiments.figures import table09_smt_tuneset
from repro.experiments.reporting import format_summary_table
from repro.experiments.smt import SMTScale


SCALE = SMTScale(epoch_cycles=scaled(400), total_epochs=120,
                 step_epochs=2, step_epochs_rr=2)


def test_table09_smt_tuneset(run_once):
    result = run_once(table09_smt_tuneset, num_mixes=6, scale=SCALE)
    print()
    print(format_summary_table(
        result, title="Table 9: % of best-static-arm IPC (SMT fetch)"
    ))
    # Bandits land close to the best static arm on the gmean.
    assert result["DUCB"].gmean > 85.0
    assert result["UCB"].gmean > 85.0
    # DUCB within noise of the top of the lineup.
    best_gmean = max(summary.gmean for summary in result.values())
    assert result["DUCB"].gmean >= best_gmean - 5.0
