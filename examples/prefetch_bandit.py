#!/usr/bin/env python3
"""Data-prefetching use case (§5.2): Bandit orchestrating an L2 ensemble.

We generate two synthetic workloads with opposite prefetching needs — a
streaming workload (aggressive stream arms win) and a pointer-chasing
workload (the all-off arm wins) — and compare:

- every static Table 7 arm (the BestStatic oracle sweep),
- the comparator prefetchers (IP-stride, Bingo, MLOP, Pythia),
- the Micro-Armed Bandit with DUCB and the Table 6 hyperparameters.

Run:  python examples/prefetch_bandit.py
"""

from dataclasses import replace

from repro.experiments.configs import PREFETCH_BANDIT_CONFIG
from repro.experiments.prefetch import (
    best_static_arm,
    run_bandit_prefetch,
    run_fixed_prefetcher,
)
from repro.experiments.reporting import format_table
from repro.prefetch.ensemble import TABLE7_ARMS
from repro.workloads.suites import spec_by_name

TRACE_LENGTH = 15_000
# Scaled bandit step so the short trace still has ~dozens of steps
# (the paper uses 1,000 L2 accesses over 1B-instruction traces).
PARAMS = replace(PREFETCH_BANDIT_CONFIG, step_l2_accesses=80, gamma=0.98)


def study(workload_name: str) -> None:
    print(f"\n=== {workload_name} ===")
    trace = spec_by_name(workload_name).trace(TRACE_LENGTH, seed=7)

    best, per_arm = best_static_arm(trace)
    rows = [
        (arm, TABLE7_ARMS[arm].label(), f"{ipc:.3f}",
         "<- best" if arm == best else "")
        for arm, ipc in per_arm.items()
    ]
    print(format_table(["arm", "configuration", "IPC", ""], rows,
                       title="Static arm sweep (Table 7 arms)"))

    rows = []
    for name in ("none", "stride", "bingo", "mlop", "pythia"):
        rows.append((name, f"{run_fixed_prefetcher(trace, name).ipc:.3f}"))
    bandit = run_bandit_prefetch(trace, params=PARAMS, seed=0)
    rows.append(("bandit (DUCB)", f"{bandit.ipc:.3f}"))
    print(format_table(["prefetcher", "IPC"], rows, title="Comparators"))

    oracle = per_arm[best]
    print(f"bandit reaches {100 * bandit.ipc / oracle:.1f}% of the "
          f"best-static-arm oracle; most-used arm after exploration: "
          f"{max(set(bandit.arm_history[11:] or [best]), key=bandit.arm_history[11:].count)}")


def main() -> None:
    study("bwaves06")    # streaming: aggressive stream arms win
    study("omnetpp06")   # pointer chasing: prefetching only hurts


if __name__ == "__main__":
    main()
