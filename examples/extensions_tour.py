#!/usr/bin/env python3
"""Tour of the §9 future-work extensions implemented in this reproduction.

1. **Joint L1+L2 control** — one DUCB over the product action space
   (L1 stride degree × L2 ensemble arm).
2. **Joint prefetch + replacement control** — arms pair an L2 ensemble
   configuration with an L2 replacement policy (LRU vs SRRIP).
3. **MetaBandit** — a high-level bandit choosing among DUCB children with
   different (γ, c) hyperparameters.
4. **ClassifierBandit** — an online access-pattern classifier (stream /
   stride / irregular) with one Bandit per class.

Run:  python examples/extensions_tour.py
"""

from dataclasses import replace

from repro.bandit import BanditConfig, ClassifierBandit, DUCB, MetaBandit
from repro.experiments.configs import PREFETCH_BANDIT_CONFIG
from repro.experiments.extensions import (
    joint_arm_space,
    prefetch_replacement_arm_space,
    run_joint_l1_l2_bandit,
    run_joint_prefetch_replacement_bandit,
)
from repro.experiments.prefetch import run_bandit_prefetch
from repro.experiments.reporting import format_table
from repro.workloads.suites import spec_by_name

PARAMS = replace(PREFETCH_BANDIT_CONFIG, step_l2_accesses=60, gamma=0.98)
TRACE_LENGTH = 10_000


def main() -> None:
    trace = spec_by_name("bwaves06").trace(TRACE_LENGTH, seed=3)

    l2_only = run_bandit_prefetch(trace, params=PARAMS, seed=0).ipc
    joint_l1l2, _ = run_joint_l1_l2_bandit(trace, params=PARAMS, seed=0)
    joint_repl, _ = run_joint_prefetch_replacement_bandit(
        trace, params=PARAMS, seed=0
    )
    children = [
        DUCB(BanditConfig(num_arms=11, gamma=gamma, exploration_c=c, seed=i))
        for i, (gamma, c) in enumerate(((0.9, 0.02), (0.98, 0.04),
                                        (0.999, 0.08)))
    ]
    meta_ipc = run_bandit_prefetch(
        trace, algorithm=MetaBandit(children), params=PARAMS
    ).ipc

    print(format_table(
        ["agent", "arms", "IPC"],
        [
            ("L2-only Bandit (paper design)", 11, f"{l2_only:.3f}"),
            ("joint L1+L2", len(joint_arm_space()), f"{joint_l1l2:.3f}"),
            ("joint prefetch+replacement",
             len(prefetch_replacement_arm_space()), f"{joint_repl:.3f}"),
            ("MetaBandit over 3 DUCBs", 11, f"{meta_ipc:.3f}"),
        ],
        title="§9 extensions on a streaming workload (bwaves-like)",
    ))

    # Classifier bandit demo: the class label follows the access pattern.
    bandit = ClassifierBandit(num_arms=4, seed=1)
    block = 0
    for _ in range(600):
        block += 1
        bandit.observe_access(0x1, block)
    print(f"\nclassifier after a streaming phase: "
          f"{bandit.classifier.current_class!r}")
    import random

    rng = random.Random(0)
    for _ in range(600):
        bandit.observe_access(0x1, rng.randrange(10**7))
    print(f"classifier after an irregular phase: "
          f"{bandit.classifier.current_class!r}")
    # One selection per observed class instantiates its learner.
    for _ in range(2):
        bandit.select_arm()
        bandit.observe(1.0)
    print(f"per-class bandit storage: {bandit.storage_bytes()} bytes "
          f"(still tiny: 8 B/arm/class)")


if __name__ == "__main__":
    main()
