#!/usr/bin/env python3
"""SMT instruction-fetch use case (§5.3): Bandit picking the PG policy.

We simulate a gcc-like thread co-running with the store-hungry lbm-like
thread (§3.3's motivating case), compare the six pruned PG arms (Table 1)
plus the Choi policy under Hill Climbing, and then let the Bandit select
among the arms at run time.

Run:  python examples/smt_fetch_bandit.py
"""

from repro.experiments.reporting import format_table
from repro.experiments.smt import SMTScale, run_smt_bandit, run_smt_static
from repro.smt.pg_policy import BANDIT_PG_ARMS, CHOI_POLICY, ICOUNT_POLICY
from repro.workloads.smt import thread_profile

SCALE = SMTScale(epoch_cycles=500, total_epochs=300, step_epochs=2,
                 step_epochs_rr=2)


def main() -> None:
    mix = (thread_profile("gcc"), thread_profile("lbm"))
    print(f"mix: {mix[0].name} + {mix[1].name} "
          f"(lbm is the SQ-exhausting thread of §3.3)\n")

    rows = []
    for policy in BANDIT_PG_ARMS:
        result = run_smt_static(mix, policy, SCALE, seed=1)
        rows.append((policy.mnemonic, f"{result.ipc:.3f}"))
    choi = run_smt_static(mix, CHOI_POLICY, SCALE, seed=1)
    icount = run_smt_static(mix, ICOUNT_POLICY, SCALE, seed=1)
    rows.append((f"{CHOI_POLICY.mnemonic} (Choi)", f"{choi.ipc:.3f}"))
    print(format_table(["PG policy", "IPC"], rows,
                       title="Static PG policies under Hill Climbing"))

    bandit = run_smt_bandit(mix, SCALE, seed=1)
    print(f"\nBandit (DUCB over the 6 Table 1 arms): {bandit.ipc:.3f}")
    print(f"  vs Choi:   {bandit.ipc / choi.ipc - 1.0:+.1%}")
    print(f"  vs ICount: {bandit.ipc / icount.ipc - 1.0:+.1%}")
    from collections import Counter

    top = Counter(bandit.arm_history).most_common(2)
    names = [(BANDIT_PG_ARMS[arm].mnemonic, count) for arm, count in top]
    print(f"  most selected arms: {names}")

    fractions = bandit.rename.fractions()
    print("\nrename-stage activity under Bandit (Figure 15 metrics):")
    for key in ("sq_full", "rf_full", "stalled_any", "idle", "running"):
        print(f"  {key:12s} {fractions[key]:.3f}")


if __name__ == "__main__":
    main()
