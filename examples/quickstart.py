#!/usr/bin/env python3
"""Quickstart: drive a Micro-Armed Bandit agent by hand.

This example shows the core API in isolation — no simulator. We create a
DUCB agent over four "arms" whose (noisy) rewards we control, run the
Algorithm 1 protocol (select_arm → observe), and watch the agent converge
to the best arm, then adapt when the environment changes — the temporal-
homogeneity-with-phases setting of the paper (§2.2, §4.2).

Run:  python examples/quickstart.py
"""

import random

from repro.bandit import BanditConfig, DUCB, MicroArmedBandit
from repro.bandit.rewards import PerformanceCounters

# Mean reward (think: IPC) per arm, before and after a phase change.
PHASE1_REWARDS = [0.6, 1.4, 0.9, 0.7]
PHASE2_REWARDS = [1.5, 0.5, 0.9, 0.7]
STEPS = 300
PHASE_CHANGE_AT = 150


def main() -> None:
    rng = random.Random(1)
    config = BanditConfig(
        num_arms=4,
        gamma=0.95,          # DUCB forgetting factor (Table 6 uses 0.999
        exploration_c=0.05,  # at paper scale; smaller horizon here)
        seed=42,
    )
    agent = DUCB(config)

    print(f"running {STEPS} bandit steps, phase change at {PHASE_CHANGE_AT}")
    for step in range(STEPS):
        arm = agent.select_arm()
        means = PHASE1_REWARDS if step < PHASE_CHANGE_AT else PHASE2_REWARDS
        reward = max(0.0, rng.gauss(means[arm], 0.05))
        agent.observe(reward)
        if step in (25, PHASE_CHANGE_AT - 1, PHASE_CHANGE_AT + 25, STEPS - 1):
            estimates = ", ".join(f"{e:.2f}" for e in agent.reward_estimates())
            print(f"  step {step:3d}: arm={arm}  estimates=[{estimates}]")

    tail = agent.selection_history[-40:]
    best_now = max(set(tail), key=tail.count)
    print(f"\nafter the phase change the agent settled on arm {best_now} "
          f"(true best: 0)")

    # The same agent wrapped in the §5 hardware model: counters in, arm out.
    bandit = MicroArmedBandit(DUCB(config))
    bandit.reset_counters(PerformanceCounters(0, 0))
    arm = bandit.begin_step(now_cycle=0.0)
    bandit.end_step(PerformanceCounters(committed_instructions=4000,
                                        cycles=2000))
    print(f"\nhardware wrapper: first arm {arm}, "
          f"storage {bandit.storage_bytes()} bytes "
          f"(paper: <100 B for 11 arms)")


if __name__ == "__main__":
    main()
