#!/usr/bin/env python3
"""Four-core prefetching with per-core Bandits (§7.2.3, §4.3).

Four cores each run a bandwidth-hungry streaming workload and share one LLC
and one DRAM channel. Each core has its own Micro-Armed Bandit whose DUCB
uses the §4.3 probabilistic round-robin restart (Table 6:
rr_restart_prob = 0.001) so cores trapped by inter-core interference can
re-evaluate their arms. We also sweep the DRAM bandwidth to show how the
bandits become more conservative when bandwidth is scarce (the Figure 10
effect).

Run:  python examples/multicore_interference.py
"""

from dataclasses import replace

from repro.experiments.configs import (
    BASELINE_HIERARCHY_CONFIG,
    PREFETCH_BANDIT_CONFIG,
)
from repro.experiments.prefetch import run_multicore_bandit, run_multicore_fixed
from repro.experiments.reporting import format_table
from repro.workloads.suites import spec_by_name

TRACE_LENGTH = 6_000
PARAMS = replace(PREFETCH_BANDIT_CONFIG, step_l2_accesses=60, gamma=0.98)


def main() -> None:
    spec = spec_by_name("bwaves06")
    # gap_scale lowers per-core memory intensity to SPEC-rate levels so the
    # shared channel is contended but not hopelessly saturated.
    traces = [
        spec.trace(TRACE_LENGTH, seed=core, gap_scale=3.0)
        for core in range(4)
    ]

    rows = []
    for mtps in (600.0, 2400.0):
        config = replace(BASELINE_HIERARCHY_CONFIG, dram_mtps=mtps)
        none_ipc, _ = run_multicore_fixed(traces, "none", config)
        stride_ipc, _ = run_multicore_fixed(traces, "stride", config)
        bandit_ipc, system = run_multicore_bandit(
            traces, hierarchy_config=config, params=PARAMS, seed=0
        )
        rows.append((
            f"{int(mtps)} MTPS",
            f"{none_ipc:.3f}",
            f"{stride_ipc:.3f}",
            f"{bandit_ipc:.3f}",
        ))
    print(format_table(
        ["DRAM bandwidth", "no prefetch", "stride", "4x bandit"], rows,
        title="4-core total IPC (sum of per-core IPCs, §6.4 metric)",
    ))

    print("\nper-core prefetch outcome at 2400 MTPS (last run):")
    detail = [
        (f"core{i}",
         system.hierarchies[i].stats.prefetch.issued,
         system.hierarchies[i].stats.prefetch.timely,
         system.hierarchies[i].stats.prefetch.late,
         system.hierarchies[i].stats.prefetch.wrong)
        for i in range(4)
    ]
    print(format_table(["core", "issued", "timely", "late", "wrong"], detail))


if __name__ == "__main__":
    main()
