"""Tests for the vectorization-soundness rules R14-R17.

Covers the index-provenance classifier behind R14 (scatter aliasing),
the view-overlap detection of R15, the mirror-scoped lane-coupling rule
R16, the mirror-coverage rule R17, the ``--format json`` CLI output, and
the numpy semantics the rules guard against: a seeded duplicate-index
regression showing fancy ``+=`` silently dropping duplicate lanes where
``np.add.at`` (and the scalar reference loop) keep the count exact.
"""

import json
import textwrap

import numpy as np

from repro.analysis.array_rules import (
    ARRAY_RULES,
    LaneCouplingRule,
    MirrorCoverageRule,
    ScatterAliasingRule,
    ViewAliasingRule,
)
from repro.analysis.cli import main as cli_main
from repro.analysis.core import run_analysis


def make_tree(tmp_path, files):
    """Write ``{relative_path: source}`` under ``tmp_path / 'src'``."""
    for relative, source in files.items():
        target = tmp_path / "src" / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def lint(tmp_path, rules):
    return run_analysis([tmp_path / "src"], rules=rules, root=tmp_path)


def lines_of(findings, code):
    return sorted(f.line for f in findings if f.rule == code)


# ------------------------------------------------------------------ R14


class TestScatterAliasing:
    def test_unproven_index_is_flagged(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def scatter(counts, rows):
                counts[rows] += 1
        """})
        findings = lint(tmp_path, [ScatterAliasingRule()])
        assert [f.rule for f in findings] == ["R14"]
        assert "counts[rows]" in findings[0].source_line

    def test_spelled_out_rmw_is_flagged(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def scatter(counts, rows):
                counts[rows] = counts[rows] + 1
        """})
        findings = lint(tmp_path, [ScatterAliasingRule()])
        assert [f.rule for f in findings] == ["R14"]

    def test_flatnonzero_index_is_proven_unique(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def scatter(counts, mask):
                rows = np.flatnonzero(mask)
                counts[rows] += 1
        """})
        assert lint(tmp_path, [ScatterAliasingRule()]) == []

    def test_nonzero_component_traced_through_caller(self, tmp_path):
        # ``rows`` is only a parameter inside ``_bump``; the proof must
        # follow it to the call site, where it is ``mask.nonzero()[0]``.
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def _bump(counts, rows):
                counts[rows] += 1


            def step(counts, mask):
                _bump(counts, mask.nonzero()[0])
        """})
        assert lint(tmp_path, [ScatterAliasingRule()]) == []

    def test_boolean_mask_index_is_safe(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def scatter(counts, vals):
                hot = vals > 3
                counts[hot] += 1
        """})
        assert lint(tmp_path, [ScatterAliasingRule()]) == []

    def test_ufunc_at_is_not_flagged(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def scatter(counts, rows):
                np.add.at(counts, rows, 1)
        """})
        assert lint(tmp_path, [ScatterAliasingRule()]) == []

    def test_unique_index_waiver(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def scatter(counts, rows):
                # repro: unique-index[one fill per lane by construction]
                counts[rows] += 1
        """})
        assert lint(tmp_path, [ScatterAliasingRule()]) == []

    def test_non_kernel_modules_are_not_audited(self, tmp_path):
        make_tree(tmp_path, {"helpers.py": """
            import numpy as np


            def scatter(counts, rows):
                counts[rows] += 1
        """})
        assert lint(tmp_path, [ScatterAliasingRule()]) == []


# ------------------------------------------------------------------ R15


class TestViewAliasing:
    def test_overlapping_shifted_slices_are_flagged(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def shift(arr):
                arr[1:] += arr[:-1]
        """})
        findings = lint(tmp_path, [ViewAliasingRule()])
        assert [f.rule for f in findings] == ["R15"]

    def test_disjoint_constant_slices_are_clean(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def shift(arr):
                arr[:2] += arr[2:4]
        """})
        assert lint(tmp_path, [ViewAliasingRule()]) == []

    def test_hoisted_copy_is_clean(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def shift(arr):
                prev = arr[:-1].copy()
                arr[1:] += prev
        """})
        assert lint(tmp_path, [ViewAliasingRule()]) == []

    def test_alias_through_slice_binding_is_flagged(self, tmp_path):
        # ``head`` is a live view of ``arr``; the update reads it back
        # through the binding, not a literal slice of the same name.
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def shift(arr):
                head = arr[:-1]
                arr[1:] += head
        """})
        findings = lint(tmp_path, [ViewAliasingRule()])
        assert [f.rule for f in findings] == ["R15"]


# ------------------------------------------------------------------ R16


class TestLaneCoupling:
    def test_cross_lane_reduction_into_state_is_flagged(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def step(state, rows, vals):
                # repro: mirror[toy-step-red] begin
                state[rows] = vals.sum()
                # repro: mirror[toy-step-red] end
        """})
        findings = lint(tmp_path, [LaneCouplingRule()])
        assert [f.rule for f in findings] == ["R16"]

    def test_lane_preserving_axis_is_clean(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def step(state, rows, vals):
                # repro: mirror[toy-step-axis] begin
                state[rows] = vals.sum(axis=1)
                # repro: mirror[toy-step-axis] end
        """})
        assert lint(tmp_path, [LaneCouplingRule()]) == []

    def test_outside_mirror_regions_is_out_of_scope(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def step(state, rows, vals):
                state[rows] = vals.sum()
        """})
        assert lint(tmp_path, [LaneCouplingRule()]) == []

    def test_shared_scalar_waiver(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def step(state, rows, vals):
                # repro: mirror[toy-step-waive] begin
                # repro: shared-scalar[state]
                state[rows] = vals.sum()
                # repro: mirror[toy-step-waive] end
        """})
        assert lint(tmp_path, [LaneCouplingRule()]) == []

    def test_default_shared_scalar_allowlist(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def step(l2_demand_accesses, hits):
                # repro: mirror[toy-step-allow] begin
                l2_demand_accesses += hits.sum()
                # repro: mirror[toy-step-allow] end
        """})
        assert lint(tmp_path, [LaneCouplingRule()]) == []


# ------------------------------------------------------------------ R17


class TestMirrorCoverage:
    def test_untagged_state_mutation_is_flagged(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def poke(state):
                state[0] = 1
        """})
        findings = lint(tmp_path, [MirrorCoverageRule()])
        assert [f.rule for f in findings] == ["R17"]

    def test_def_tag_covers_the_mutation(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            # repro: mirror[toy-poke]
            def poke(state):
                state[0] = 1
        """})
        assert lint(tmp_path, [MirrorCoverageRule()]) == []

    def test_mirror_exempt_waiver(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            # repro: mirror-exempt[scratch helper with no paired twin]
            def poke(state):
                state[0] = 1
        """})
        assert lint(tmp_path, [MirrorCoverageRule()]) == []

    def test_locally_created_arrays_are_exempt(self, tmp_path):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def build():
                buf = np.zeros(4)
                buf[0] = 1
                return buf
        """})
        assert lint(tmp_path, [MirrorCoverageRule()]) == []

    def test_only_kernel_modules_are_in_scope(self, tmp_path):
        make_tree(tmp_path, {"helpers.py": """
            def poke(state):
                state[0] = 1
        """})
        assert lint(tmp_path, [MirrorCoverageRule()]) == []


# ----------------------------------------------------------- CLI format


class TestJsonFormat:
    def test_json_report_round_trips(self, tmp_path, capsys):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            def scatter(counts, rows):
                counts[rows] += 1
        """})
        rc = cli_main([
            str(tmp_path / "src"), "--root", str(tmp_path),
            "--select", "R14", "--format", "json",
        ])
        assert rc == 1
        document = json.loads(capsys.readouterr().out)
        assert document["new"] == 1
        assert document["baselined"] == 0
        assert document["counts"]["R14"] == {"new": 1, "baselined": 0}
        (finding,) = document["findings"]
        assert finding["rule"] == "R14"
        assert finding["baselined"] is False
        assert finding["path"].endswith("toy_kernel.py")
        assert "counts[rows]" in finding["source_line"]

    def test_json_report_clean_exit(self, tmp_path, capsys):
        make_tree(tmp_path, {"toy_kernel.py": """
            import numpy as np


            # repro: mirror[toy-scatter]
            def scatter(counts, rows):
                np.add.at(counts, rows, 1)
        """})
        rc = cli_main([
            str(tmp_path / "src"), "--root", str(tmp_path),
            "--select", "R14,R15,R16,R17", "--format", "json",
        ])
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        assert document["new"] == 0
        assert document["findings"] == []
        assert {r["code"] for r in document["rules"]} == {
            "R14", "R15", "R16", "R17",
        }


# ------------------------------------------ numpy scatter semantics


class TestDuplicateScatterRegression:
    """The runtime hazard R14 exists to catch, on a crafted lane batch.

    ``_fill_l2_rows``-style accounting: a wave of fills carries one row
    per lane *today*, but if a batch ever repeats a lane, buffered fancy
    ``+=`` silently drops every duplicate while ``np.add.at`` matches the
    scalar reference loop bit-for-bit.
    """

    ROWS = np.array([0, 3, 3, 3, 1, 0], dtype=np.intp)
    VICTIMS = np.array([5, 9, 13, 4, 1, 21], dtype=np.int64)

    def scalar_reference(self):
        pf_wrong = np.zeros(4, dtype=np.int64)
        for row, victim in zip(self.ROWS, self.VICTIMS):
            if (victim & 3) == 1:
                pf_wrong[row] += 1
        return pf_wrong

    def test_buffered_fancy_add_drops_duplicates(self):
        wrong = (self.VICTIMS & 3) == 1
        pf_wrong = np.zeros(4, dtype=np.int64)
        pf_wrong[self.ROWS[wrong]] += 1
        reference = self.scalar_reference()
        # Row 3 takes two wrong-path victims (9 and 13); the buffered
        # gather-modify-scatter applies only one of them.
        assert reference[3] == 2
        assert pf_wrong[3] == 1
        assert not np.array_equal(pf_wrong, reference)

    def test_unbuffered_add_at_matches_scalar_loop(self):
        wrong = (self.VICTIMS & 3) == 1
        pf_wrong = np.zeros(4, dtype=np.int64)
        np.add.at(pf_wrong, self.ROWS[wrong], 1)
        assert np.array_equal(pf_wrong, self.scalar_reference())

    def test_unique_rows_make_both_forms_agree(self):
        # The kernels' waivered sites rely on exactly this: with one
        # fill per lane the buffered and unbuffered forms coincide.
        rows = np.array([2, 0, 3], dtype=np.intp)
        buffered = np.zeros(4, dtype=np.int64)
        buffered[rows] += 1
        exact = np.zeros(4, dtype=np.int64)
        np.add.at(exact, rows, 1)
        assert np.array_equal(buffered, exact)


def test_array_rules_registered():
    codes = [rule.code for rule in ARRAY_RULES]
    assert codes == ["R14", "R15", "R16", "R17"]
