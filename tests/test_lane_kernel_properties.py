"""Randomized tri-path bit-identity properties for the lane kernels.

The batched array kernel, the narrow-batch dict kernel, and the scalar
runners are three implementations of the same replay semantics; every
divergence is a bug in exactly one of them. These tests drive all three
over randomized small traces and deliberately hostile hierarchy
geometries — tiny set counts so eviction order matters from the first few
records, single-digit MSHR budgets so fills supersede and stall, and
aggressive prefetch arms so wrong-victim accounting triggers — and demand
bit-identical results lane by lane.
"""

import dataclasses
import os

from hypothesis import given, settings, strategies as st

from repro.core_model.lane_kernel import LANE_KERNEL_ENV, LaneSpec, run_lane_batch
from repro.experiments.configs import (
    BASELINE_HIERARCHY_CONFIG,
    CORE_CONFIG_TABLE4,
    PREFETCH_BANDIT_CONFIG,
)
from repro.workloads.compiled import compiled_trace_for

#: Short bandit steps so a few-hundred-record trace spans many decisions.
PARAMS = dataclasses.replace(PREFETCH_BANDIT_CONFIG, step_l2_accesses=20)

LANES = [
    LaneSpec("none"),
    LaneSpec("arm", arm=0),
    LaneSpec("arm", arm=5),
    LaneSpec("arm", arm=7),
    LaneSpec("bandit", seed=0),
    LaneSpec("bandit", seed=1),
]

BLOCK = BASELINE_HIERARCHY_CONFIG.block_bytes


def _tiny_hierarchy(l2_sets, l2_ways, llc_sets, llc_ways, mshr, inflight):
    return dataclasses.replace(
        BASELINE_HIERARCHY_CONFIG,
        l2_size_bytes=l2_sets * l2_ways * BLOCK,
        l2_ways=l2_ways,
        llc_size_bytes=llc_sets * llc_ways * BLOCK,
        llc_ways=llc_ways,
        mshr_entries=mshr,
        max_inflight_prefetches=inflight,
    )


def _run_mode(mode, trace, hierarchy):
    previous = os.environ.get(LANE_KERNEL_ENV)
    os.environ[LANE_KERNEL_ENV] = mode
    try:
        return run_lane_batch(
            trace, LANES, hierarchy, CORE_CONFIG_TABLE4, PARAMS
        )
    finally:
        if previous is None:
            os.environ.pop(LANE_KERNEL_ENV, None)
        else:
            os.environ[LANE_KERNEL_ENV] = previous


def _assert_tri_path_identical(trace, hierarchy):
    array = _run_mode("array", trace, hierarchy)
    assert _run_mode("dict", trace, hierarchy) == array
    assert _run_mode("scalar", trace, hierarchy) == array


class TestRandomizedTriPathIdentity:
    @settings(max_examples=12, deadline=None)
    @given(
        workload=st.sampled_from(["bwaves06", "milc06", "mcf06"]),
        length=st.integers(min_value=300, max_value=800),
        seed=st.integers(min_value=0, max_value=4),
        l2_sets=st.sampled_from([4, 8, 16]),
        l2_ways=st.integers(min_value=1, max_value=4),
        llc_sets=st.sampled_from([8, 16, 32]),
        llc_ways=st.integers(min_value=1, max_value=4),
        mshr=st.integers(min_value=2, max_value=8),
        inflight=st.integers(min_value=1, max_value=8),
    )
    def test_random_geometry_and_trace(self, workload, length, seed, l2_sets,
                                       l2_ways, llc_sets, llc_ways, mshr,
                                       inflight):
        trace = compiled_trace_for(workload, length, seed=seed)
        hierarchy = _tiny_hierarchy(l2_sets, l2_ways, llc_sets, llc_ways,
                                    mshr, inflight)
        _assert_tri_path_identical(trace, hierarchy)


class TestCornerGeometries:
    """Pinned geometries that each force one victim/fill corner."""

    def test_eviction_order_direct_mapped(self):
        """Single-way caches: every conflicting fill evicts, so any LRU
        bookkeeping skew between the kernels surfaces immediately."""
        trace = compiled_trace_for("milc06", 600, seed=0)
        _assert_tri_path_identical(trace, _tiny_hierarchy(8, 1, 16, 1, 4, 4))

    def test_dirty_writeback_cascade(self):
        """Tiny L2 over a store-heavy trace: dirty victims cascade into
        LLC fills, which themselves evict."""
        trace = compiled_trace_for("mcf06", 700, seed=1)
        _assert_tri_path_identical(trace, _tiny_hierarchy(4, 2, 8, 2, 6, 4))

    def test_superseded_mshr_entries(self):
        """A 2-entry MSHR forces merges and drops while prefetches are in
        flight, exercising the fill queue's supersede path."""
        trace = compiled_trace_for("bwaves06", 600, seed=2)
        _assert_tri_path_identical(trace, _tiny_hierarchy(8, 2, 16, 2, 2, 2))

    def test_prefetch_wrong_victim_accounting(self):
        """Thrash trace + tiny L2: prefetched-never-used lines are evicted
        constantly, so the pf_wrong counters must match bit for bit."""
        trace = compiled_trace_for("milc06", 800, seed=3)
        _assert_tri_path_identical(trace, _tiny_hierarchy(4, 2, 32, 4, 8, 8))
